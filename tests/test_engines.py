"""Tests for the baseline engines and the engine registry."""

import pytest

from repro.data.relation import Relation
from repro.engines.base import EngineResult
from repro.engines.registry import available_engines, make_engine
from repro.engines.setintersection import SetIntersectionEngine
from repro.engines.sql_engine import SQLLikeEngine, mysql_like, postgres_like, system_x_like
from repro.joins.baseline import combinatorial_star
from repro.joins.hash_join import hash_join_project


class TestSQLLikeEngine:
    @pytest.mark.parametrize("join_algorithm", ["hash", "sortmerge"])
    @pytest.mark.parametrize("dedup", ["hash", "sort"])
    def test_two_path_correct(self, skewed_pair, join_algorithm, dedup):
        left, right = skewed_pair
        engine = SQLLikeEngine(join_algorithm=join_algorithm, dedup=dedup)
        assert engine.two_path(left, right) == hash_join_project(left, right)

    def test_star_correct(self, tiny_relation, tiny_relation_s):
        engine = SQLLikeEngine()
        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        assert engine.star(relations) == combinatorial_star(relations)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SQLLikeEngine(join_algorithm="nested")
        with pytest.raises(ValueError):
            SQLLikeEngine(dedup="bloom")

    def test_flavours_have_names(self):
        assert postgres_like().name == "postgres"
        assert mysql_like().name == "mysql"
        assert system_x_like().name == "system_x"

    def test_overhead_slows_engine_down(self, tiny_relation, tiny_relation_s):
        fast = SQLLikeEngine(per_tuple_overhead=0.0)
        slow = SQLLikeEngine(per_tuple_overhead=1e-5)
        fast_result = fast.run_two_path(tiny_relation, tiny_relation_s)
        slow_result = slow.run_two_path(tiny_relation, tiny_relation_s)
        assert slow_result.seconds > fast_result.seconds
        assert fast_result.pairs == slow_result.pairs

    def test_empty_inputs(self):
        engine = SQLLikeEngine()
        assert engine.two_path(Relation.empty(), Relation.empty()) == set()
        assert engine.star([Relation.empty()]) == set()


class TestSetIntersectionEngine:
    def test_dense_path_correct(self, skewed_pair):
        left, right = skewed_pair
        engine = SetIntersectionEngine(dense_domain_limit=10**6)
        assert engine.two_path(left, right) == hash_join_project(left, right)

    def test_sparse_path_correct(self, skewed_pair):
        left, right = skewed_pair
        engine = SetIntersectionEngine(dense_domain_limit=1)  # force the sparse path
        assert engine.two_path(left, right) == hash_join_project(left, right)

    def test_star(self, tiny_relation, tiny_relation_s):
        engine = SetIntersectionEngine()
        relations = [tiny_relation, tiny_relation_s]
        assert engine.star(relations) == combinatorial_star(relations)

    def test_empty(self, tiny_relation):
        engine = SetIntersectionEngine()
        assert engine.two_path(tiny_relation, Relation.empty()) == set()


class TestRegistry:
    def test_all_engines_listed(self):
        names = available_engines()
        assert {"mmjoin", "non-mmjoin", "postgres", "mysql", "system_x", "emptyheaded"} <= set(names)

    @pytest.mark.parametrize("name", ["mmjoin", "non-mmjoin", "postgres", "mysql", "system_x", "emptyheaded"])
    def test_every_engine_two_path_agrees(self, skewed_pair, name):
        left, right = skewed_pair
        engine = make_engine(name)
        assert engine.two_path(left, right) == hash_join_project(left, right)

    @pytest.mark.parametrize("name", ["mmjoin", "non-mmjoin", "emptyheaded"])
    def test_every_engine_star_agrees(self, tiny_relation, tiny_relation_s, name):
        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        engine = make_engine(name)
        assert engine.star(relations) == combinatorial_star(relations)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            make_engine("oracle")

    def test_timed_wrappers(self, tiny_relation, tiny_relation_s):
        engine = make_engine("mmjoin")
        result = engine.run_two_path(tiny_relation, tiny_relation_s)
        assert isinstance(result, EngineResult)
        assert result.seconds >= 0
        assert result.engine == "mmjoin"
        assert len(result) == len(result.pairs)
