"""Shared fixtures and hypothesis policy for the test suite."""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import settings

from repro.data import generators
from repro.data.relation import Relation
from repro.data.setfamily import SetFamily

# ---------------------------------------------------------------------------
# Hypothesis policy: property tests must be deterministic in CI.
#
# * no deadline anywhere — shared CI runners make per-example timing flaky;
# * the "ci" profile derandomizes generation (a fixed seed derived from each
#   test), so a CI failure reproduces locally with HYPOTHESIS_PROFILE=ci.
# ---------------------------------------------------------------------------
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
settings.register_profile("dev", deadline=None)
settings.load_profile(
    "ci" if os.environ.get("CI") else os.environ.get("HYPOTHESIS_PROFILE", "dev")
)

GOLDENS_DIR = Path(__file__).parent / "goldens"


@pytest.fixture
def golden(request):
    """Compare text against a checked-in golden file (``--update-goldens`` rewrites).

    Usage: ``golden("explain_two_path", normalized_text)``.
    """
    update = request.config.getoption("--update-goldens")

    def _check(name: str, text: str) -> None:
        path = GOLDENS_DIR / f"{name}.txt"
        if update:
            GOLDENS_DIR.mkdir(exist_ok=True)
            path.write_text(text + "\n", encoding="utf-8")
            return
        assert path.exists(), (
            f"golden file {path} is missing; run pytest --update-goldens to create it"
        )
        expected = path.read_text(encoding="utf-8").rstrip("\n")
        assert text == expected, (
            f"explain() output drifted from {path.name}; inspect the diff and run "
            "pytest --update-goldens if the change is intended"
        )

    return _check


@pytest.fixture
def tiny_relation() -> Relation:
    """The paper's Example 2 relation R (1..6 x 1..6 with a dense core)."""
    pairs = [
        (1, 1), (1, 4),
        (2, 2), (2, 5),
        (3, 3), (3, 6),
        (4, 4), (4, 6),
        (5, 4), (5, 5), (5, 6),
        (6, 4), (6, 5),
    ]
    return Relation.from_pairs(pairs, name="R")


@pytest.fixture
def tiny_relation_s() -> Relation:
    """A second small relation S sharing the y domain with ``tiny_relation``."""
    pairs = [
        (1, 1), (1, 5),
        (2, 2), (2, 4),
        (3, 3),
        (4, 4), (4, 5),
        (5, 4), (5, 5), (5, 6),
        (6, 5), (6, 6),
    ]
    return Relation.from_pairs(pairs, name="S")


@pytest.fixture
def skewed_pair():
    """A pair of moderately sized skewed relations for join tests."""
    left = generators.zipf_bipartite(2000, 200, 150, skew=1.1, seed=11, name="R")
    right = generators.zipf_bipartite(2000, 200, 150, skew=1.1, seed=12, name="S")
    return left, right


@pytest.fixture
def community_relation() -> Relation:
    """The Example 1 community instance (large full join, small projection)."""
    return generators.example1_instance(4000, num_communities=2, seed=5)


@pytest.fixture
def small_family() -> SetFamily:
    """A small set family with overlapping sets for SSJ/SCJ tests."""
    sets = {
        0: [1, 2, 3, 4],
        1: [2, 3, 4],
        2: [3, 4, 5],
        3: [1, 2],
        4: [6, 7],
        5: [6, 7, 8, 9],
        6: [1, 2, 3, 4, 5, 6],
        7: [9],
    }
    return SetFamily.from_dict(sets, name="F")


@pytest.fixture
def skewed_family() -> SetFamily:
    """A generated set family with heavy skew (exercises light/heavy split)."""
    relation = generators.zipf_bipartite(1200, 100, 70, skew=1.2, seed=21, name="F")
    return SetFamily.from_relation(relation)
