"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data import generators
from repro.data.relation import Relation
from repro.data.setfamily import SetFamily


@pytest.fixture
def tiny_relation() -> Relation:
    """The paper's Example 2 relation R (1..6 x 1..6 with a dense core)."""
    pairs = [
        (1, 1), (1, 4),
        (2, 2), (2, 5),
        (3, 3), (3, 6),
        (4, 4), (4, 6),
        (5, 4), (5, 5), (5, 6),
        (6, 4), (6, 5),
    ]
    return Relation.from_pairs(pairs, name="R")


@pytest.fixture
def tiny_relation_s() -> Relation:
    """A second small relation S sharing the y domain with ``tiny_relation``."""
    pairs = [
        (1, 1), (1, 5),
        (2, 2), (2, 4),
        (3, 3),
        (4, 4), (4, 5),
        (5, 4), (5, 5), (5, 6),
        (6, 5), (6, 6),
    ]
    return Relation.from_pairs(pairs, name="S")


@pytest.fixture
def skewed_pair():
    """A pair of moderately sized skewed relations for join tests."""
    left = generators.zipf_bipartite(2000, 200, 150, skew=1.1, seed=11, name="R")
    right = generators.zipf_bipartite(2000, 200, 150, skew=1.1, seed=12, name="S")
    return left, right


@pytest.fixture
def community_relation() -> Relation:
    """The Example 1 community instance (large full join, small projection)."""
    return generators.example1_instance(4000, num_communities=2, seed=5)


@pytest.fixture
def small_family() -> SetFamily:
    """A small set family with overlapping sets for SSJ/SCJ tests."""
    sets = {
        0: [1, 2, 3, 4],
        1: [2, 3, 4],
        2: [3, 4, 5],
        3: [1, 2],
        4: [6, 7],
        5: [6, 7, 8, 9],
        6: [1, 2, 3, 4, 5, 6],
        7: [9],
    }
    return SetFamily.from_dict(sets, name="F")


@pytest.fixture
def skewed_family() -> SetFamily:
    """A generated set family with heavy skew (exercises light/heavy split)."""
    relation = generators.zipf_bipartite(1200, 100, 70, skew=1.2, seed=21, name="F")
    return SetFamily.from_relation(relation)
