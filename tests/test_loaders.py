"""Unit tests for repro.data.loaders."""

import pytest

from repro.data import loaders
from repro.data.loaders import (
    LoaderError,
    load_csv,
    load_edge_list,
    load_transactions,
    roundtrip_edge_list,
    save_edge_list,
    save_transactions,
)
from repro.data.relation import Relation


class TestEdgeList:
    def test_roundtrip(self, tmp_path, tiny_relation):
        path = tmp_path / "edges.txt"
        reloaded = roundtrip_edge_list(tiny_relation, path)
        assert reloaded == tiny_relation

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n1 2\n3\t4\n")
        rel = load_edge_list(path)
        assert rel.pairs() == [(1, 2), (3, 4)]

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("1,2\n3,4\n")
        rel = load_edge_list(path, delimiter=",")
        assert len(rel) == 2

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(LoaderError):
            load_edge_list(path)

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(LoaderError):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert len(load_edge_list(path)) == 0

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("1 2\n")
        assert load_edge_list(path).name == "mygraph"


class TestCSV:
    def test_load_by_index(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,100,x\n2,200,y\n")
        rel = load_csv(path, x_column=0, y_column=1)
        assert rel.pairs() == [(1, 100), (2, 200)]

    def test_load_by_header_name(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("author,paper\n7,70\n8,80\n")
        rel = load_csv(path, x_column="author", y_column="paper", has_header=True)
        assert rel.pairs() == [(7, 70), (8, 80)]

    def test_bad_row(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1\n")
        with pytest.raises(LoaderError):
            load_csv(path)


class TestTransactions:
    def test_roundtrip(self, tmp_path, small_family):
        path = tmp_path / "sets.txt"
        save_transactions(small_family.relation, path)
        reloaded = load_transactions(path)
        # set ids are renumbered by line; compare the multiset of sets.
        original = sorted(tuple(v) for v in (s.tolist() for s in small_family.sets().values()))
        loaded = sorted(tuple(v) for v in (s.tolist() for s in reloaded.index_x().values()))
        assert original == loaded

    def test_non_integer_element(self, tmp_path):
        path = tmp_path / "sets.txt"
        path.write_text("1 2 x\n")
        with pytest.raises(LoaderError):
            load_transactions(path)

    def test_save_edge_list_header(self, tmp_path, tiny_relation):
        path = tmp_path / "out.txt"
        save_edge_list(tiny_relation, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("#")
        assert str(len(tiny_relation)) in first_line
