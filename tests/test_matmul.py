"""Unit tests for the matrix multiplication substrate."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.matmul.blocked import block_count, blocked_matmul, rectangular_cost
from repro.matmul.cost_model import MatMulCostModel, calibration_series, theoretical_cost
from repro.matmul.dense import (
    FLOAT32_EXACT_LIMIT,
    accumulation_dtype,
    boolean_matmul,
    build_adjacency,
    build_pair_adjacency,
    count_matmul,
    naive_matmul,
    nonzero_pairs,
    nonzero_pairs_with_counts,
)
from repro.matmul.sparse import (
    build_sparse_adjacency,
    sparse_boolean_matmul,
    sparse_count_matmul,
    sparse_nonzero_pairs,
    sparse_nonzero_pairs_with_counts,
)
from repro.matmul.strassen import strassen_flop_estimate, strassen_matmul


@pytest.fixture
def random_matrices():
    rng = np.random.default_rng(3)
    a = (rng.random((17, 23)) < 0.3).astype(np.float32)
    b = (rng.random((23, 11)) < 0.3).astype(np.float32)
    return a, b


class TestCountOverflowGuard:
    """Regression tests: witness counts must stay exact past float32's 2^24."""

    def test_default_limit_is_float32_mantissa(self):
        assert FLOAT32_EXACT_LIMIT == 2**24

    def test_accumulation_dtype_below_limit(self):
        assert accumulation_dtype(2**24) == np.float32
        assert accumulation_dtype(8) == np.float32

    def test_accumulation_dtype_above_limit(self):
        assert accumulation_dtype(2**24 + 1) == np.float64
        assert accumulation_dtype(2**30) == np.float64

    def test_small_products_stay_float32(self):
        a = np.ones((2, 8), dtype=np.float32)
        b = np.ones((8, 2), dtype=np.float32)
        assert count_matmul(a, b).dtype == np.float32

    def test_guard_widens_accumulation(self):
        # A lowered limit stands in for a >2^24 inner dimension: the product
        # must widen to float64 and the counts must stay exact integers.
        a = np.ones((3, 8), dtype=np.float32)
        b = np.ones((8, 3), dtype=np.float32)
        product = count_matmul(a, b, exact_limit=4)
        assert product.dtype == np.float64
        assert np.array_equal(product, np.full((3, 3), 8.0))

    def test_widened_counts_survive_float32_rounding(self):
        # 2^24 + 1 is the first integer float32 cannot represent; simulate a
        # count that large by accumulating float64 values near the boundary.
        boundary = np.float64(2**24)
        a = np.array([[boundary, 1.0]])
        b = np.array([[1.0], [1.0]])
        exact = count_matmul(a, b, exact_limit=1)  # force the float64 path
        assert exact.dtype == np.float64
        assert exact[0, 0] == 2**24 + 1
        # The float32 path loses the +1 — the failure the guard prevents.
        lossy = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
        assert lossy[0, 0] == 2**24


class TestDenseKernels:
    def test_count_matmul_matches_naive(self, random_matrices):
        a, b = random_matrices
        assert np.allclose(count_matmul(a, b), naive_matmul(a, b))

    def test_boolean_matmul(self, random_matrices):
        a, b = random_matrices
        counts = count_matmul(a, b)
        assert np.array_equal(boolean_matmul(a, b), counts > 0.5)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            count_matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            count_matmul(np.ones(3), np.ones((3, 2)))

    def test_build_adjacency(self, tiny_relation):
        matrix = build_adjacency(tiny_relation, [4, 5, 6], [4, 5, 6])
        assert matrix[1, 1] == 1  # (5, 5)
        assert matrix[0, 1] == 0  # (4, 5) absent

    def test_nonzero_pairs_threshold(self):
        product = np.array([[0.0, 2.0], [1.0, 3.0]])
        rows, cols = [10, 20], [30, 40]
        assert set(nonzero_pairs(product, rows, cols)) == {(10, 40), (20, 30), (20, 40)}
        assert set(nonzero_pairs(product, rows, cols, threshold=1.5)) == {(10, 40), (20, 40)}

    def test_nonzero_pairs_with_counts(self):
        product = np.array([[0.0, 2.0], [1.0, 0.0]])
        counts = nonzero_pairs_with_counts(product, [1, 2], [3, 4])
        assert counts == {(1, 4): 2, (2, 3): 1}

    def test_build_pair_adjacency(self, tiny_relation, tiny_relation_s):
        groups = [(5, 5), (5, 6), (6, 5)]
        matrix = build_pair_adjacency([tiny_relation, tiny_relation_s], groups, [4, 5, 6])
        # group (5,5): R has (5,4),(5,5),(5,6); S has (5,4),(5,5),(5,6) -> all three columns set
        assert matrix[0].tolist() == [1.0, 1.0, 1.0]
        # group (6,5): R(6,*) = {4,5}; S(5,*) = {4,5,6} -> columns 4 and 5
        assert matrix[2].tolist() == [1.0, 1.0, 0.0]


class TestSparseKernels:
    def test_sparse_matches_dense(self, tiny_relation, tiny_relation_s):
        rows = tiny_relation.x_values()
        mids = np.intersect1d(tiny_relation.y_values(), tiny_relation_s.y_values())
        cols = tiny_relation_s.x_values()
        dense_product = count_matmul(
            build_adjacency(tiny_relation, rows, mids),
            build_adjacency(tiny_relation_s, cols, mids).T,
        )
        sparse_product = sparse_count_matmul(
            build_sparse_adjacency(tiny_relation, rows, mids),
            build_sparse_adjacency(tiny_relation_s, cols, mids).T,
        )
        assert np.allclose(sparse_product.toarray(), dense_product)

    def test_sparse_boolean_clips(self, tiny_relation):
        rows = tiny_relation.x_values()
        mids = tiny_relation.y_values()
        m = build_sparse_adjacency(tiny_relation, rows, mids)
        product = sparse_boolean_matmul(m, m.T)
        assert product.data.max() <= 1.0

    def test_sparse_nonzero_pairs_agree_with_dense(self, tiny_relation):
        rows = tiny_relation.x_values()
        mids = tiny_relation.y_values()
        dense_product = count_matmul(
            build_adjacency(tiny_relation, rows, mids),
            build_adjacency(tiny_relation, rows, mids).T,
        )
        sparse_product = sparse_count_matmul(
            build_sparse_adjacency(tiny_relation, rows, mids),
            build_sparse_adjacency(tiny_relation, rows, mids).T,
        )
        assert set(sparse_nonzero_pairs(sparse_product, rows, rows)) == set(
            nonzero_pairs(dense_product, rows, rows)
        )
        assert sparse_nonzero_pairs_with_counts(sparse_product, rows, rows) == (
            nonzero_pairs_with_counts(dense_product, rows, rows)
        )

    def test_sparse_dimension_mismatch(self):
        a = build_sparse_adjacency(Relation.from_pairs([(0, 0)]), [0], [0])
        b = build_sparse_adjacency(Relation.from_pairs([(0, 0), (1, 1)]), [0, 1], [0, 1])
        with pytest.raises(ValueError):
            sparse_count_matmul(a, b)


class TestBlocked:
    def test_blocked_matches_numpy(self, random_matrices):
        a, b = random_matrices
        assert np.allclose(blocked_matmul(a, b, block_size=5), a @ b, atol=1e-4)

    def test_blocked_default_block(self, random_matrices):
        a, b = random_matrices
        assert np.allclose(blocked_matmul(a, b), a @ b, atol=1e-4)

    def test_blocked_with_strassen_kernel(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, size=(16, 16)).astype(np.float32)
        b = rng.integers(0, 2, size=(16, 16)).astype(np.float32)
        result = blocked_matmul(a, b, block_size=8, kernel=lambda x, y: strassen_matmul(x, y, cutoff=4).astype(np.float32))
        assert np.allclose(result, a @ b, atol=1e-4)

    def test_blocked_empty(self):
        out = blocked_matmul(np.zeros((0, 3)), np.zeros((3, 2)))
        assert out.shape == (0, 2)

    def test_blocked_mismatch(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 3)), np.ones((4, 2)))

    def test_rectangular_cost_classical(self):
        assert rectangular_cost(10, 20, 30, omega=3.0) == pytest.approx(6000.0)

    def test_rectangular_cost_omega2(self):
        # U*V*W / beta with beta = 10
        assert rectangular_cost(10, 20, 30, omega=2.0) == pytest.approx(600.0)

    def test_rectangular_cost_zero_dim(self):
        assert rectangular_cost(0, 5, 5) == 0.0

    def test_block_count(self):
        assert block_count(10, 10, 10, 5) == 8
        assert block_count(0, 10, 10, 5) == 0


class TestStrassen:
    def test_matches_numpy_square(self):
        rng = np.random.default_rng(1)
        a = rng.random((32, 32))
        b = rng.random((32, 32))
        assert np.allclose(strassen_matmul(a, b, cutoff=8), a @ b)

    def test_matches_numpy_rectangular(self):
        rng = np.random.default_rng(2)
        a = rng.random((13, 21))
        b = rng.random((21, 9))
        assert np.allclose(strassen_matmul(a, b, cutoff=4), a @ b)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            strassen_matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_empty(self):
        assert strassen_matmul(np.zeros((0, 4)), np.zeros((4, 2))).shape == (0, 2)

    def test_flop_estimate_subcubic(self):
        cubic = 1024.0 ** 3
        assert strassen_flop_estimate(1024, cutoff=32) < cubic


class TestCostModel:
    def test_theoretical_cost_matches_rectangular(self):
        assert theoretical_cost(8, 8, 8, omega=3.0) == pytest.approx(512.0)

    def test_uncalibrated_uses_flops(self):
        model = MatMulCostModel(flops_per_second=1e9)
        assert model.estimate(1000, 1000, 1000, cores=1) == pytest.approx(2.0, rel=1e-6)

    def test_zero_dimension(self):
        assert MatMulCostModel().estimate(0, 10, 10) == 0.0

    def test_speedup_monotone_in_cores(self):
        model = MatMulCostModel()
        times = [model.estimate(500, 500, 500, cores=c) for c in range(1, 6)]
        assert all(t1 > t2 for t1, t2 in zip(times, times[1:]))

    def test_calibration_fills_table(self):
        model = MatMulCostModel(calibration_sizes=(32, 64))
        table = model.calibrate(repeats=1)
        assert set(table) == {32, 64}
        assert model.is_calibrated
        assert model.estimate(64, 64, 64) > 0

    def test_set_table(self):
        model = MatMulCostModel()
        model.set_table({100: 0.001, 200: 0.008})
        assert model.is_calibrated
        # Estimates should be monotone in problem size.
        assert model.estimate(100, 100, 100) < model.estimate(200, 200, 200)

    def test_estimate_construction_scales_with_cells(self):
        model = MatMulCostModel()
        assert model.estimate_construction(10, 10, 10) < model.estimate_construction(100, 100, 100)

    def test_calibration_series_shape(self):
        model = MatMulCostModel()
        rows = calibration_series(model, sizes=[100, 200], cores=[1, 2])
        assert len(rows) == 4
        assert rows[0][0] == 100 and rows[0][1] == 1
