"""Tests for the core MMJoin two-path algorithm (Algorithm 1)."""

import pytest

from repro.core.config import MMJoinConfig
from repro.core.two_path import two_path_join, two_path_join_counts, two_path_join_detailed
from repro.data import generators
from repro.data.relation import Relation
from repro.joins.hash_join import hash_join_project, hash_join_project_counts


class TestCorrectness:
    def test_matches_baseline_default_config(self, skewed_pair):
        left, right = skewed_pair
        expected = hash_join_project(left, right)
        result = two_path_join(left, right)
        assert result.pairs == expected

    @pytest.mark.parametrize("delta1,delta2", [(1, 1), (2, 2), (3, 5), (5, 3), (10, 10), (1000, 1000)])
    def test_matches_baseline_any_thresholds(self, skewed_pair, delta1, delta2):
        left, right = skewed_pair
        expected = hash_join_project(left, right)
        config = MMJoinConfig(delta1=delta1, delta2=delta2)
        assert two_path_join(left, right, config=config).pairs == expected

    def test_self_join(self, tiny_relation):
        expected = hash_join_project(tiny_relation, tiny_relation)
        result = two_path_join(tiny_relation, tiny_relation, config=MMJoinConfig(delta1=2, delta2=2))
        assert result.pairs == expected

    def test_community_instance(self, community_relation):
        """The Example 1 instance: big full join, small projected output."""
        expected = hash_join_project(community_relation, community_relation)
        result = two_path_join(community_relation, community_relation)
        assert result.pairs == expected
        # The instance is dense enough that the optimizer should pick mmjoin.
        assert result.strategy == "mmjoin"

    def test_empty_inputs(self, tiny_relation):
        assert two_path_join(tiny_relation, Relation.empty()).pairs == set()
        assert two_path_join(Relation.empty(), Relation.empty()).pairs == set()

    def test_disjoint_y_domains(self):
        left = Relation.from_pairs([(1, 10), (2, 11)])
        right = Relation.from_pairs([(5, 20), (6, 21)])
        assert two_path_join(left, right).pairs == set()

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_backends_agree(self, skewed_pair, backend):
        left, right = skewed_pair
        expected = hash_join_project(left, right)
        config = MMJoinConfig(delta1=2, delta2=2, matrix_backend=backend)
        result = two_path_join(left, right, config=config)
        assert result.pairs == expected
        assert result.backend == backend

    def test_sparse_relation_uses_wcoj(self):
        """Road-network-like input: the full join is small, optimizer keeps WCOJ."""
        rel = generators.roadnet_graph(500, seed=3)
        result = two_path_join(rel, rel)
        assert result.strategy == "wcoj"
        assert result.pairs == hash_join_project(rel, rel)

    def test_forced_wcoj(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(use_optimizer=False))
        assert result.strategy == "wcoj"
        assert result.pairs == hash_join_project(left, right)


class TestCounting:
    def test_counts_match_bruteforce(self, skewed_pair):
        left, right = skewed_pair
        expected = hash_join_project_counts(left, right)
        result = two_path_join_counts(left, right)
        assert result.counts == expected

    @pytest.mark.parametrize("delta1", [1, 2, 4, 50])
    def test_counts_any_threshold(self, tiny_relation, tiny_relation_s, delta1):
        expected = hash_join_project_counts(tiny_relation, tiny_relation_s)
        config = MMJoinConfig(delta1=delta1, delta2=delta1)
        result = two_path_join_counts(tiny_relation, tiny_relation_s, config=config)
        assert result.counts == expected

    def test_counts_pairs_consistent(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join_counts(left, right)
        assert result.pairs == set(result.counts)

    def test_counts_empty(self, tiny_relation):
        result = two_path_join_counts(tiny_relation, Relation.empty())
        assert result.counts == {}


class TestResultMetadata:
    def test_result_container_protocol(self, tiny_relation, tiny_relation_s):
        result = two_path_join(tiny_relation, tiny_relation_s)
        assert len(result) == result.output_size() == len(result.pairs)
        some_pair = next(iter(result.pairs))
        assert some_pair in result
        assert set(iter(result)) == result.pairs

    def test_timings_present(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        assert "total" in result.timings
        assert result.timings["total"] >= 0
        assert "light" in result.timings

    def test_matrix_dims_reported(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=1, delta2=1))
        u, v, w = result.matrix_dims
        assert u >= 0 and v >= 0 and w >= 0
        assert result.heavy_pairs >= 0

    def test_optimizer_decision_attached(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right)
        assert result.optimizer_decision is not None
        assert result.optimizer_decision.strategy == result.strategy

    def test_light_and_heavy_cover_output(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        assert result.light_pairs + result.heavy_pairs >= len(result.pairs)

    def test_detailed_equals_plain(self, skewed_pair):
        left, right = skewed_pair
        assert two_path_join_detailed(left, right).pairs == two_path_join(left, right).pairs
