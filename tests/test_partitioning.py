"""Unit tests for repro.core.partitioning (the light/heavy split)."""

import numpy as np
import pytest

from repro.core.partitioning import partition_star, partition_two_path
from repro.data.relation import Relation


class TestTwoPathPartition:
    def test_tuples_preserved(self, tiny_relation, tiny_relation_s):
        part = partition_two_path(tiny_relation, tiny_relation_s, delta1=2, delta2=2)
        assert part.r_light.union(part.r_heavy) == tiny_relation
        assert part.s_light.union(part.s_heavy) == tiny_relation_s

    def test_light_and_heavy_disjoint(self, tiny_relation, tiny_relation_s):
        part = partition_two_path(tiny_relation, tiny_relation_s, delta1=2, delta2=2)
        assert len(part.r_light.intersection(part.r_heavy)) == 0
        assert len(part.s_light.intersection(part.s_heavy)) == 0

    def test_heavy_tuples_have_heavy_values(self, skewed_pair):
        left, right = skewed_pair
        delta1, delta2 = 3, 3
        part = partition_two_path(left, right, delta1, delta2)
        left_deg_y = left.degrees_y()
        right_deg_y = right.degrees_y()
        for x, y in part.r_heavy:
            assert left.degree_x(x) > delta2
            assert left_deg_y.get(y, 0) > delta1 and right_deg_y.get(y, 0) > delta1

    def test_light_tuples_touch_a_light_value(self, skewed_pair):
        left, right = skewed_pair
        delta1, delta2 = 3, 3
        part = partition_two_path(left, right, delta1, delta2)
        left_deg_y = left.degrees_y()
        right_deg_y = right.degrees_y()
        for x, y in part.r_light:
            head_light = left.degree_x(x) <= delta2
            witness_light = left_deg_y.get(y, 0) <= delta1 or right_deg_y.get(y, 0) <= delta1
            assert head_light or witness_light

    def test_heavy_value_lists_cover_heavy_relations(self, skewed_pair):
        left, right = skewed_pair
        part = partition_two_path(left, right, delta1=3, delta2=3)
        assert set(part.r_heavy.x_values().tolist()) == set(part.heavy_x.tolist())
        assert set(part.s_heavy.x_values().tolist()) == set(part.heavy_z.tolist())

    def test_extreme_thresholds_everything_light(self, tiny_relation, tiny_relation_s):
        part = partition_two_path(tiny_relation, tiny_relation_s, delta1=100, delta2=100)
        assert len(part.r_heavy) == 0 and len(part.s_heavy) == 0
        assert part.light_fraction() == 1.0

    def test_threshold_one_makes_most_things_heavy(self, skewed_pair):
        left, right = skewed_pair
        part = partition_two_path(left, right, delta1=1, delta2=1)
        assert len(part.r_heavy) > 0
        assert part.matrix_dimensions()[0] > 0

    def test_light_fraction_bounds(self, skewed_pair):
        left, right = skewed_pair
        part = partition_two_path(left, right, delta1=2, delta2=2)
        assert 0.0 <= part.light_fraction() <= 1.0

    def test_thresholds_clamped_to_one(self, tiny_relation, tiny_relation_s):
        part = partition_two_path(tiny_relation, tiny_relation_s, delta1=0, delta2=-5)
        assert part.delta1 == 1 and part.delta2 == 1

    def test_empty_relation(self, tiny_relation):
        part = partition_two_path(tiny_relation, Relation.empty(), delta1=2, delta2=2)
        assert len(part.s_light) == 0 and len(part.s_heavy) == 0
        assert part.heavy_y.size == 0


class TestStarPartition:
    def test_light_y_light_everywhere(self, tiny_relation, tiny_relation_s):
        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        part = partition_star(relations, delta1=2, delta2=2)
        for y in part.light_y:
            for rel in relations:
                assert rel.degree_y(int(y)) <= 2

    def test_light_y_heavy_y_disjoint_cover_shared(self, tiny_relation, tiny_relation_s):
        relations = [tiny_relation, tiny_relation_s]
        part = partition_star(relations, delta1=2, delta2=2)
        shared = set(tiny_relation.y_values().tolist()) & set(tiny_relation_s.y_values().tolist())
        assert set(part.light_y.tolist()) | set(part.heavy_y.tolist()) == shared
        assert not (set(part.light_y.tolist()) & set(part.heavy_y.tolist()))

    def test_light_head_has_light_heads(self, skewed_pair):
        left, right = skewed_pair
        relations = [left, right]
        part = partition_star(relations, delta1=3, delta2=3)
        for i, light_rel in enumerate(part.light_head):
            for x, _y in light_rel:
                assert relations[i].degree_x(x) <= 3

    def test_heavy_relations_have_heavy_heads_and_witnesses(self, skewed_pair):
        left, right = skewed_pair
        relations = [left, right]
        part = partition_star(relations, delta1=3, delta2=3)
        heavy_y = set(part.heavy_y.tolist())
        for i, heavy_rel in enumerate(part.heavy):
            for x, y in heavy_rel:
                assert relations[i].degree_x(x) > 3
                assert y in heavy_y

    def test_heavy_heads_match_heavy_relations(self, skewed_pair):
        left, right = skewed_pair
        part = partition_star([left, right], delta1=3, delta2=3)
        for heavy_rel, heads in zip(part.heavy, part.heavy_heads):
            assert set(heavy_rel.x_values().tolist()) == set(heads.tolist())

    def test_every_tuple_is_light_or_heavy_or_has_light_witness(self, tiny_relation, tiny_relation_s):
        """Coverage invariant behind the correctness proof: any tuple whose head is
        heavy and whose witness is heavy must appear in the heavy partition."""
        relations = [tiny_relation, tiny_relation_s]
        part = partition_star(relations, delta1=1, delta2=1)
        heavy_y = set(part.heavy_y.tolist())
        for i, rel in enumerate(relations):
            heavy_rel_pairs = set(part.heavy[i].pairs())
            for x, y in rel:
                if rel.degree_x(x) > 1 and y in heavy_y:
                    assert (x, y) in heavy_rel_pairs
