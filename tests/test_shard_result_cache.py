"""Per-shard result cache, heavy-shard rank-1 skipping, lazy combined view.

The output-sensitive sharded execution layer must be *invisible* except for
speed: skipped heavy sub-blocks never drop pairs, cached shard results
invalidate exactly on ``update_shard`` / re-registration, and the lazy
combined relation defers its packed-key merge without changing any answer.
"""

from __future__ import annotations

import numpy as np
import pytest
from strategies import random_relation, skewed_random_relation

from repro.core.config import MMJoinConfig
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_two_path
from repro.joins.hash_join import hash_join_project_counts
from repro.serve import QuerySession
from repro.shard.sharded import LazyCombinedRelation, ShardedRelation
from repro.shard.spec import ShardingSpec

CONFIG = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")


def _session(left, right, shards=4, heavy_key_factor=0.5, **kwargs):
    session = QuerySession(config=CONFIG, shards=shards,
                           heavy_key_factor=heavy_key_factor, **kwargs)
    session.register(left, name="R", sharded=True)
    session.register(right, name="S", sharded=True)
    return session


def _saturated_core(x_domain=120, hot_keys=(0, 1, 2)):
    """Every hot key connects to the full head domain on both sides."""
    xs = np.arange(x_domain, dtype=np.int64)
    blocks = [np.column_stack([xs, np.full_like(xs, key)]) for key in hot_keys]
    tail = np.column_stack([np.arange(30), np.arange(500, 530)])
    return Relation(np.vstack(blocks + [tail]), name="R")


class TestResultCacheServing:
    def test_warm_query_serves_all_shards_from_cache(self):
        left = skewed_random_relation(41, n_pairs=400, x_domain=50, y_domain=30, name="R")
        right = skewed_random_relation(42, n_pairs=400, x_domain=50, y_domain=30, name="S")
        expected = combinatorial_two_path(left, right)
        with _session(left, right) as session:
            cold = session.two_path("R", "S", use_memo=False)
            assert cold.pairs == expected
            assert not any(row["result_cached"]
                           for row in cold.explanation.shard_reports)
            warm = session.two_path("R", "S", use_memo=False)
            assert warm.pairs == expected
            # The fully-warm query takes the merged-result fast path.
            stats = warm.explanation.session_stats
            assert stats.get("merged_result_cached") or all(
                row["result_cached"] or row["strategy"] == "heavy_skipped"
                for row in warm.explanation.shard_reports
            )

    def test_disabled_result_cache_reverts_to_pipeline(self):
        left = random_relation(43, n_pairs=300, x_domain=40, y_domain=25, name="R")
        right = random_relation(44, n_pairs=300, x_domain=40, y_domain=25, name="S")
        expected = combinatorial_two_path(left, right)
        with _session(left, right, shard_result_cache=False) as session:
            session.two_path("R", "S", use_memo=False)
            warm = session.two_path("R", "S", use_memo=False)
            assert warm.pairs == expected
            assert "merged_result_cached" not in warm.explanation.session_stats
            assert not any(row["result_cached"]
                           for row in warm.explanation.shard_reports)

    def test_counting_mode_counts_survive_caching(self):
        left = skewed_random_relation(45, n_pairs=350, x_domain=40, y_domain=24, name="R")
        right = skewed_random_relation(46, n_pairs=350, x_domain=40, y_domain=24, name="S")
        expected = hash_join_project_counts(left, right)
        with _session(left, right) as session:
            assert session.two_path("R", "S", counting=True,
                                    use_memo=False).counts == expected
            assert session.two_path("R", "S", counting=True,
                                    use_memo=False).counts == expected


class TestResultCacheInvalidation:
    def test_update_shard_recomputes_exactly_the_touched_shard(self):
        left = random_relation(47, n_pairs=500, x_domain=60, y_domain=40, name="R")
        right = random_relation(48, n_pairs=500, x_domain=60, y_domain=40, name="S")
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            session.two_path("R", "S", use_memo=False)
            hash_shards = session.sharding_spec.hash_shards
            target = int(np.argmax(session.sharded("R").sizes()[:hash_shards]))
            kept = np.array(session.sharded("R").shard(target).data[::2])
            session.update_shard("R", target, kept)
            result = session.two_path("R", "S", use_memo=False)
            rows = {row["shard"]: row for row in result.explanation.shard_reports}
            assert not rows[target]["result_cached"]
            for shard, row in rows.items():
                if shard != target:
                    assert row["result_cached"] or row["strategy"] in (
                        "heavy_direct", "heavy_skipped"), (shard, row)
            assert result.pairs == combinatorial_two_path(
                session.relation("R"), right
            )

    def test_reregistration_invalidates_every_shard_result(self):
        left = random_relation(49, n_pairs=300, x_domain=40, y_domain=30, name="R")
        right = random_relation(50, n_pairs=300, x_domain=40, y_domain=30, name="S")
        replacement = random_relation(51, n_pairs=300, x_domain=40, y_domain=30, name="R")
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            session.two_path("R", "S", use_memo=False)
            session.register(replacement, name="R", sharded=True)
            fresh = session.two_path("R", "S", use_memo=False)
            assert "merged_result_cached" not in fresh.explanation.session_stats
            assert not any(row["result_cached"]
                           for row in fresh.explanation.shard_reports)
            assert fresh.pairs == combinatorial_two_path(replacement, right)


class TestHeavyShardSkipping:
    def test_saturated_core_collapses_to_one_rectangle(self):
        rel = _saturated_core()
        expected = combinatorial_two_path(rel, rel)
        with _session(rel, rel, heavy_key_factor=0.1) as session:
            spec = session.sharding_spec
            assert spec.num_heavy >= 2, "workload must isolate heavy keys"
            cold = session.two_path("R", "S", use_memo=False)
            assert cold.pairs == expected
            strategies = [row["strategy"] for row in
                          cold.explanation.shard_reports if row["kind"] == "heavy"]
            assert strategies.count("heavy_direct") == 1
            assert strategies.count("heavy_skipped") == len(strategies) - 1
            # Skipping must never drop pairs on the warm path either.
            assert session.two_path("R", "S", use_memo=False).pairs == expected

    def test_partial_overlap_never_drops_pairs(self):
        """Heavy rectangles that only partially overlap stay exact."""
        xs_a = np.arange(80, dtype=np.int64)
        xs_b = np.arange(40, 130, dtype=np.int64)  # overlaps [40, 80)
        rel = Relation(np.vstack([
            np.column_stack([xs_a, np.zeros_like(xs_a)]),
            np.column_stack([xs_b, np.ones_like(xs_b)]),
            np.column_stack([np.arange(25), np.arange(300, 325)]),
        ]), name="R")
        expected = combinatorial_two_path(rel, rel)
        with _session(rel, rel, heavy_key_factor=0.1) as session:
            assert session.sharding_spec.num_heavy >= 2
            for _ in range(3):  # cold, warm, re-warm
                assert session.two_path("R", "S", use_memo=False).pairs == expected
            counted = session.two_path("R", "S", counting=True, use_memo=False)
            assert counted.counts == hash_join_project_counts(rel, rel)

    def test_counting_mode_never_skips(self):
        """Witness counts add across shards, so nothing may be skipped."""
        rel = _saturated_core()
        with _session(rel, rel, heavy_key_factor=0.1) as session:
            counted = session.two_path("R", "S", counting=True, use_memo=False)
            strategies = [row["strategy"] for row in
                          counted.explanation.shard_reports if row["kind"] == "heavy"]
            assert "heavy_skipped" not in strategies
            assert counted.counts == hash_join_project_counts(rel, rel)


class TestLazyCombined:
    def test_update_shard_defers_the_merge(self):
        left = random_relation(52, n_pairs=400, x_domain=50, y_domain=30, name="R")
        right = random_relation(53, n_pairs=400, x_domain=50, y_domain=30, name="S")
        with _session(left, right) as session:
            target = int(np.argmax(
                session.sharded("R").sizes()[: session.sharding_spec.hash_shards]
            ))
            kept = np.array(session.sharded("R").shard(target).data[::2])
            session.update_shard("R", target, kept)
            base = session.relation("R")
            assert isinstance(base, LazyCombinedRelation)
            assert not base.materialized
            # First data access materialises once; the answer is the union.
            total = sum(session.sharded("R").sizes())
            assert len(base) == total
            assert base.materialized

    def test_lazy_view_equals_eager_merge(self):
        rel = random_relation(54, n_pairs=300, x_domain=30, y_domain=20, name="R")
        spec = ShardingSpec(3)
        container = ShardedRelation.partition(rel, spec)
        target = int(np.argmax(container.sizes()))
        container.replace_shard(target, Relation(
            container.shard(target).data[::2], name="part", sorted_dedup=True
        ))
        lazy = container.combined()
        assert isinstance(lazy, LazyCombinedRelation)
        eager = Relation(np.vstack([s.data for s in container.shards if len(s)]),
                         name="R")
        assert np.array_equal(lazy.data, eager.data)
        # Layout accessors work through the lazy view.
        assert set(lazy.y_values().tolist()) == set(eager.y_values().tolist())

    def test_unknown_attribute_still_raises(self):
        lazy = LazyCombinedRelation([], name="empty")
        with pytest.raises(AttributeError):
            lazy.definitely_not_an_attribute
        assert len(lazy) == 0  # empty view materialises to an empty relation
