"""Streaming write path: append/delete deltas routed to owning shards.

Covers the tentpole behaviours — hash-routed delta application under the
frozen spec, lazy write absorption (pending delta blocks that fold on read
or when the threshold trips), and the merged-result patch that re-serves
untouched shards from cache after an append — plus the hardened write
edges (empty deltas, strict vs idempotent deletes, unsharded fallbacks)
and pickle/deepcopy/process-pool round-trips of the lazy combined view.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle

import numpy as np
import pytest
from strategies import skewed_random_relation

from repro.core.config import MMJoinConfig
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_two_path
from repro.joins.hash_join import hash_join_project_counts
from repro.serve import QuerySession
from repro.shard.sharded import LazyCombinedRelation

CONFIG = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")


@pytest.fixture
def write_inputs():
    left = skewed_random_relation(41, n_pairs=500, x_domain=60, y_domain=40, name="R")
    right = skewed_random_relation(42, n_pairs=500, x_domain=60, y_domain=40, name="S")
    return left, right


def _session(left, right, shards=4, lazy_merge_rows=0, config=CONFIG):
    session = QuerySession(config=config, shards=shards,
                           lazy_merge_rows=lazy_merge_rows)
    session.register(left, name="R", sharded=True)
    session.register(right, name="S", sharded=True)
    return session


def _pairs(relation):
    return set(map(tuple, np.asarray(relation.data).tolist()))


def _rows_for_shard(session, name, shard, count, start_x=10_000):
    """``count`` fresh rows whose join keys all hash to ``shard``."""
    spec = session.sharding_spec
    candidates = np.arange(2_000, 12_000, dtype=np.int64)
    keys = candidates[spec.shard_of_keys(candidates) == shard]
    assert keys.size, f"no probe key found for shard {shard}"
    return [(start_x + i, int(keys[i % keys.size])) for i in range(count)]


# --------------------------------------------------------------------------- #
# Delta routing
# --------------------------------------------------------------------------- #
class TestDeltaRouting:
    def test_append_routes_rows_to_owning_shards(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            delta = [(1_000 + i, 2_000 + i) for i in range(25)]
            session.append("R", delta)
            container = session.sharded("R")
            spec = container.spec
            for shard in range(container.num_shards):
                stored = container.shard(shard)
                if len(stored) == 0:
                    continue
                owners = spec.shard_of_keys(np.asarray(stored.data)[:, 1])
                assert bool((owners == shard).all())
            assert _pairs(session.relation("R")) == _pairs(left) | set(delta)

    def test_append_leaves_untouched_shard_objects_alone(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            container = session.sharded("R")
            before = list(container.shards)
            delta = _rows_for_shard(session, "R", 0, 3)
            session.append("R", delta)
            after = session.sharded("R").shards
            # Only shard 0 got a fresh object; siblings are identical.
            assert after[0] is not before[0]
            for shard in range(1, container.num_shards):
                assert after[shard] is before[shard]

    def test_append_matches_recompute(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            delta = [(900 + i, i % 40) for i in range(30)]
            session.append("R", delta)
            merged = Relation.from_pairs(sorted(_pairs(left) | set(delta)), name="R")
            assert (session.two_path("R", "S", use_memo=False).pairs
                    == combinatorial_two_path(merged, right))
            counts = session.two_path("R", "S", counting=True, use_memo=False)
            assert counts.counts == hash_join_project_counts(merged, right)

    def test_delete_matches_recompute(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            doomed = sorted(_pairs(left))[::5]
            session.delete("R", doomed)
            remaining = Relation.from_pairs(
                sorted(_pairs(left) - set(doomed)), name="R")
            assert (session.two_path("R", "S", use_memo=False).pairs
                    == combinatorial_two_path(remaining, right))

    def test_apply_delta_rejects_foreign_keys_and_bad_op(self, write_inputs):
        left, _ = write_inputs
        with _session(left, left) as session:
            container = session.sharded("R")
            rows = np.array(_rows_for_shard(session, "R", 0, 2), dtype=np.int64)
            wrong = (int(container.spec.shard_of_keys(rows[:1, 1])[0]) + 1) \
                % container.num_shards
            with pytest.raises(ValueError, match="owned by other shards"):
                container.apply_delta(wrong, rows, "+")
            with pytest.raises(ValueError, match="unknown delta op"):
                container.apply_delta(0, rows, "*")

    def test_append_accepts_relation_and_array(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            as_rel = Relation.from_pairs([(5_000, 1), (5_001, 2)], name="d")
            as_arr = np.array([[5_002, 3], [5_003, 4]], dtype=np.int64)
            session.append("R", as_rel)
            session.append("R", as_arr)
            got = _pairs(session.relation("R"))
            assert {(5_000, 1), (5_001, 2), (5_002, 3), (5_003, 4)} <= got


# --------------------------------------------------------------------------- #
# Lazy write absorption
# --------------------------------------------------------------------------- #
class TestLazyAbsorption:
    def test_small_writes_buffer_until_read(self, write_inputs):
        left, right = write_inputs
        with _session(left, right, lazy_merge_rows=100) as session:
            delta = _rows_for_shard(session, "R", 0, 4)
            session.append("R", delta[:2])
            session.append("R", delta[2:])
            stored = session.sharded("R").shard(0)
            assert isinstance(stored, LazyCombinedRelation)
            assert not stored.materialized
            assert stored.pending_rows == 4
            # The read folds the pending deltas and serves the merged rows.
            result = session.two_path("R", "S", use_memo=False)
            assert stored.materialized
            merged = Relation.from_pairs(
                sorted(_pairs(left) | set(delta)), name="R")
            assert result.pairs == combinatorial_two_path(merged, right)

    def test_threshold_trip_folds_eagerly(self, write_inputs):
        left, right = write_inputs
        with _session(left, right, lazy_merge_rows=2) as session:
            delta = _rows_for_shard(session, "R", 0, 3)
            session.append("R", delta)  # 3 pending rows > threshold of 2
            stored = session.sharded("R").shard(0)
            assert stored.materialized
            assert set(delta) <= _pairs(stored)

    def test_combined_view_does_not_force_pending_shards(self, write_inputs):
        left, right = write_inputs
        with _session(left, right, lazy_merge_rows=100) as session:
            session.append("R", _rows_for_shard(session, "R", 0, 3))
            base = session.relation("R")
            stored = session.sharded("R").shard(0)
            assert isinstance(base, LazyCombinedRelation)
            # Building the catalog view must not fold the pending shard;
            # reading the combined data folds both.
            assert not stored.materialized
            assert len(base) == len(left) + 3
            assert stored.materialized


# --------------------------------------------------------------------------- #
# Hardened write edges
# --------------------------------------------------------------------------- #
class TestWriteEdges:
    def test_empty_delta_short_circuits(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            session.two_path("R", "S")
            version = session.version("R")
            invalidations = session.artifacts.stats()["invalidations"]
            session.append("R", [])
            session.delete("R", np.empty((0, 2), dtype=np.int64))
            assert session.version("R") == version
            assert session.artifacts.stats()["invalidations"] == invalidations
            assert session.two_path("R", "S").from_memo

    def test_update_shard_empty_replace_of_empty_shard_short_circuits(self):
        tiny = Relation.from_pairs([(1, 7), (2, 7)], name="R")
        with QuerySession(config=CONFIG, shards=4) as session:
            session.register(tiny, name="R", sharded=True)
            container = session.sharded("R")
            empty = next(s for s in range(container.num_shards)
                         if container.sizes()[s] == 0)
            version = session.version("R")
            session.update_shard("R", empty, [])
            assert session.version("R") == version

    def test_delete_missing_rows_is_idempotent(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            absent = [(10**6, 10**6), (10**6 + 1, 10**6 + 1)]
            session.delete("R", absent)
            assert _pairs(session.relation("R")) == _pairs(left)
            assert (session.two_path("R", "S", use_memo=False).pairs
                    == combinatorial_two_path(left, right))

    def test_strict_delete_raises_and_mutates_nothing(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            version = session.version("R")
            present = sorted(_pairs(left))[0]
            with pytest.raises(ValueError, match="not present"):
                session.delete("R", [present, (10**6, 10**6)], strict=True)
            assert session.version("R") == version
            assert _pairs(session.relation("R")) == _pairs(left)

    def test_strict_delete_of_present_rows_succeeds(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            doomed = sorted(_pairs(left))[:3]
            session.delete("R", doomed, strict=True)
            assert _pairs(session.relation("R")) == _pairs(left) - set(doomed)

    def test_write_to_unregistered_name_raises(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            with pytest.raises(KeyError):
                session.append("missing", [(1, 2)])
            with pytest.raises(KeyError):
                session.delete("missing", [(1, 2)])


# --------------------------------------------------------------------------- #
# Merged-result patching
# --------------------------------------------------------------------------- #
class TestMergedResultPatch:
    def test_append_patches_merged_result(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)  # warm the merged cache
            delta = _rows_for_shard(session, "R", 0, 3)
            session.append("R", delta)
            patched = session.two_path("R", "S", use_memo=False)
            stats = patched.explanation.session_stats
            assert stats.get("merged_result_patched") is True
            assert stats.get("shards_delta_executed") == 1
            merged = Relation.from_pairs(
                sorted(_pairs(left) | set(delta)), name="R")
            assert patched.pairs == combinatorial_two_path(merged, right)
            # Untouched shards re-served their cached results.
            rows = {row["shard"]: row
                    for row in patched.explanation.shard_reports}
            cached = [s for s, row in rows.items() if row.get("result_cached")]
            assert len(cached) >= len(rows) - 1

    def test_patch_chain_across_consecutive_appends(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            first = _rows_for_shard(session, "R", 0, 2)
            second = _rows_for_shard(session, "R", 1, 2, start_x=20_000)
            session.append("R", first)
            session.append("R", second)  # no read in between: depth-2 lineage
            patched = session.two_path("R", "S", use_memo=False)
            assert patched.explanation.session_stats.get(
                "merged_result_patched") is True
            merged = Relation.from_pairs(
                sorted(_pairs(left) | set(first) | set(second)), name="R")
            assert patched.pairs == combinatorial_two_path(merged, right)

    def test_delete_falls_back_to_per_shard_rebuild(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            session.delete("R", sorted(_pairs(left))[:5])
            result = session.two_path("R", "S", use_memo=False)
            assert not result.explanation.session_stats.get(
                "merged_result_patched")
            remaining = Relation.from_pairs(
                sorted(_pairs(left))[5:], name="R")
            assert result.pairs == combinatorial_two_path(remaining, right)

    def test_counting_query_not_patched_but_correct(self, write_inputs):
        left, right = write_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", counting=True, use_memo=False)
            delta = _rows_for_shard(session, "R", 0, 3)
            session.append("R", delta)
            result = session.two_path("R", "S", counting=True, use_memo=False)
            assert not result.explanation.session_stats.get(
                "merged_result_patched")
            merged = Relation.from_pairs(
                sorted(_pairs(left) | set(delta)), name="R")
            assert result.counts == hash_join_project_counts(merged, right)


# --------------------------------------------------------------------------- #
# Unsharded fallback
# --------------------------------------------------------------------------- #
class TestUnshardedWrites:
    def test_append_and_delete_on_unsharded_name(self, write_inputs):
        left, right = write_inputs
        with QuerySession(config=CONFIG) as session:
            session.register(left, name="R")
            session.register(right, name="S")
            delta = [(7_000 + i, i % 40) for i in range(10)]
            session.append("R", delta)
            assert session.version("R") == 1
            session.delete("R", delta[:5])
            assert session.version("R") == 2
            expected = Relation.from_pairs(
                sorted(_pairs(left) | set(delta[5:])), name="R")
            assert (session.two_path("R", "S", use_memo=False).pairs
                    == combinatorial_two_path(expected, right))


# --------------------------------------------------------------------------- #
# Lazy combined view: serialization round-trips
# --------------------------------------------------------------------------- #
def _pool_rows(relation):
    """Module-level worker so a process pool can pickle the reference."""
    return sorted(map(tuple, np.asarray(relation.data).tolist()))


def _lazy_with_pending_delta():
    base = Relation.from_pairs([(1, 2), (3, 4)], name="L")
    lazy = LazyCombinedRelation([base], name="L",
                                deltas=[("+", np.array([[5, 6]], dtype=np.int64))])
    assert not lazy.materialized
    return lazy


class TestLazyCombinedSerialization:
    def test_pickle_materialises_first(self):
        lazy = _lazy_with_pending_delta()
        clone = pickle.loads(pickle.dumps(lazy))
        assert type(clone) is Relation
        assert clone.pairs() == [(1, 2), (3, 4), (5, 6)]

    def test_deepcopy_round_trip(self):
        lazy = _lazy_with_pending_delta()
        clone = copy.deepcopy(lazy)
        assert clone.pairs() == [(1, 2), (3, 4), (5, 6)]

    def test_process_pool_round_trip(self):
        lazy = _lazy_with_pending_delta()
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            rows = pool.map(_pool_rows, [lazy])[0]
        assert rows == [(1, 2), (3, 4), (5, 6)]
