"""Property tests: columnar blocks match Python-set semantics exactly.

Hypothesis generates random relations (from the shared strategies in
``tests/strategies.py``, including empty, single-row and heavy-hitter edge
cases); every ``PairBlock`` / ``CountedPairBlock`` operation must agree with
the equivalent operation on plain sets/dicts of tuples, and the heavy-residual
extraction must agree across every registered matmul backend.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import HUGE_VALUES, pair_lists, triple_lists

from repro.core.config import MMJoinConfig
from repro.core.partitioning import partition_two_path
from repro.core.two_path import two_path_join, two_path_join_counts
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation
from repro.joins.baseline import (
    combinatorial_star,
    combinatorial_star_block,
    combinatorial_two_path,
    combinatorial_two_path_block,
    combinatorial_two_path_counted,
    probe_pairs_block,
    star_counted_block,
    star_expansion_block,
)
from repro.joins.hash_join import hash_join_project, hash_join_project_counts
from repro.matmul.registry import make_default_registry


class TestPairBlockSetSemantics:
    @settings(max_examples=60, deadline=None)
    @given(rows=pair_lists())
    def test_dedup_matches_set(self, rows):
        block = PairBlock.from_pairs(rows)
        deduped = block.dedup()
        assert deduped.to_set() == set(rows)
        assert len(deduped) == len(set(rows))
        # Canonical order: lexicographically sorted rows.
        assert [tuple(r) for r in deduped.as_array().tolist()] == sorted(set(rows))

    @settings(max_examples=60, deadline=None)
    @given(a=pair_lists(), b=pair_lists())
    def test_concat_dedup_matches_union(self, a, b):
        merged = PairBlock.from_pairs(a).concat(PairBlock.from_pairs(b)).dedup()
        assert merged == set(a) | set(b)

    @settings(max_examples=60, deadline=None)
    @given(a=pair_lists(), b=pair_lists())
    def test_difference_matches_set_difference(self, a, b):
        block_a, block_b = PairBlock.from_pairs(a), PairBlock.from_pairs(b)
        assert block_a.difference(block_b).to_set() == set(a) - set(b)
        assert block_a.intersection(block_b).to_set() == set(a) & set(b)

    @settings(max_examples=30, deadline=None)
    @given(a=pair_lists(values=HUGE_VALUES, max_size=40),
           b=pair_lists(values=HUGE_VALUES, max_size=40))
    def test_huge_domains_use_fallback_and_agree(self, a, b):
        """Domains too large to pack into one int64 key still match sets."""
        block_a, block_b = PairBlock.from_pairs(a), PairBlock.from_pairs(b)
        assert block_a.dedup().to_set() == set(a)
        assert block_a.difference(block_b).to_set() == set(a) - set(b)

    @settings(max_examples=40, deadline=None)
    @given(rows=triple_lists())
    def test_arity_three_round_trip(self, rows):
        block = PairBlock.from_pairs(rows, arity=3)
        assert block.dedup() == set(rows)
        assert block.dedup().arity == 3

    def test_empty_and_single_row_edges(self):
        empty = PairBlock.empty()
        assert len(empty) == 0 and empty.to_set() == set()
        assert empty.dedup() == set()
        assert empty.concat(empty) == set()
        single = PairBlock.from_pairs([(3, 7)])
        assert single.dedup().to_set() == {(3, 7)}
        assert (3, 7) in single and (7, 3) not in single
        assert single.difference(empty) == {(3, 7)}
        assert empty.difference(single) == set()

    def test_invalid_columns_rejected(self):
        with pytest.raises(ValueError):
            PairBlock((np.arange(3), np.arange(4)))
        with pytest.raises(ValueError):
            PairBlock(())

    def test_arity_mismatch_rejected(self):
        pairs = PairBlock.from_pairs([(1, 2)])
        triples = PairBlock.from_pairs([(1, 2, 3)], arity=3)
        with pytest.raises(ValueError):
            pairs.concat(triples)
        with pytest.raises(ValueError):
            pairs.difference(triples)
        with pytest.raises(ValueError):
            pairs.intersection(triples)

    def test_blocks_unhashable(self):
        """Blocks compare by content, so they must not be hashable."""
        with pytest.raises(TypeError):
            hash(PairBlock.from_pairs([(1, 2)]))


class TestCountedBlockSemantics:
    @settings(max_examples=60, deadline=None)
    @given(rows=pair_lists(max_size=200))
    def test_expansion_dedup_matches_counter(self, rows):
        """Count aggregation over duplicate rows equals a Python Counter."""
        block = CountedPairBlock.from_expansion(PairBlock.from_pairs(rows))
        assert block.dedup().to_dict() == dict(Counter(rows))

    @settings(max_examples=40, deadline=None)
    @given(a=pair_lists(max_size=100), b=pair_lists(max_size=100))
    def test_concat_dedup_sums_counts(self, a, b):
        merged = (
            CountedPairBlock.from_expansion(PairBlock.from_pairs(a))
            .concat(CountedPairBlock.from_expansion(PairBlock.from_pairs(b)))
            .dedup(reduce="sum")
        )
        assert merged == dict(Counter(a) + Counter(b))

    def test_dict_round_trip_and_edges(self):
        assert CountedPairBlock.empty().to_dict() == {}
        counts = {(1, 2): 3, (0, 0): 1}
        assert CountedPairBlock.from_dict(counts).to_dict() == counts
        single = CountedPairBlock.from_dict({(5, 5): 2})
        assert single.pairs_block().to_set() == {(5, 5)}

    def test_reduce_max(self):
        block = CountedPairBlock(
            (np.array([1, 1, 2]), np.array([2, 2, 3])), np.array([4, 7, 5])
        )
        assert block.dedup(reduce="max").to_dict() == {(1, 2): 7, (2, 3): 5}
        with pytest.raises(ValueError):
            block.dedup(reduce="min")

    def test_reduce_max_non_positive_counts(self):
        """max must hold for counts <= 0 too (no zero-seeded aggregate)."""
        block = CountedPairBlock(
            (np.array([1, 1, 2, 2]), np.array([2, 2, 3, 3])),
            np.array([-5, -3, -1, 0]),
        )
        assert block.dedup(reduce="max").to_dict() == {(1, 2): -3, (2, 3): 0}


def _relation_from(rows, name):
    return Relation.from_pairs(rows, name=name)


class TestPipelineProperties:
    @settings(max_examples=25, deadline=None)
    @given(left=pair_lists(max_size=150), right=pair_lists(max_size=150))
    def test_probe_expansion_matches_hash_join(self, left, right):
        rel_l, rel_r = _relation_from(left, "R"), _relation_from(right, "S")
        block = probe_pairs_block(rel_l.xs, rel_l.ys, rel_r).dedup()
        assert block.to_set() == hash_join_project(rel_l, rel_r)

    @settings(max_examples=25, deadline=None)
    @given(left=pair_lists(max_size=150), right=pair_lists(max_size=150))
    def test_combinatorial_matches_hash_join_counts(self, left, right):
        rel_l, rel_r = _relation_from(left, "R"), _relation_from(right, "S")
        assert combinatorial_two_path(rel_l, rel_r, with_counts=True) == (
            hash_join_project_counts(rel_l, rel_r)
        )

    @settings(max_examples=20, deadline=None)
    @given(left=pair_lists(max_size=150), right=pair_lists(max_size=150))
    def test_chunked_expansion_matches_unchunked(self, left, right):
        """Tiny chunk caps must not change any expansion result."""
        rel_l, rel_r = _relation_from(left, "R"), _relation_from(right, "S")
        assert combinatorial_two_path_block(rel_l, rel_r, chunk_rows=7) == (
            combinatorial_two_path_block(rel_l, rel_r)
        )
        assert combinatorial_two_path_counted(rel_l, rel_r, chunk_rows=7) == (
            combinatorial_two_path_counted(rel_l, rel_r)
        )

    @settings(max_examples=15, deadline=None)
    @given(a=pair_lists(max_size=80), b=pair_lists(max_size=80), c=pair_lists(max_size=80))
    def test_chunked_star_matches_reference(self, a, b, c):
        rels = [_relation_from(rows, f"R{i}") for i, rows in enumerate((a, b, c))]
        expected = combinatorial_star(rels)
        assert star_expansion_block(rels, chunk_rows=5).dedup() == expected
        assert combinatorial_star_block(rels) == expected
        assert star_counted_block(rels, chunk_rows=5) == (
            combinatorial_star(rels, with_counts=True)
        )

    def test_probe_slices_respect_cap(self):
        """Chunks stay under the expansion cap (single probes may exceed it)."""
        from repro.joins.baseline import _probe_slices

        right = Relation.from_pairs([(z, 0) for z in range(10)], "S")
        probe_ys = np.zeros(6, dtype=np.int64)  # 10 expansions per probe
        slices = _probe_slices(probe_ys, right, chunk_rows=15)
        for sl in slices:
            width = sl.stop - sl.start
            assert width * 10 <= 15 or width == 1
        covered = [i for sl in slices for i in range(sl.start, sl.stop)]
        assert covered == list(range(6))

    @settings(max_examples=10, deadline=None)
    @given(left=pair_lists(max_size=120), right=pair_lists(max_size=120))
    def test_all_backends_agree_end_to_end(self, left, right):
        """The columnar pipeline matches set semantics for every backend."""
        rel_l, rel_r = _relation_from(left, "R"), _relation_from(right, "S")
        expected_pairs = hash_join_project(rel_l, rel_r)
        expected_counts = hash_join_project_counts(rel_l, rel_r)
        for backend in make_default_registry().names():
            config = MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend)
            assert two_path_join(rel_l, rel_r, config=config).pairs == expected_pairs
            assert two_path_join_counts(rel_l, rel_r, config=config).counts == (
                expected_counts
            )

    @settings(max_examples=10, deadline=None)
    @given(left=pair_lists(max_size=120), right=pair_lists(max_size=120))
    def test_heavy_extraction_blocks_agree_across_backends(self, left, right):
        rel_l, rel_r = _relation_from(left, "R"), _relation_from(right, "S")
        partition = partition_two_path(rel_l, rel_r, 1, 1)
        rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
        if min(rows.size, mids.size, cols.size) == 0:
            return
        reference = None
        for backend in make_default_registry():
            block, _, _ = backend.heavy_pairs(
                partition.r_heavy, partition.s_heavy, rows, mids, cols
            )
            counted, _, _ = backend.heavy_counts(
                partition.r_heavy, partition.s_heavy, rows, mids, cols
            )
            assert isinstance(block, PairBlock)
            assert isinstance(counted, CountedPairBlock)
            assert counted.pairs_block().dedup() == block.dedup()
            if reference is None:
                reference = block
            else:
                assert block == reference, backend.name
