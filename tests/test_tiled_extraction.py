"""Property tests: tiled extraction is equivalent to the full non-zero scan.

The tiled scan (:mod:`repro.matmul.tiling`) must produce *exactly* the same
pairs and witness counts as ``np.nonzero(product > threshold)`` for every
tile size (1, odd, larger than the matrix, the auto heuristic and the
forced full scan), every threshold, and every product shape — including
empty and fully dense products.  The extraction accounting (tile counts and
the ``memory_*_bytes`` fields) is checked alongside.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matmul import dense as dense_mm
from repro.matmul import tiling

TILE_ROWS = (None, 0, 1, 3, 7, 10**6)
THRESHOLDS = (0.5, 1.5, 2.5)

SETTINGS = dict(max_examples=40, deadline=None, derandomize=True)


@st.composite
def products(draw):
    """Small count matrices over a sweep of shapes and densities."""
    n_rows = draw(st.integers(min_value=0, max_value=12))
    n_cols = draw(st.integers(min_value=0, max_value=12))
    density = draw(st.sampled_from([0.0, 0.1, 0.5, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 5, size=(n_rows, n_cols))
    mask = rng.random((n_rows, n_cols)) < density
    return (values * mask).astype(np.float32)


def _labels(n: int, stride: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64) * stride + 5


class TestTiledEquivalence:
    @settings(**SETTINGS)
    @given(product=products(), tile_rows=st.sampled_from(TILE_ROWS),
           threshold=st.sampled_from(THRESHOLDS))
    def test_pairs_match_full_scan(self, product, tile_rows, threshold):
        rows = _labels(product.shape[0], 2)
        cols = _labels(product.shape[1], 3)
        stats = {}
        block = tiling.tiled_nonzero_block(
            product, rows, cols, threshold=threshold, tile_rows=tile_rows,
            stats=stats,
        )
        reference = dense_mm.nonzero_block(product, rows, cols, threshold=threshold)
        assert block.to_set() == reference.to_set()
        assert stats["memory_output_bytes"] == block.nbytes

    @settings(**SETTINGS)
    @given(product=products(), tile_rows=st.sampled_from(TILE_ROWS),
           threshold=st.sampled_from(THRESHOLDS))
    def test_counts_match_full_scan(self, product, tile_rows, threshold):
        rows = _labels(product.shape[0], 2)
        cols = _labels(product.shape[1], 3)
        counted = tiling.tiled_nonzero_counted_block(
            product, rows, cols, threshold=threshold, tile_rows=tile_rows,
        )
        reference = dense_mm.nonzero_counted_block(
            product, rows, cols, threshold=threshold
        )
        assert counted.to_dict() == reference.to_dict()

    @settings(**SETTINGS)
    @given(product=products(), tile_rows=st.sampled_from(TILE_ROWS))
    def test_coords_row_major_order(self, product, tile_rows):
        """Tiled coordinates come back in np.nonzero's row-major order."""
        got = tiling.tiled_nonzero_coords(product, tile_rows=tile_rows)
        expected = np.nonzero(product > 0.5)
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])


class TestTiledAccounting:
    def test_empty_product(self):
        for shape in [(0, 0), (0, 7), (7, 0)]:
            stats = {}
            block = tiling.tiled_nonzero_block(
                np.zeros(shape, dtype=np.float32), np.arange(shape[0]),
                np.arange(shape[1]), stats=stats,
            )
            assert len(block) == 0
            assert stats["memory_extract_peak_bytes"] == 0

    def test_all_zero_tiles_skipped(self):
        product = np.zeros((200, 200), dtype=np.float32)
        product[5, 5] = 1.0
        stats = {}
        block = tiling.tiled_nonzero_block(
            product, np.arange(200), np.arange(200), tile_rows=10, stats=stats,
        )
        assert block.to_set() == {(5, 5)}
        assert stats["extract_mode"] == "tiled"
        assert stats["extract_tiles_total"] == 20
        assert stats["extract_tiles_skipped"] == 19

    def test_tiny_products_use_full_scan(self):
        product = np.ones((4, 4), dtype=np.float32)
        stats = {}
        tiling.tiled_nonzero_block(product, np.arange(4), np.arange(4), stats=stats)
        assert stats["extract_mode"] == "full"

    def test_peak_bytes_bounded_by_tile_and_output(self):
        """Sparse output: peak transients far below the full boolean mask."""
        product = np.zeros((600, 600), dtype=np.float32)
        product[300, ::5] = 2.0
        stats = {}
        tiling.tiled_nonzero_block(
            product, np.arange(600), np.arange(600), tile_rows=50, stats=stats,
        )
        full_bytes = stats["memory_full_scan_bytes"]
        assert full_bytes == 600 * 600
        assert stats["memory_extract_peak_bytes"] * 8 <= full_bytes

    def test_full_scan_records_mask_bytes(self):
        product = np.ones((100, 300), dtype=np.float32)
        stats = {}
        tiling.tiled_nonzero_block(
            product, np.arange(100), np.arange(300), tile_rows=0, stats=stats,
        )
        assert stats["extract_mode"] == "full"
        assert stats["memory_extract_peak_bytes"] == 100 * 300

    def test_extraction_plan_resolution(self):
        assert tiling.extraction_plan((4, 4)) == ("full", 0)
        mode, rows = tiling.extraction_plan((10_000, 10_000))
        assert mode == "tiled" and rows >= 1
        assert tiling.extraction_plan((10_000, 10_000), tile_rows=0) == ("full", 0)
        assert tiling.extraction_plan((4, 4), tile_rows=3) == ("tiled", 3)


def test_backends_thread_tile_rows(skewed_pair):
    """Every backend accepts the tile knob and reports extraction stats."""
    from repro.core.partitioning import partition_two_path
    from repro.matmul.registry import make_default_registry

    left, right = skewed_pair
    partition = partition_two_path(left, right, 2, 2)
    rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
    reference = None
    for backend in make_default_registry():
        stats = {}
        pairs, _, _ = backend.heavy_pairs(
            partition.r_heavy, partition.s_heavy, rows, mids, cols,
            tile_rows=2, extract_stats=stats,
        )
        assert "memory_extract_peak_bytes" in stats, backend.name
        assert "memory_output_bytes" in stats, backend.name
        if backend.name == "sparse":
            assert stats["extract_mode"] == "sparse"
        if reference is None:
            reference = pairs
        else:
            assert pairs == reference, backend.name


def test_legacy_extract_signature_still_supported(skewed_pair):
    """Custom backends overriding the pre-tiling 4-argument extraction hooks
    keep working — the template only forwards the tiling keywords to
    overrides that can accept them."""
    from repro.core.partitioning import partition_two_path
    from repro.matmul import dense as dense_mm
    from repro.matmul.registry import DenseBackend

    class LegacyBackend(DenseBackend):
        name = "legacy-extract"

        def extract_pairs(self, product, rows, cols, threshold):
            return dense_mm.nonzero_block(product, rows, cols, threshold=threshold)

        def extract_counts(self, product, rows, cols, threshold):
            return dense_mm.nonzero_counted_block(
                product, rows, cols, threshold=threshold
            )

    left, right = skewed_pair
    partition = partition_two_path(left, right, 2, 2)
    rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
    legacy, modern = LegacyBackend(), DenseBackend()
    pairs, _, _ = legacy.heavy_pairs(
        partition.r_heavy, partition.s_heavy, rows, mids, cols,
        tile_rows=2, extract_stats={},
    )
    reference, _, _ = modern.heavy_pairs(
        partition.r_heavy, partition.s_heavy, rows, mids, cols
    )
    assert pairs == reference
    counts, _, _ = legacy.heavy_counts(
        partition.r_heavy, partition.s_heavy, rows, mids, cols
    )
    ref_counts, _, _ = modern.heavy_counts(
        partition.r_heavy, partition.s_heavy, rows, mids, cols
    )
    assert counts == ref_counts


def test_operator_surfaces_extraction_stats_in_explain(skewed_pair):
    """The heavy operator's explain() detail carries the memory fields."""
    from repro.core.config import MMJoinConfig
    from repro.core.two_path import two_path_join_detailed

    left, right = skewed_pair
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense",
                          extract_tile_rows=3)
    result = two_path_join_detailed(left, right, config=config)
    heavy = next(op for op in result.explanation.operators
                 if op.operator == "matmul_heavy")
    if heavy.status != "ran" or "extract_mode" not in heavy.detail:
        pytest.skip("workload produced no heavy residual")
    assert heavy.detail["extract_mode"] in ("tiled", "full")
    assert heavy.detail["memory_full_scan_bytes"] >= 0
    assert heavy.detail["memory_extract_peak_bytes"] >= 0


def test_cost_model_extraction_term():
    from repro.matmul.cost_model import MatMulCostModel

    model = MatMulCostModel()
    assert model.estimate_extraction(0, 100) == 0.0
    full = model.estimate_extraction(10_000, 10_000, tile_rows=0)
    tiled = model.estimate_extraction(10_000, 10_000)
    assert full > tiled > 0.0
    # More cores shrink the estimate.
    assert model.estimate_extraction(10_000, 10_000, cores=4) < tiled


def test_wide_product_tiles_in_two_dimensions():
    """A single row past TILE_TARGET_BYTES forces column-band (2-D) tiling."""
    from repro.matmul.tiling import TILE_TARGET_BYTES, choose_tile_cols

    n_cols = TILE_TARGET_BYTES // 4 + 5_000  # one float32 row > the budget
    wide = np.zeros((4, n_cols), dtype=np.float32)
    wide[0, 0] = wide[1, 5] = wide[3, n_cols - 1] = 2.0
    assert choose_tile_cols(n_cols, 4) < n_cols
    stats = {}
    rows, cols = tiling.tiled_nonzero_coords(wide, tile_rows=1, stats=stats)
    er, ec = np.nonzero(wide > 0.5)
    # Column tiles are re-sorted into the same row-major order.
    assert np.array_equal(rows, er) and np.array_equal(cols, ec)
    assert stats["extract_tiles_total"] > 4  # row bands x column bands
    assert stats["memory_extract_peak_bytes"] < wide.size  # << full mask


def test_saturated_band_accounting():
    """Contiguous saturated bands merge into one arithmetic rectangle."""
    arr = np.zeros((100, 50), dtype=np.float32)
    arr[:40] = 1.0   # four saturated bands at tile_rows=10
    arr[70, 3] = 2.0
    stats = {}
    rows, cols, values = tiling.tiled_nonzero_coords(
        arr, tile_rows=10, stats=stats, want_values=True)
    er, ec = np.nonzero(arr > 0.5)
    assert np.array_equal(rows, er) and np.array_equal(cols, ec)
    assert np.array_equal(values, arr[er, ec])
    assert stats["extract_tiles_saturated"] == 4
    assert stats["extract_tiles_skipped"] == 5  # rows 40-69 and 80-99
    assert stats["extract_mode"] == "tiled"
