"""Tests for the symbolic theory module (Section 3 analysis)."""

import math

import pytest

from repro.core import theory


class TestTwoPathBounds:
    def test_lemma3_beats_lemma2_everywhere(self):
        """Lemma 3 is claimed to be strictly better than Lemma 2 for every OUT."""
        n = 1e6
        for exponent in (0.3, 0.6, 1.0, 1.4, 1.9):
            out = n ** exponent
            assert theory.lemma3_runtime(n, out) <= theory.lemma2_runtime(n, out)

    def test_lemma3_case_boundaries(self):
        n = 1e6
        # OUT <= N: Case 1 formula; OUT > N: Case 2 formula.
        assert theory.lemma3_runtime(n, n / 10) == pytest.approx(
            n + theory.case1_runtime(n, n / 10) - n, rel=0.5
        )
        assert theory.case2_runtime(n, n * 100) > theory.case1_runtime(n, n)

    def test_worst_case_output_gives_quadratic_time(self):
        """For OUT = N^2 the bound collapses to O(N^2), matching optimality."""
        n = 1e4
        assert theory.lemma3_runtime(n, n * n) == pytest.approx(n + n * n, rel=0.01)

    def test_case1_optimal_thresholds_minimise_cost(self):
        n, out = 1e6, 1e4
        d1, d2 = theory.optimal_thresholds_two_path(n, out)
        best = theory.two_path_cost(d1, d2, n, out, omega=2.0)
        for scale1 in (0.5, 2.0):
            for scale2 in (0.5, 2.0):
                assert best <= theory.two_path_cost(d1 * scale1, d2 * scale2, n, out, omega=2.0) * 1.001

    def test_case2_optimal_thresholds_minimise_cost(self):
        n, out = 1e5, 1e7
        d1, d2 = theory.optimal_thresholds_two_path(n, out)
        assert d1 == pytest.approx(d2)
        best = theory.two_path_cost(d1, d2, n, out, omega=2.0)
        for scale in (0.4, 2.5):
            assert best <= theory.two_path_cost(d1 * scale, d2 * scale, n, out, omega=2.0) * 1.001

    def test_thresholds_at_least_one(self):
        d1, d2 = theory.optimal_thresholds_two_path(10, 1)
        assert d1 >= 1 and d2 >= 1

    def test_amossen_pagh_regime_check(self):
        n = 1e6
        assert theory.amossen_pagh_valid(n, n * 10)
        assert not theory.amossen_pagh_valid(n, n / 10)

    def test_amossen_pagh_sublinear_artifact_below_sqrt_n(self):
        """The paper's critique: for OUT < sqrt(N) the omega=2 form of the [11]
        bound, N^{2/3} * OUT^{2/3}, dips below the input size — an impossible
        (sublinear) running time — which is why the regime check matters."""
        n = 1e8
        out = math.sqrt(n) / 10
        assert theory.case2_runtime(n, out) < n
        assert not theory.amossen_pagh_valid(n, out)
        # whereas the corrected bound never goes below reading the input
        assert theory.lemma3_runtime(n, out) >= n

    def test_remark_runtime_current_omega(self):
        n, out = 1e6, 1e6
        value = theory.remark_runtime_current_omega(n, out)
        assert value > 0
        # with omega between 2 and 3 the runtime is at least the omega=2 bound
        assert value >= 0.5 * theory.lemma3_runtime(n, out) * 0  # sanity: non-negative

    def test_speedup_over_lemma2_at_least_one(self):
        n = 1e6
        for exponent in (0.5, 1.0, 1.5):
            assert theory.speedup_over_lemma2(n, n ** exponent) >= 1.0


class TestStarBounds:
    def test_example4_runtime_subquadratic(self):
        n = 1e6
        assert theory.example4_runtime(n) < n ** 2
        # and beats the Lemma 2 bound N * OUT^(2/3) = N^2 for OUT = N^1.5
        assert theory.example4_runtime(n) < theory.lemma2_runtime(n, n ** 1.5, k=3)

    def test_example4_thresholds_order(self):
        n = 1e6
        d1, d2 = theory.example4_thresholds(n)
        assert d2 < d1  # the example chooses delta2 < delta1

    def test_star_cost_at_example4_point(self):
        n = 1e4
        out = n ** 1.5
        d1, d2 = theory.example4_thresholds(n)
        cost = theory.star_cost(d1, d2, n, out, k=3, omega=2.0)
        # within a constant factor of the claimed N^{15/8}
        assert cost <= 10 * theory.example4_runtime(n)

    def test_star_cost_monotone_in_out(self):
        n = 1e5
        assert theory.star_cost(10, 10, n, n, k=3) <= theory.star_cost(10, 10, n, n * 100, k=3)


class TestBSIBounds:
    def test_proposition2_machines_better_than_naive(self):
        n, rate = 1e6, 1e3
        assert theory.proposition2_machines(n, rate) < theory.naive_bsi_machines(n, rate)

    def test_proposition2_latency_smaller_for_small_rate(self):
        """The paper: latency improves over the naive O(N) for B <= N^{3/2}."""
        n = 1e6
        assert theory.proposition2_latency(n, 1e3) < n


class TestComparison:
    def test_compare_runtimes_winner(self):
        n = 1e6
        cmp_small = theory.compare_runtimes(n, out=n ** 0.5)
        assert cmp_small.winner() == "mmjoin"
        assert cmp_small.lemma3 <= cmp_small.lemma2 <= cmp_small.full_join * max(1.0, 1.0)

    def test_compare_runtimes_custom_full_join(self):
        cmp = theory.compare_runtimes(1e5, out=1e5, full_join=1e7)
        assert cmp.full_join == 1e7
