"""Unit tests for repro.data.catalog."""

import pytest

from repro.data.catalog import Catalog, CatalogError
from repro.data.relation import Relation


@pytest.fixture
def catalog(tiny_relation, tiny_relation_s):
    cat = Catalog()
    cat.add(tiny_relation)
    cat.add(tiny_relation_s)
    return cat


class TestCatalog:
    def test_add_and_get(self, catalog, tiny_relation):
        assert catalog.get("R") is tiny_relation

    def test_add_with_explicit_name(self, catalog, tiny_relation):
        catalog.add(tiny_relation, name="alias")
        assert catalog.get("alias") is tiny_relation

    def test_get_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("missing")

    def test_contains_and_len(self, catalog):
        assert "R" in catalog and "S" in catalog
        assert len(catalog) == 2

    def test_names_sorted(self, catalog):
        assert catalog.names() == ["R", "S"]

    def test_remove(self, catalog):
        catalog.remove("R")
        assert "R" not in catalog
        catalog.remove("R")  # removing twice is a no-op

    def test_statistics_cached(self, catalog):
        first = catalog.statistics("R")
        second = catalog.statistics("R")
        assert first is second

    def test_statistics_invalidated_on_replace(self, catalog, tiny_relation_s):
        before = catalog.statistics("R")
        catalog.add(tiny_relation_s, name="R")
        after = catalog.statistics("R")
        assert before is not after
        assert after.num_tuples == len(tiny_relation_s)

    def test_stats_table(self, catalog, tiny_relation):
        table = catalog.stats_table()
        assert set(table) == {"R", "S"}
        assert table["R"].num_tuples == len(tiny_relation)

    def test_iteration(self, catalog):
        assert set(iter(catalog)) == {"R", "S"}
