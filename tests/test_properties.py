"""Property-based tests (hypothesis) on the core data structures and algorithms."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import MMJoinConfig
from repro.core.two_path import two_path_join, two_path_join_counts
from repro.data.relation import Relation
from repro.data.setfamily import SetFamily
from repro.joins.baseline import combinatorial_two_path
from repro.joins.hash_join import hash_join_project, hash_join_project_counts
from repro.joins.leapfrog import intersect_sorted, leapfrog_intersection
from repro.joins.project import Deduplicator
from repro.matmul.blocked import blocked_matmul
from repro.matmul.strassen import strassen_matmul
from repro.setops.ssj import ssj_bruteforce, ssj_mmjoin

# Strategy: a small relation as a list of (x, y) pairs over compact domains.
pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)),
    min_size=0,
    max_size=120,
)

two_relations = st.tuples(pairs_strategy, pairs_strategy)

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=100), min_size=0, max_size=40
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestRelationProperties:
    @given(pairs=pairs_strategy)
    @SETTINGS
    def test_construction_dedups_and_preserves_membership(self, pairs):
        rel = Relation.from_pairs(pairs)
        assert len(rel) == len(set(pairs))
        for pair in pairs:
            assert pair in rel

    @given(pairs=pairs_strategy)
    @SETTINGS
    def test_swap_involution(self, pairs):
        rel = Relation.from_pairs(pairs)
        assert rel.swap().swap() == rel

    @given(pairs=pairs_strategy)
    @SETTINGS
    def test_degree_sums_equal_cardinality(self, pairs):
        rel = Relation.from_pairs(pairs)
        assert sum(rel.degrees_x().values()) == len(rel)
        assert sum(rel.degrees_y().values()) == len(rel)

    @given(data=two_relations)
    @SETTINGS
    def test_difference_union_partition(self, data):
        a = Relation.from_pairs(data[0])
        b = Relation.from_pairs(data[1])
        only_a = a.difference(b)
        common = a.intersection(b)
        assert only_a.union(common) == a
        assert len(only_a.intersection(common)) == 0


class TestIntersectionProperties:
    @given(a=sorted_arrays, b=sorted_arrays)
    @SETTINGS
    def test_intersect_sorted_matches_sets(self, a, b):
        expected = sorted(set(a.tolist()) & set(b.tolist()))
        assert intersect_sorted(a, b).tolist() == expected

    @given(lists=st.lists(sorted_arrays, min_size=1, max_size=4))
    @SETTINGS
    def test_leapfrog_matches_sets(self, lists):
        expected = set(lists[0].tolist())
        for lst in lists[1:]:
            expected &= set(lst.tolist())
        assert set(leapfrog_intersection(lists).tolist()) == expected


class TestJoinProperties:
    @given(data=two_relations)
    @SETTINGS
    def test_mmjoin_equals_full_join_project(self, data):
        left = Relation.from_pairs(data[0], name="R")
        right = Relation.from_pairs(data[1], name="S")
        expected = hash_join_project(left, right)
        assert two_path_join(left, right).pairs == expected
        assert two_path_join(
            left, right, config=MMJoinConfig(delta1=2, delta2=2)
        ).pairs == expected
        assert combinatorial_two_path(left, right) == expected

    @given(data=two_relations)
    @SETTINGS
    def test_mmjoin_counts_equal_witness_counts(self, data):
        left = Relation.from_pairs(data[0], name="R")
        right = Relation.from_pairs(data[1], name="S")
        expected = hash_join_project_counts(left, right)
        result = two_path_join_counts(
            left, right, config=MMJoinConfig(delta1=1, delta2=1)
        )
        assert result.counts == expected

    @given(pairs=pairs_strategy)
    @SETTINGS
    def test_self_join_output_symmetric(self, pairs):
        rel = Relation.from_pairs(pairs)
        result = two_path_join(rel, rel).pairs
        assert {(b, a) for a, b in result} == result


class TestDedupProperties:
    @given(
        chunks=st.lists(
            st.lists(st.integers(min_value=0, max_value=63), max_size=30).map(
                lambda xs: np.array(xs, dtype=np.int64)
            ),
            max_size=5,
        ),
        strategy=st.sampled_from(["hash", "sort", "counter", "auto"]),
    )
    @SETTINGS
    def test_all_strategies_equal_set_semantics(self, chunks, strategy):
        dedup = Deduplicator(domain_size=64, strategy=strategy)
        expected = sorted({int(v) for chunk in chunks for v in chunk})
        assert dedup.dedup(chunks).tolist() == expected


class TestMatmulProperties:
    @given(
        rows=st.integers(min_value=1, max_value=12),
        inner=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @SETTINGS
    def test_blocked_and_strassen_match_numpy(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 3, size=(rows, inner)).astype(np.float64)
        b = rng.integers(0, 3, size=(inner, cols)).astype(np.float64)
        expected = a @ b
        assert np.allclose(blocked_matmul(a, b, block_size=4), expected, atol=1e-3)
        assert np.allclose(strassen_matmul(a, b, cutoff=4), expected, atol=1e-6)


class TestSSJProperties:
    @given(
        sets=st.dictionaries(
            st.integers(min_value=0, max_value=8),
            st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=8),
            min_size=1,
            max_size=8,
        ),
        c=st.integers(min_value=1, max_value=3),
    )
    @SETTINGS
    def test_ssj_mmjoin_matches_bruteforce(self, sets, c):
        family = SetFamily.from_dict(sets)
        assert ssj_mmjoin(family, c).pairs == ssj_bruteforce(family, c).pairs
