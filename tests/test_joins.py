"""Unit tests for the join substrate (hash, sort-merge, leapfrog, generic join)."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.joins.generic_join import (
    generic_star_join_project,
    generic_star_join_project_counts,
    generic_two_path_project,
)
from repro.joins.hash_join import (
    batched_hash_join_project,
    hash_join,
    hash_join_count,
    hash_join_materialized,
    hash_join_project,
    hash_join_project_counts,
)
from repro.joins.leapfrog import (
    intersect_sorted,
    intersection_size,
    leapfrog_intersection,
    star_full_join,
    star_full_join_size,
)
from repro.joins.sort_merge import (
    sort_merge_join,
    sort_merge_join_counts,
    sort_merge_join_project,
    sort_merge_join_project_sorted_dedup,
)


def brute_force_two_path(left, right):
    out = set()
    for x, y in left:
        for z, y2 in right:
            if y == y2:
                out.add((x, z))
    return out


def brute_force_star(relations):
    out = set()
    shared = set(relations[0].y_values().tolist())
    for rel in relations[1:]:
        shared &= set(rel.y_values().tolist())
    for y in shared:
        lists = [rel.neighbors_y(y).tolist() for rel in relations]
        def expand(prefix, rest):
            if not rest:
                out.add(tuple(prefix))
                return
            for v in rest[0]:
                expand(prefix + [v], rest[1:])
        expand([], lists)
    return out


class TestHashJoin:
    def test_full_join_matches_bruteforce(self, tiny_relation, tiny_relation_s):
        full = set(hash_join(tiny_relation, tiny_relation_s))
        expected = set()
        for x, y in tiny_relation:
            for z, y2 in tiny_relation_s:
                if y == y2:
                    expected.add((x, y, z))
        assert full == expected

    def test_project_matches_bruteforce(self, tiny_relation, tiny_relation_s):
        assert hash_join_project(tiny_relation, tiny_relation_s) == brute_force_two_path(
            tiny_relation, tiny_relation_s
        )

    def test_project_skewed(self, skewed_pair):
        left, right = skewed_pair
        assert hash_join_project(left, right) == brute_force_two_path(left, right)

    def test_empty_inputs(self, tiny_relation):
        assert hash_join_project(tiny_relation, Relation.empty()) == set()
        assert hash_join_project(Relation.empty(), tiny_relation) == set()

    def test_count_matches_materialisation(self, tiny_relation, tiny_relation_s):
        assert hash_join_count(tiny_relation, tiny_relation_s) == len(
            hash_join_materialized(tiny_relation, tiny_relation_s)
        )

    def test_project_counts_sum_to_full_join(self, tiny_relation, tiny_relation_s):
        counts = hash_join_project_counts(tiny_relation, tiny_relation_s)
        assert sum(counts.values()) == hash_join_count(tiny_relation, tiny_relation_s)

    def test_batched_project(self, tiny_relation, tiny_relation_s):
        expected = brute_force_two_path(tiny_relation, tiny_relation_s)
        candidates = [(1, 1), (1, 2), (5, 5), (6, 3)]
        result = batched_hash_join_project(tiny_relation, tiny_relation_s, candidates)
        assert result == {pair for pair in candidates if pair in expected}

    def test_batched_project_empty_candidates(self, tiny_relation, tiny_relation_s):
        assert batched_hash_join_project(tiny_relation, tiny_relation_s, []) == set()


class TestSortMergeJoin:
    def test_same_result_as_hash_join(self, tiny_relation, tiny_relation_s):
        assert set(sort_merge_join(tiny_relation, tiny_relation_s)) == set(
            hash_join(tiny_relation, tiny_relation_s)
        )

    def test_project(self, skewed_pair):
        left, right = skewed_pair
        assert sort_merge_join_project(left, right) == brute_force_two_path(left, right)

    def test_sorted_dedup_variant(self, tiny_relation, tiny_relation_s):
        expected = sorted(brute_force_two_path(tiny_relation, tiny_relation_s))
        assert sort_merge_join_project_sorted_dedup(tiny_relation, tiny_relation_s) == expected

    def test_counts_match_hash_counts(self, tiny_relation, tiny_relation_s):
        assert sort_merge_join_counts(tiny_relation, tiny_relation_s) == hash_join_project_counts(
            tiny_relation, tiny_relation_s
        )

    def test_empty(self, tiny_relation):
        assert list(sort_merge_join(tiny_relation, Relation.empty())) == []


class TestLeapfrog:
    def test_intersect_sorted_basic(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 8])
        assert intersect_sorted(a, b).tolist() == [3, 5]

    def test_intersect_sorted_disjoint(self):
        assert intersect_sorted(np.array([1, 2]), np.array([3, 4])).size == 0

    def test_intersect_sorted_empty(self):
        assert intersect_sorted(np.array([]), np.array([1])).size == 0

    def test_intersect_commutative(self):
        a = np.array([1, 5, 9, 20, 50])
        b = np.array([5, 20, 21])
        assert intersect_sorted(a, b).tolist() == intersect_sorted(b, a).tolist()

    def test_leapfrog_multiway(self):
        lists = [np.array([1, 2, 3, 4, 5]), np.array([2, 4, 6]), np.array([2, 3, 4])]
        assert leapfrog_intersection(lists).tolist() == [2, 4]

    def test_leapfrog_with_empty_list(self):
        assert leapfrog_intersection([np.array([1, 2]), np.array([])]).size == 0

    def test_leapfrog_no_lists(self):
        assert leapfrog_intersection([]).size == 0

    def test_intersection_size(self):
        assert intersection_size([np.array([1, 2, 3]), np.array([2, 3, 4])]) == 2

    def test_star_full_join_matches_bruteforce(self, tiny_relation, tiny_relation_s):
        rels = [tiny_relation, tiny_relation_s]
        projected = {tup[1:] for tup in star_full_join(rels)}
        assert projected == brute_force_star(rels)

    def test_star_full_join_size(self, tiny_relation, tiny_relation_s):
        rels = [tiny_relation, tiny_relation_s, tiny_relation]
        assert star_full_join_size(rels) == len(list(star_full_join(rels)))

    def test_star_full_join_empty_relation(self, tiny_relation):
        assert list(star_full_join([tiny_relation, Relation.empty()])) == []


class TestGenericJoin:
    def test_two_relation_star_equals_two_path(self, tiny_relation, tiny_relation_s):
        star = generic_star_join_project([tiny_relation, tiny_relation_s])
        expected = brute_force_two_path(tiny_relation, tiny_relation_s)
        assert star == expected

    def test_three_relation_star(self, tiny_relation, tiny_relation_s):
        rels = [tiny_relation, tiny_relation_s, tiny_relation]
        assert generic_star_join_project(rels) == brute_force_star(rels)

    def test_restricted_y(self, tiny_relation, tiny_relation_s):
        rels = [tiny_relation, tiny_relation_s]
        restricted = generic_star_join_project(rels, restrict_to=[4])
        expected = {
            (x, z)
            for x, z in brute_force_two_path(tiny_relation, tiny_relation_s)
            if 4 in set(tiny_relation.neighbors_x(x).tolist())
            and 4 in set(tiny_relation_s.neighbors_x(z).tolist())
        }
        # Every restricted tuple must have witness 4 specifically.
        for x, z in restricted:
            assert 4 in tiny_relation.neighbors_x(x)
            assert 4 in tiny_relation_s.neighbors_x(z)
        assert restricted <= expected

    def test_counts_sum_to_full_join(self, tiny_relation, tiny_relation_s):
        counts = generic_star_join_project_counts([tiny_relation, tiny_relation_s])
        assert sum(counts.values()) == hash_join_count(tiny_relation, tiny_relation_s)

    def test_two_path_project_with_restrictions(self, tiny_relation, tiny_relation_s):
        full = generic_two_path_project(tiny_relation, tiny_relation_s)
        assert full == brute_force_two_path(tiny_relation, tiny_relation_s)
        restricted = generic_two_path_project(
            tiny_relation, tiny_relation_s, restrict_left_x=[5, 6]
        )
        assert restricted == {(x, z) for x, z in full if x in (5, 6)}

    def test_empty_inputs(self, tiny_relation):
        assert generic_star_join_project([tiny_relation, Relation.empty()]) == set()
        assert generic_two_path_project(Relation.empty(), tiny_relation) == set()
