"""Golden snapshot tests for ``explain()`` output.

Plan shape — which operators ran, the strategy, thresholds, backend, matrix
dimensions, partition sizes, memory accounting and (for session runs) the
cache hit/miss columns — is deterministic for fixed inputs and explicit
configs.  These tests normalise away the only volatile values (wall-clock
seconds and estimated costs, i.e. anything printed as a float) and compare
the rest against checked-in golden files, so a plan or cost-model regression
shows up as a readable diff.

Regenerate after an intended change with ``pytest --update-goldens``.
"""

from __future__ import annotations

import re

from strategies import random_relation, skewed_random_relation

from repro.core.config import MMJoinConfig
from repro.core.star import star_join_detailed
from repro.core.two_path import two_path_join_detailed
from repro.serve import QuerySession

# Any float-formatted number (plain or scientific) is volatile timing/cost.
# Leading spaces/tabs are absorbed too: the explain() table right-aligns its
# float columns, so the padding width varies with the float's rendering.
_VOLATILE = re.compile(
    r"[ \t]*(?:-?\d+\.\d+(?:e[+-]?\d+)?|-?\d+e[+-]?\d+)", re.IGNORECASE
)


def normalize(text: str) -> str:
    """Mask float-formatted values; integer facts (sizes, dims, bytes) stay."""
    return _VOLATILE.sub(" <float>", text)


def _left():
    return random_relation(7, n_pairs=150, x_domain=20, y_domain=12, name="R")


def _right():
    return random_relation(8, n_pairs=150, x_domain=20, y_domain=12, name="S")


def test_normalize_masks_floats_keeps_ints():
    masked = normalize("cost:   0.00123 s dims (3, 4, 5) 1.2e-07 bytes 4096")
    assert masked == "cost: <float> s dims (3, 4, 5) <float> bytes 4096"


def test_explain_two_path_dense_golden(golden):
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
    result = two_path_join_detailed(_left(), _right(), config=config)
    golden("explain_two_path_dense", normalize(result.explanation.format()))


def test_explain_two_path_counts_sparse_golden(golden):
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="sparse")
    result = two_path_join_detailed(_left(), _right(), config=config, with_counts=True)
    golden("explain_two_path_counts_sparse", normalize(result.explanation.format()))


def test_explain_two_path_wcoj_golden(golden):
    config = MMJoinConfig(matrix_backend="dense").without_optimizer()
    result = two_path_join_detailed(_left(), _right(), config=config)
    golden("explain_two_path_wcoj", normalize(result.explanation.format()))


def test_explain_star_dense_golden(golden):
    relations = [
        skewed_random_relation(seed, n_pairs=90, x_domain=10, y_domain=8,
                               name=f"R{seed}")
        for seed in (1, 2, 3)
    ]
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
    result = star_join_detailed(relations, config=config)
    golden("explain_star_dense", normalize(result.explanation.format()))


def test_explain_session_warm_golden(golden):
    """The warm-path explanation: every operator cache column reads ``hit``."""
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
    with QuerySession(config=config, feedback=False) as session:
        session.register(_left(), name="R")
        session.register(_right(), name="S")
        session.two_path("R", "S", use_memo=False)
        warm = session.two_path("R", "S", use_memo=False)
    explanation = warm.explanation
    assert explanation is not None
    caches = {op.operator: op.detail.get("cache") for op in explanation.operators}
    assert caches["semijoin_reduce"] == "hit"
    assert caches["light_heavy_partition"] == "hit"
    assert caches["matmul_heavy"] == "hit"
    golden("explain_session_warm", normalize(explanation.format()))


def test_explain_sharded_golden(golden):
    """The rolled-up sharded explanation: per-shard breakdown, warm hits."""
    config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
    left = skewed_random_relation(11, n_pairs=200, x_domain=20, y_domain=14,
                                  name="R")
    right = skewed_random_relation(12, n_pairs=200, x_domain=20, y_domain=14,
                                   name="S")
    with QuerySession(config=config, feedback=False, shards=3) as session:
        session.register(left, name="R", sharded=True)
        session.register(right, name="S", sharded=True)
        session.two_path("R", "S", use_memo=False)
        warm = session.two_path("R", "S", use_memo=False)
    explanation = warm.explanation
    assert explanation is not None
    assert explanation.strategy == "sharded"
    assert explanation.shard_reports
    golden("explain_sharded_warm", normalize(explanation.format()))
