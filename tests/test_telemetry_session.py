"""Integration tests: telemetry threaded through the serving layer.

test_obs.py pins the substrate down in isolation; these tests assert the
end-to-end behaviours the observability PR promises — span-tree shapes for
the real query paths (unsharded, star, sharded, writes), metrics deltas
under batched/async serving, the disabled-mode no-op, and the guarantee
that telemetry never changes results.
"""

from __future__ import annotations

import asyncio

import pytest
from strategies import random_relation

from repro.core.config import MMJoinConfig
from repro.obs import MetricsSnapshot, Telemetry, TelemetryConfig
from repro.plan.query import TwoPathQuery
from repro.serve import QuerySession

RECORD_ALL = TelemetryConfig(slow_query_seconds=0.0)


@pytest.fixture
def relation():
    return random_relation(3, n_pairs=160, x_domain=24, y_domain=20)


def _counter_total(snapshot: MetricsSnapshot, name: str, **match: str) -> float:
    """Sum a counter family over every series matching the given labels."""
    family = snapshot.families.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for labels, value in family["series"].items():
        as_dict = dict(labels)
        if all(as_dict.get(key) == value_ for key, value_ in match.items()):
            total += value
    return total


def _last_trace(session):
    entries = session.telemetry.slow_log.entries()
    assert entries, "RECORD_ALL sessions must log every served call"
    return entries[-1].trace


# --------------------------------------------------------------------------- #
# Span-tree shapes
# --------------------------------------------------------------------------- #
class TestSpanTrees:
    def test_two_path_cold_span_tree(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            result = session.two_path("R", "R", use_memo=False)
            trace = _last_trace(session)
        assert result.trace_id == trace.trace_id
        names = trace.span_names()
        assert names[0] == "two_path"
        for expected in ("plan", "semijoin", "partition", "merge"):
            assert expected in names
        plan = trace.find("plan")
        assert plan.attrs["strategy"] == result.strategy
        assert plan.attrs["output_size"] == result.output_size
        # Operator cache probes surface as plan-span attributes (the first
        # run misses every artifact cache).
        assert plan.attrs["semijoin_cache"] == "miss"
        assert plan.attrs["partition_cache"] == "miss"

    def test_matmul_strategy_traces_extraction(self, relation):
        config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
        with QuerySession(config=config, telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            result = session.two_path("R", "R", use_memo=False)
            trace = _last_trace(session)
        assert result.strategy == "mmjoin"
        matmul = trace.find("matmul")
        assert matmul is not None
        # The non-zero extraction kernel reports which path ran.
        extract = trace.find("extract")
        assert extract is not None
        assert extract.attrs["path"] in ("tiled", "core")

    def test_memo_hit_span_tree_is_annotated_root(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            session.two_path("R", "R")
            repeat = session.two_path("R", "R")
            trace = _last_trace(session)
        assert repeat.from_memo
        # A memo hit never reaches the planner: the trace is the bare root
        # annotated with the memo outcome.
        assert trace.span_names() == ["two_path"]
        assert trace.root.attrs == {"memo": "hit"}

    def test_star_span_tree(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            session.star(["R", "R", "R"], use_memo=False)
            trace = _last_trace(session)
        assert trace.kind == "star"
        assert trace.root.name == "star"
        assert "plan" in trace.span_names()

    def test_sharded_span_tree_has_fanout_and_merge(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2), shards=2,
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R", sharded=True)
            session.two_path("R", "R", use_memo=False)
            trace = _last_trace(session)
        names = trace.span_names()
        assert "shard_fanout" in names and "shard_merge" in names
        fanout = trace.find("shard_fanout")
        assert fanout.attrs["shards"] >= 2
        # Every per-shard subplan runs under the fanout span (worker spans
        # ship back to the submitting span), labelled with its shard index.
        plans = trace.root.find_all("plan")
        shards_seen = {plan.attrs.get("shard") for plan in plans}
        assert len(shards_seen) >= 2
        lookup_kinds = {sp.attrs["kind"] for sp in
                        trace.root.find_all("cache_lookup")}
        assert "shard_merged" in lookup_kinds
        assert "shard_result" in lookup_kinds

    def test_write_trace_and_delta_patch(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2), shards=2,
                          lazy_merge_rows=4096,
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R", sharded=True)
            session.two_path("R", "R", use_memo=False)
            session.append("R", [(101, 102), (103, 104)])
            write_entry = session.telemetry.slow_log.entries()[-1]
            session.two_path("R", "R", use_memo=False)
            query_trace = _last_trace(session)
        # The write got its own trace, with per-shard delta application.
        assert write_entry.kind == "append"
        assert write_entry.path == "absorbed"
        applies = write_entry.trace.root.find_all("delta_apply")
        assert applies and all(sp.attrs["outcome"] == "absorbed"
                               for sp in applies)
        # The read after an absorbed write patches the cached merged result.
        patch = query_trace.find("delta_patch")
        assert patch is not None


# --------------------------------------------------------------------------- #
# Metrics recorded by the session
# --------------------------------------------------------------------------- #
class TestSessionMetrics:
    def test_serving_path_labels(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            # Two runs to fully warm the artifact caches (the matmul operand
            # cache still misses on the second run), then a warm run, then a
            # memo store + memo hit.
            session.two_path("R", "R", use_memo=False)   # cold
            session.two_path("R", "R", use_memo=False)   # cold (operand miss)
            session.two_path("R", "R", use_memo=False)   # warm: hits only
            session.two_path("R", "R")                   # memo miss -> warm
            session.two_path("R", "R")                   # memo hit
            snapshot = session.metrics()
        assert snapshot.value("repro_queries_total",
                              kind="two_path", path="cold") == 2
        assert snapshot.value("repro_queries_total",
                              kind="two_path", path="warm") == 2
        assert snapshot.value("repro_queries_total",
                              kind="two_path", path="memo") == 1
        hist = snapshot.histogram("repro_query_seconds",
                                  kind="two_path", path="memo")
        assert hist["count"] == 1

    def test_write_outcome_counters(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2), shards=2,
                          lazy_merge_rows=4096) as session:
            session.register(relation, name="R", sharded=True)
            session.append("R", [(201, 202)])
            snapshot = session.metrics()
            assert snapshot.value("repro_writes_total",
                                  op="append", outcome="absorbed") == 1
            assert snapshot.value("repro_write_rows_total", op="append") == 1
        # Eager folding (threshold 0) reports the other outcome.
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2), shards=2,
                          lazy_merge_rows=0) as session:
            session.register(relation, name="R", sharded=True)
            session.append("R", [(201, 202)])
            snapshot = session.metrics()
            assert snapshot.value("repro_writes_total",
                                  op="append", outcome="folded") == 1

    def test_unsharded_write_folds(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            session.append("R", [(77, 78)])
            snapshot = session.metrics()
        assert snapshot.value("repro_writes_total",
                              op="append", outcome="folded") == 1

    def test_shard_subplan_and_skew_metrics(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          shards=2) as session:
            session.register(relation, name="R", sharded=True)
            session.two_path("R", "R", use_memo=False)
            snapshot = session.metrics()
        per_shard = snapshot.families.get("repro_shard_subplan_seconds")
        assert per_shard is not None and len(per_shard["series"]) >= 2
        assert snapshot.value("repro_shard_skew", kind="two_path") >= 1.0

    def test_metrics_delta_under_submit_batch(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            before = session.metrics()
            queries = [
                TwoPathQuery(left=relation, right=relation),
                TwoPathQuery(left=relation, right=relation, counting=True),
                TwoPathQuery(left=relation, right=relation),
            ]
            results = session.submit_batch(queries)
            delta = session.metrics().delta(before)
        assert len(results) == 3
        assert _counter_total(delta, "repro_queries_total") == 3
        assert delta.value("repro_batches_total") == 1
        assert delta.histogram("repro_batch_seconds")["count"] == 1

    def test_metrics_delta_under_asubmit(self, relation):
        async def serve():
            with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
                session.register(relation, name="R")
                before = session.metrics()
                query = TwoPathQuery(left=relation, right=relation)
                first, second = await asyncio.gather(
                    session.asubmit(query), session.asubmit(query)
                )
                return first, second, session.metrics().delta(before)

        first, second, delta = asyncio.run(serve())
        assert first.pairs == second.pairs
        assert _counter_total(delta, "repro_queries_total") == 2
        # The serving pool's queue-wait histogram saw both submissions.
        wait = delta.histogram("repro_pool_wait_seconds", pool="serving")
        assert wait is not None and wait["count"] >= 2

    def test_batch_member_traces_get_own_ids(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            queries = [TwoPathQuery(left=relation, right=relation)] * 2
            results = session.submit_batch(queries, use_memo=False)
        ids = [r.trace_id for r in results]
        assert all(ids) and len(set(ids)) == 2


# --------------------------------------------------------------------------- #
# Legacy stats views fold onto one accounting source
# --------------------------------------------------------------------------- #
class TestStatsViews:
    def test_cache_stats_and_gauges_agree(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            session.two_path("R", "R", use_memo=False)
            session.two_path("R", "R", use_memo=False)
            stats = session.cache_stats()
            snapshot = session.metrics()
        artifacts = stats["artifacts"]
        expected = artifacts["hits"] / (artifacts["hits"] + artifacts["misses"])
        assert snapshot.value("repro_cache_hit_ratio", cache="artifacts",
                              kind="all") == pytest.approx(expected)
        assert snapshot.value("repro_cache_bytes",
                              cache="artifacts") == artifacts["bytes"]
        assert snapshot.value("repro_session_queries_served") == \
            stats["queries_served"]

    def test_kind_stats_partition_the_aggregate(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            session.two_path("R", "R", use_memo=False)
            session.two_path("R", "R", use_memo=False)
            kind_stats = session.artifacts.kind_stats()
            stats = session.artifacts.stats()
        assert {"semijoin", "partition"} <= set(kind_stats)
        assert sum(row["hits"] for row in kind_stats.values()) == stats["hits"]
        assert sum(row["misses"] for row in kind_stats.values()) == stats["misses"]
        # Per-kind hit-ratio gauges surface through the snapshot.
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(relation, name="R")
            session.two_path("R", "R", use_memo=False)
            session.two_path("R", "R", use_memo=False)
            snapshot = session.metrics()
        assert snapshot.value("repro_cache_hit_ratio", cache="artifacts",
                              kind="semijoin") == pytest.approx(0.5)

    def test_shard_stats_and_gauges_agree(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          shards=2) as session:
            session.register(relation, name="R", sharded=True)
            session.two_path("R", "R", use_memo=False)
            session.two_path("R", "R", use_memo=False)
            stats = session.shard_stats()
            snapshot = session.metrics()
        for shard, counters in stats["per_shard"].items():
            assert snapshot.value("repro_shard_queries",
                                  shard=shard) == counters["queries"]
        assert snapshot.value("repro_router_routed") == \
            stats["router"]["routed"]

    def test_feedback_extract_rate_gauge(self, relation):
        # Forced thresholds make the heavy matmul run, so the per-mode
        # extraction-rate gauge appears.
        config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
        with QuerySession(config=config) as session:
            session.register(relation, name="R")
            session.two_path("R", "R", use_memo=False)
            snapshot = session.metrics()
        rates = snapshot.families.get("repro_extract_seconds_per_cell")
        assert rates is not None and len(rates["series"]) >= 1
        for labels, value in rates["series"].items():
            assert dict(labels)["mode"]
            assert value > 0.0

    def test_feedback_cost_ratio_gauge(self):
        # The optimizer path produces non-zero cost estimates, so the
        # per-operator actual/estimated ratio gauge appears.
        big = random_relation(7, n_pairs=600, x_domain=60, y_domain=50)
        with QuerySession() as session:
            session.register(big, name="R")
            session.two_path("R", "R", use_memo=False)
            snapshot = session.metrics()
        ratios = snapshot.families.get("repro_cost_ratio")
        assert ratios is not None and len(ratios["series"]) >= 1
        for labels, value in ratios["series"].items():
            assert dict(labels).get("operator") or dict(labels).get("backend")
            assert value > 0.0


# --------------------------------------------------------------------------- #
# Slow-query log through the session
# --------------------------------------------------------------------------- #
class TestSlowQueryForensics:
    def test_threshold_zero_logs_every_query_with_explain(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=RECORD_ALL) as session:
            session.register(relation, name="R")
            result = session.two_path("R", "R", use_memo=False)
            entry = session.telemetry.slow_log.get(result.trace_id)
        assert entry is not None
        assert entry.kind == "two_path" and entry.path == "cold"
        assert "strategy" in entry.explain_text
        assert "plan" in entry.format()

    def test_default_threshold_skips_fast_queries(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=TelemetryConfig(slow_query_seconds=60.0),
                          ) as session:
            session.register(relation, name="R")
            session.two_path("R", "R", use_memo=False)
            assert len(session.telemetry.slow_log) == 0

    def test_ring_buffer_bounds_session_memory(self, relation):
        config = TelemetryConfig(slow_query_seconds=0.0, slow_log_capacity=2)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=config) as session:
            session.register(relation, name="R")
            for _ in range(5):
                session.two_path("R", "R", use_memo=False)
            assert len(session.telemetry.slow_log) == 2


# --------------------------------------------------------------------------- #
# Disabled mode and the no-interference guarantee
# --------------------------------------------------------------------------- #
class TestDisabledAndEquivalence:
    def test_disabled_session_is_inert(self, relation):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=False) as session:
            session.register(relation, name="R")
            result = session.two_path("R", "R", use_memo=False)
            session.append("R", [(301, 302)])
            snapshot = session.metrics()
        assert result.trace_id is None
        assert snapshot.names() == []
        assert len(session.telemetry.slow_log) == 0
        assert not session.telemetry.enabled

    def test_telemetry_never_changes_results(self, relation):
        outcomes = []
        for telemetry in (False, True, RECORD_ALL):
            with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                              telemetry=telemetry) as session:
                session.register(relation, name="R")
                cold = session.two_path("R", "R", use_memo=False)
                session.append("R", [(401, 402), (403, 404)])
                after = session.two_path("R", "R", use_memo=False)
                outcomes.append((cold.pairs, after.pairs))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_sharded_results_unchanged_by_telemetry(self, relation):
        outcomes = []
        for telemetry in (False, RECORD_ALL):
            with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                              shards=3, telemetry=telemetry) as session:
                session.register(relation, name="R", sharded=True)
                outcomes.append(session.two_path("R", "R", use_memo=False).pairs)
        assert outcomes[0] == outcomes[1]

    def test_shared_telemetry_across_sessions(self, relation):
        telemetry = Telemetry()
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=telemetry) as first:
            first.register(relation, name="R")
            first.two_path("R", "R", use_memo=False)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=telemetry) as second:
            second.register(relation, name="R")
            second.two_path("R", "R", use_memo=False)
            snapshot = second.metrics()
        assert _counter_total(snapshot, "repro_queries_total",
                              kind="two_path") == 2
