"""Unit tests for the serving layer: ArtifactCache, QuerySession, feedback.

The differential harness proves result *correctness*; these tests pin the
serving behaviours down: cache-hit counters, LRU byte budgeting, versioned
invalidation on mutation, memo reuse across similarity thresholds, the
estimated-vs-actual feedback loop, and the batched/async entry points.
"""

from __future__ import annotations

import asyncio

import pytest
from strategies import random_relation, skewed_random_relation

from repro.core.config import MMJoinConfig
from repro.joins.baseline import combinatorial_two_path
from repro.matmul.cost_model import MatMulCostModel
from repro.plan.query import TwoPathQuery
from repro.serve import ArtifactCache, QuerySession
from repro.serve.artifacts import token_mentions


# --------------------------------------------------------------------------- #
# ArtifactCache
# --------------------------------------------------------------------------- #
class TestArtifactCache:
    def test_lookup_counts_hits_and_misses(self):
        cache = ArtifactCache()
        found, _ = cache.lookup("a")
        assert not found and cache.misses == 1
        cache.put("a", 42, nbytes=8)
        found, value = cache.lookup("a")
        assert found and value == 42 and cache.hits == 1

    def test_lru_eviction_respects_byte_budget(self):
        cache = ArtifactCache(max_bytes=100)
        cache.put("a", "A", nbytes=40)
        cache.put("b", "B", nbytes=40)
        cache.lookup("a")  # refresh a: b becomes the LRU entry
        cache.put("c", "C", nbytes=40)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1
        assert cache.current_bytes <= 100

    def test_oversized_entry_refused(self):
        cache = ArtifactCache(max_bytes=10)
        cache.put("big", "X", nbytes=1000)
        assert "big" not in cache and len(cache) == 0

    def test_replace_updates_bytes(self):
        cache = ArtifactCache(max_bytes=100)
        cache.put("a", "A", nbytes=60)
        cache.put("a", "A2", nbytes=10)
        assert cache.current_bytes == 10

    def test_oversized_replace_drops_stale_entry(self):
        # Regression: the oversized refusal used to happen *before* the old
        # entry under the key was popped, so a replace with a too-large
        # rebuilt artifact left the stale old value serving hits.
        cache = ArtifactCache(max_bytes=100)
        cache.put("a", "old", nbytes=40)
        cache.put("a", "rebuilt-too-big", nbytes=1000)
        assert "a" not in cache
        found, value = cache.lookup("a")
        assert not found and value is None
        assert cache.current_bytes == 0

    def test_invalidate_relation_matches_nested_tokens(self):
        cache = ArtifactCache()
        base = ("rel", "R", 0)
        derived = ("drv", "semijoin", (base, ("rel", "S", 1)), False, 0)
        cache.put(("semijoin", (base,)), 1, 8)
        cache.put(("partition", (derived,)), 2, 8)
        cache.put(("semijoin", (("rel", "S", 0),)), 3, 8)
        assert token_mentions(derived, "R") and not token_mentions(derived, "Q")
        dropped = cache.invalidate_relation("R")
        assert dropped == 2
        assert ("semijoin", (("rel", "S", 0),)) in cache


# --------------------------------------------------------------------------- #
# QuerySession serving behaviours
# --------------------------------------------------------------------------- #
@pytest.fixture
def session_inputs():
    left = skewed_random_relation(21, n_pairs=400, x_domain=60, y_domain=40, name="R")
    right = skewed_random_relation(22, n_pairs=400, x_domain=60, y_domain=40, name="S")
    return left, right


class TestQuerySession:
    def test_warm_run_skips_layout_and_operand_construction(self, session_inputs):
        """The acceptance property: warm explain() shows cache hits everywhere."""
        left, right = session_inputs
        config = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")
        with QuerySession(config=config) as session:
            session.register(left)
            session.register(right)
            cold = session.two_path("R", "S", use_memo=False)
            warm = session.two_path("R", "S", use_memo=False)
        cold_caches = {op.operator: op.detail.get("cache")
                       for op in cold.explanation.operators}
        warm_caches = {op.operator: op.detail.get("cache")
                       for op in warm.explanation.operators}
        assert cold_caches["semijoin_reduce"] == "miss"
        assert warm_caches["semijoin_reduce"] == "hit"
        assert warm_caches["light_heavy_partition"] == "hit"
        assert warm_caches["matmul_heavy"] == "hit"
        assert warm.explanation.session_stats["operator_cache_hits"] == 3
        # Cached operands report zero build time: construction was skipped.
        heavy = next(op for op in warm.explanation.operators
                     if op.operator == "matmul_heavy")
        assert heavy.detail["build_seconds"] == 0.0

    def test_memo_short_circuits_and_reports(self, session_inputs):
        left, right = session_inputs
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left)
            session.register(right)
            first = session.two_path("R", "S")
            second = session.two_path("R", "S")
            assert not first.from_memo and second.from_memo
            assert second.pairs == first.pairs
            assert "memo" in second.explain().splitlines()[0]
            assert session.memo.stats()["hits"] == 1

    def test_update_bumps_version_and_invalidates(self, session_inputs):
        left, right = session_inputs
        replacement = random_relation(33, n_pairs=300, x_domain=50,
                                      y_domain=40, name="R")
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left)
            session.register(right)
            assert session.version("R") == 0
            session.two_path("R", "S")
            assert len(session.artifacts) > 0 and len(session.memo) == 1
            session.update("R", replacement)
            assert session.version("R") == 1
            assert session.artifacts.stats()["invalidations"] > 0
            result = session.two_path("R", "S")
            assert not result.from_memo
            assert result.pairs == combinatorial_two_path(replacement, right)

    def test_remove_unregisters(self, session_inputs):
        left, _ = session_inputs
        session = QuerySession()
        session.register(left)
        session.remove("R")
        with pytest.raises(Exception):
            session.relation("R")
        with pytest.raises(KeyError):
            session.update("R", left)

    def test_similarity_threshold_sweep_reuses_memo(self):
        family_rel = skewed_random_relation(5, n_pairs=300, x_domain=40,
                                            y_domain=30, name="F")
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            from repro.data.setfamily import SetFamily

            from repro.setops.ssj import ssj_bruteforce

            family = SetFamily.from_relation(family_rel)
            session.register_family(family, name="F")
            r2 = session.similarity("F", c=2)
            assert session.memo.stats()["hits"] == 0
            r3 = session.similarity("F", c=3)  # same counting join, memo hit
            assert session.memo.stats()["hits"] == 1
            assert r2.pairs == ssj_bruteforce(family, c=2).pairs
            assert r3.pairs == ssj_bruteforce(family, c=3).pairs

    def test_feedback_calibrates_cost_model(self, session_inputs):
        left, right = session_inputs
        model = MatMulCostModel()
        assert not model.is_calibrated
        with QuerySession(config=MMJoinConfig(delta1=1, delta2=1),
                          cost_model=model) as session:
            session.register(left)
            session.register(right)
            session.two_path("R", "S", use_memo=False)
        assert session.feedback.observations >= 1
        assert model.is_calibrated  # measured product entered the table
        summary = session.feedback.summary()
        assert any(row["operator"] == "matmul_heavy" for row in summary)

    def test_feedback_disabled_leaves_model_untouched(self, session_inputs):
        left, right = session_inputs
        model = MatMulCostModel()
        with QuerySession(config=MMJoinConfig(delta1=1, delta2=1),
                          cost_model=model, feedback=False) as session:
            session.register(left)
            session.register(right)
            session.two_path("R", "S")
        assert not model.is_calibrated
        assert session.feedback.observations == 0

    def test_memo_byte_budget_evicts(self, session_inputs):
        left, right = session_inputs
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          memo_bytes=1) as session:
            session.register(left)
            session.register(right)
            session.two_path("R", "S")
            # The only entry exceeded the budget, so nothing was admitted.
            assert len(session.memo) == 0
            repeat = session.two_path("R", "S")
            assert not repeat.from_memo

    def test_anonymous_relations_still_cache(self, session_inputs):
        """Ad-hoc queries auto-register, so repeats hit the caches too."""
        left, right = session_inputs
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            query = TwoPathQuery(left=left, right=right)
            first = session.evaluate(query)
            second = session.evaluate(query)
        assert second.from_memo
        assert first.pairs == second.pairs

    def test_cost_model_observe_blends(self):
        model = MatMulCostModel()
        model.observe(64, 64, 64, cores=1, seconds=1.0)
        first = model.table()[64]
        model.observe(64, 64, 64, cores=1, seconds=3.0)
        blended = model.table()[64]
        assert first == pytest.approx(1.0)
        assert blended == pytest.approx(2.0)  # EMA with default blend=0.5
        model.observe(0, 64, 64, seconds=1.0)  # degenerate dims ignored
        assert set(model.table()) == {64}


# --------------------------------------------------------------------------- #
# Batched / async serving
# --------------------------------------------------------------------------- #
class TestBatchAndAsync:
    def test_batch_groups_share_preparation(self, session_inputs):
        left, right = session_inputs
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left)
            session.register(right)
            queries = [
                TwoPathQuery(left=left, right=right),
                TwoPathQuery(left=left, right=right, counting=True),
                TwoPathQuery(left=left, right=right),  # duplicate: memo hit
            ]
            results = session.submit_batch(queries)
            assert len(results) == 3
            expected = combinatorial_two_path(left, right)
            assert results[0].pairs == expected
            assert results[2].pairs == expected
            assert set(results[1].counts) == expected
            # The counting follower shares the leader's semijoin reduction.
            follower_caches = {
                op.operator: op.detail.get("cache")
                for op in results[1].explanation.operators
            }
            assert follower_caches["semijoin_reduce"] == "hit"

    def test_batch_empty(self):
        with QuerySession() as session:
            assert session.submit_batch([]) == []

    def test_batch_with_parallel_light_join_does_not_deadlock(self, session_inputs):
        """Regression: followers must not fan out on the operator pools.

        With ``cores=2``, each follower's light join borrows the session's
        persistent operator executor; if the batch fan-out shared that pool,
        every worker would block waiting on inner tasks that can never be
        scheduled.  High thresholds keep the light partition non-empty so
        the inner ``map`` genuinely runs.
        """
        left, right = session_inputs
        config = MMJoinConfig(delta1=500, delta2=500, cores=2)
        with QuerySession(config=config) as session:
            session.register(left)
            session.register(right)
            queries = [TwoPathQuery(left=left, right=right)] * 4
            results = session.submit_batch(queries, use_memo=False)
        expected = combinatorial_two_path(left, right)
        assert all(r.pairs == expected for r in results)

    def test_anonymous_registrations_are_bounded(self):
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.max_anon_relations = 4
            for seed in range(10):
                rel = random_relation(seed, n_pairs=60, x_domain=10, y_domain=8)
                session.evaluate(TwoPathQuery(left=rel, right=rel), use_memo=False)
            assert len(session.names()) <= 4

    def test_asubmit_serves_from_event_loop(self, session_inputs):
        left, right = session_inputs

        async def serve():
            with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
                session.register(left)
                session.register(right)
                first, second = await asyncio.gather(
                    session.asubmit(TwoPathQuery(left=left, right=right)),
                    session.asubmit(TwoPathQuery(left=left, right=right, counting=True)),
                )
                return first, second

        first, second = asyncio.run(serve())
        expected = combinatorial_two_path(left, right)
        assert first.pairs == expected
        assert set(second.counts) == expected
