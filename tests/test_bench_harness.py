"""Tests for the benchmark harness (datasets registry, runner, report)."""

import pytest

from repro.bench.datasets import (
    bench_dataset,
    bench_datasets,
    bench_family,
    dataset_names,
    table2_rows,
)
from repro.bench.report import format_series, format_table, print_table
from repro.bench.runner import Measurement, run_series, speedup, time_call


class TestDatasets:
    def test_dataset_names_order(self):
        assert dataset_names() == ["dblp", "roadnet", "jokes", "words", "protein", "image"]

    def test_bench_dataset_cached(self):
        a = bench_dataset("dblp", scale=0.02)
        b = bench_dataset("dblp", scale=0.02)
        assert a is b

    def test_bench_datasets_all_present(self):
        datasets = bench_datasets(scale=0.02)
        assert set(datasets) == set(dataset_names())
        assert all(len(rel) > 0 for rel in datasets.values())

    def test_bench_family(self):
        fam = bench_family("jokes", scale=0.02)
        assert fam.num_sets() > 0

    def test_table2_rows(self):
        rows = table2_rows(scale=0.02)
        assert len(rows) == 6
        for row in rows:
            assert {"dataset", "tuples", "sets", "dom", "avg_set_size"} <= set(row)
            assert row["tuples"] > 0


class TestRunner:
    def test_time_call_returns_value(self):
        measurement = time_call(lambda a, b: a + b, 2, 3, repeats=3)
        assert measurement.value == 5
        assert measurement.seconds >= 0
        assert len(measurement.runs) == 3

    def test_trimming_drops_extremes(self):
        measurement = Measurement(seconds=0.0, runs=[1.0, 5.0, 100.0])
        assert measurement.best == 1.0
        assert measurement.worst == 100.0

    def test_time_call_no_trim(self):
        measurement = time_call(lambda: None, repeats=2, trim=False)
        assert len(measurement.runs) == 2

    def test_run_series(self):
        series = run_series(lambda p: p * 2, [1, 2, 3], repeats=1)
        assert [p for p, _ in series] == [1, 2, 3]
        assert [m.value for _, m in series] == [2, 4, 6]

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"dataset": "dblp", "seconds": 0.123456}, {"dataset": "jokes", "seconds": 12.0}]
        text = format_table(rows, title="Figure 4a")
        assert "Figure 4a" in text
        assert "dblp" in text and "jokes" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_handles_missing_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_series(self):
        series = {
            "mmjoin": [(2, 1.0), (4, 0.6)],
            "non-mmjoin": [(2, 2.0), (4, 1.5)],
        }
        text = format_series(series, x_label="cores", title="Figure 4d")
        assert "cores" in text and "mmjoin" in text and "non-mmjoin" in text

    def test_print_table(self, capsys):
        print_table([{"x": 1}], title="T")
        captured = capsys.readouterr()
        assert "T" in captured.out and "1" in captured.out

    def test_scientific_formatting_of_tiny_values(self):
        text = format_table([{"v": 1.23e-7}])
        assert "e-07" in text
