"""Unit tests for the shard package: spec, containers, router, rollup.

The differential harness proves sharded *results* correct; these tests pin
the mechanics down: deterministic key placement, heavy-key isolation,
partition round-trips, shard-local update validation, and the router's
fallback conditions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import pair_lists, skewed_random_relation

from repro.core.estimation import detect_heavy_join_keys
from repro.data.relation import Relation
from repro.serve.artifacts import (
    ArtifactCache,
    token_mentions,
    token_mentions_any_shard,
    token_mentions_shard_update,
)
from repro.shard.sharded import ShardedRelation
from repro.shard.spec import ShardingSpec


# --------------------------------------------------------------------------- #
# ShardingSpec
# --------------------------------------------------------------------------- #
class TestShardingSpec:
    def test_assignment_is_deterministic_and_in_range(self):
        spec = ShardingSpec(4, heavy_keys=[7, 100])
        keys = np.arange(-50, 200, dtype=np.int64)
        owners = spec.shard_of_keys(keys)
        assert np.array_equal(owners, spec.shard_of_keys(keys))
        assert owners.min() >= 0 and owners.max() < spec.num_shards

    def test_heavy_keys_get_dedicated_shards(self):
        spec = ShardingSpec(3, heavy_keys=[9, 2])
        assert spec.num_shards == 5
        # heavy_keys are stored sorted; shard ids follow that order
        assert spec.shard_of(2) == 3 and spec.shard_of(9) == 4
        assert spec.kind(3) == "heavy" and spec.heavy_key_of(4) == 9
        assert spec.kind(0) == "hash"
        with pytest.raises(ValueError):
            spec.heavy_key_of(0)

    def test_hash_spread_covers_multiple_shards(self):
        spec = ShardingSpec(8)
        owners = spec.shard_of_keys(np.arange(1000, dtype=np.int64))
        assert len(np.unique(owners)) == 8

    def test_single_shard_spec(self):
        spec = ShardingSpec(1)
        owners = spec.shard_of_keys(np.arange(100, dtype=np.int64))
        assert (owners == 0).all() and spec.num_shards == 1

    def test_equality(self):
        assert ShardingSpec(3, [5]) == ShardingSpec(3, [5])
        assert ShardingSpec(3, [5]) != ShardingSpec(3, [6])
        assert ShardingSpec(3, [5]) != ShardingSpec(4, [5])

    def test_describe_rows(self):
        rows = ShardingSpec(2, heavy_keys=[11]).describe()
        assert [row["kind"] for row in rows] == ["hash", "hash", "heavy"]
        assert rows[2]["heavy_key"] == 11

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError):
            ShardingSpec(2).kind(2)


# --------------------------------------------------------------------------- #
# Heavy-key detection (degree statistics)
# --------------------------------------------------------------------------- #
class TestDetectHeavyJoinKeys:
    def test_hot_witness_detected(self):
        rel = Relation.from_pairs(
            [(x, 0) for x in range(60)] + [(x, 1 + x % 10) for x in range(40)]
        )
        heavy = detect_heavy_join_keys(rel, shards=4)
        assert 0 in heavy and heavy[0] == 60
        assert all(key == 0 for key in heavy)

    def test_uniform_relation_has_no_heavy_keys(self):
        rel = Relation.from_pairs([(x, x % 20) for x in range(100)])
        assert detect_heavy_join_keys(rel, shards=4) == {}

    def test_cap_keeps_highest_degree_keys(self):
        pairs = []
        for y, fanout in enumerate((50, 40, 30, 20)):
            pairs += [(x, y) for x in range(fanout)]
        rel = Relation.from_pairs(pairs)
        heavy = detect_heavy_join_keys(rel, shards=2, balance_factor=0.1, max_heavy=2)
        assert set(heavy) == {0, 1}

    def test_disabled_cases(self):
        rel = Relation.from_pairs([(1, 1)])
        assert detect_heavy_join_keys(rel, shards=1) == {}
        assert detect_heavy_join_keys(Relation.empty(), shards=4) == {}


# --------------------------------------------------------------------------- #
# ShardedRelation
# --------------------------------------------------------------------------- #
class TestShardedRelation:
    def _sharded(self, seed=3, shards=4, heavy=()):
        rel = skewed_random_relation(seed, n_pairs=300, x_domain=30, y_domain=25)
        spec = ShardingSpec(shards, heavy_keys=heavy)
        return rel, ShardedRelation.partition(rel, spec)

    def test_partition_round_trips(self):
        rel, sharded = self._sharded(heavy=(3, 7))
        assert len(sharded) == len(rel)
        assert sharded.combined() == rel
        # shards partition the key space: no witness in two shards
        seen = {}
        for shard, sub in enumerate(sharded.shards):
            for y in np.unique(sub.ys):
                assert seen.setdefault(int(y), shard) == shard

    def test_shards_stay_sorted_and_deduped(self):
        _, sharded = self._sharded()
        for sub in sharded.shards:
            if len(sub):
                assert np.array_equal(sub.data, np.unique(sub.data, axis=0))

    def test_heavy_shard_holds_only_its_key(self):
        rel = Relation.from_pairs([(x, 0) for x in range(50)] +
                                  [(x, x % 7 + 1) for x in range(60)])
        spec = ShardingSpec(3, heavy_keys=[0])
        sharded = ShardedRelation.partition(rel, spec)
        heavy = sharded.shard(3)
        assert len(heavy) == 50 and set(heavy.ys.tolist()) == {0}
        for sub in sharded.shards[:3]:
            assert 0 not in set(sub.ys.tolist())

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(rows=pair_lists(max_size=60))
    def test_partition_union_property(self, rows):
        rel = Relation.from_pairs(rows)
        spec = ShardingSpec(5, heavy_keys=[2])
        sharded = ShardedRelation.partition(rel, spec)
        assert sharded.combined() == rel

    def test_replace_shard_validates_ownership(self):
        rel, sharded = self._sharded()
        target = int(np.argmax(sharded.sizes()))
        other = (target + 1) % sharded.num_shards
        foreign = sharded.shard(other)
        if len(foreign):
            with pytest.raises(ValueError):
                sharded.replace_shard(target, foreign)

    def test_replace_shard_refreshes_combined(self):
        rel, sharded = self._sharded()
        before = sharded.combined()
        target = int(np.argmax(sharded.sizes()))
        kept = sharded.shard(target).data[::2]
        sharded.replace_shard(target, Relation(np.array(kept), sorted_dedup=True))
        combined = sharded.combined()
        assert combined is not before
        assert len(sharded.shard(target)) == len(kept)
        assert len(combined) == sum(sharded.sizes())
        # combined data stays sorted lexicographically (the Relation contract)
        data = combined.data
        if len(data) > 1:
            order = np.lexsort((data[:, 1], data[:, 0]))
            assert np.array_equal(data, data[order])

    def test_mismatched_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedRelation(ShardingSpec(3), [Relation.empty()], name="R")


# --------------------------------------------------------------------------- #
# Shard-aware cache tokens
# --------------------------------------------------------------------------- #
class TestShardTokens:
    BASE = ("rel", "R", 4)
    SHARD = ("shard", "R", 2, 1)
    SIBLING = ("shard", "R", 3, 0)
    OTHER = ("shard", "S", 2, 0)

    def test_token_mentions_covers_shard_leaves(self):
        derived = ("drv", "semijoin", (self.SHARD, self.OTHER), False, 0)
        assert token_mentions(derived, "R") and token_mentions(derived, "S")
        assert not token_mentions(derived, "Q")

    def test_shard_update_predicate_spares_siblings(self):
        assert token_mentions_shard_update(self.BASE, "R", 2)
        assert token_mentions_shard_update(self.SHARD, "R", 2)
        assert not token_mentions_shard_update(self.SIBLING, "R", 2)
        assert not token_mentions_shard_update(self.OTHER, "R", 2)
        nested = ("partition", (("drv", "x", (self.SIBLING,), None, 0),))
        assert not token_mentions_shard_update(nested, "R", 2)

    def test_any_shard_predicate_ignores_base(self):
        assert token_mentions_any_shard(self.SHARD, "R")
        assert not token_mentions_any_shard(self.BASE, "R")
        assert not token_mentions_any_shard(self.OTHER, "R")

    def test_cache_invalidate_shard(self):
        cache = ArtifactCache()
        cache.put(("semijoin", (self.SHARD, self.OTHER)), 1, 8)
        cache.put(("semijoin", (self.SIBLING, self.OTHER)), 2, 8)
        cache.put(("memo", (self.BASE,)), 3, 8)
        dropped = cache.invalidate_shard("R", 2)
        assert dropped == 2
        assert ("semijoin", (self.SIBLING, self.OTHER)) in cache

    def test_cache_invalidate_shards(self):
        cache = ArtifactCache()
        cache.put(("semijoin", (self.SHARD,)), 1, 8)
        cache.put(("memo", (self.BASE,)), 2, 8)
        assert cache.invalidate_shards("R") == 1
        assert ("memo", (self.BASE,)) in cache
