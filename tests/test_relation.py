"""Unit tests for repro.data.relation."""

import numpy as np
import pytest

from repro.data.relation import Relation, RelationError, RelationStats


class TestConstruction:
    def test_from_pairs_dedups(self):
        rel = Relation.from_pairs([(1, 2), (1, 2), (3, 4)])
        assert len(rel) == 2

    def test_from_pairs_empty(self):
        rel = Relation.from_pairs([])
        assert len(rel) == 0
        assert not rel

    def test_from_arrays(self):
        rel = Relation.from_arrays([1, 2, 3], [4, 5, 6])
        assert len(rel) == 3
        assert (2, 5) in rel

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(RelationError):
            Relation.from_arrays([1, 2], [3])

    def test_from_set_family(self):
        rel = Relation.from_set_family({1: [10, 11], 2: [10]})
        assert len(rel) == 3
        assert (1, 10) in rel and (2, 10) in rel

    def test_from_set_family_empty(self):
        assert len(Relation.from_set_family({})) == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(RelationError):
            Relation(np.zeros((3, 3)))

    def test_empty_constructor(self):
        assert len(Relation.empty("X")) == 0

    def test_name_preserved(self):
        rel = Relation.from_pairs([(1, 2)], name="edges")
        assert rel.name == "edges"
        assert "edges" in repr(rel)


class TestAccessors:
    def test_iteration_yields_python_ints(self, tiny_relation):
        for x, y in tiny_relation:
            assert isinstance(x, int) and isinstance(y, int)

    def test_contains(self, tiny_relation):
        assert (5, 5) in tiny_relation
        assert (5, 1) not in tiny_relation

    def test_equality(self):
        a = Relation.from_pairs([(1, 2), (3, 4)])
        b = Relation.from_pairs([(3, 4), (1, 2)])
        assert a == b

    def test_data_is_readonly(self, tiny_relation):
        with pytest.raises(ValueError):
            tiny_relation.data[0, 0] = 99

    def test_pairs_roundtrip(self, tiny_relation):
        assert Relation.from_pairs(tiny_relation.pairs()) == tiny_relation

    def test_xs_ys_columns(self):
        rel = Relation.from_pairs([(1, 10), (2, 20)])
        assert set(rel.xs.tolist()) == {1, 2}
        assert set(rel.ys.tolist()) == {10, 20}


class TestIndexes:
    def test_index_x_sorted_neighbors(self, tiny_relation):
        ys = tiny_relation.neighbors_x(5)
        assert ys.tolist() == [4, 5, 6]

    def test_index_y_sorted_neighbors(self, tiny_relation):
        xs = tiny_relation.neighbors_y(4)
        assert xs.tolist() == [1, 4, 5, 6]

    def test_missing_value_returns_empty(self, tiny_relation):
        assert tiny_relation.neighbors_x(99).size == 0
        assert tiny_relation.neighbors_y(99).size == 0

    def test_degrees_consistent_with_index(self, tiny_relation):
        for x, d in tiny_relation.degrees_x().items():
            assert d == tiny_relation.neighbors_x(x).size
        for y, d in tiny_relation.degrees_y().items():
            assert d == tiny_relation.neighbors_y(y).size

    def test_degree_sums_equal_tuple_count(self, tiny_relation):
        assert sum(tiny_relation.degrees_x().values()) == len(tiny_relation)
        assert sum(tiny_relation.degrees_y().values()) == len(tiny_relation)

    def test_x_values_sorted_unique(self, tiny_relation):
        xs = tiny_relation.x_values()
        assert np.all(np.diff(xs) > 0)

    def test_empty_relation_indexes(self):
        rel = Relation.empty()
        assert rel.index_x() == {}
        assert rel.index_y() == {}
        assert rel.x_values().size == 0


class TestAlgebra:
    def test_swap_transposes(self, tiny_relation):
        swapped = tiny_relation.swap()
        assert len(swapped) == len(tiny_relation)
        for x, y in tiny_relation:
            assert (y, x) in swapped

    def test_swap_twice_is_identity(self, tiny_relation):
        assert tiny_relation.swap().swap() == tiny_relation

    def test_restrict_x(self, tiny_relation):
        sub = tiny_relation.restrict_x([5, 6])
        assert set(sub.x_values().tolist()) == {5, 6}
        assert len(sub) == 5

    def test_restrict_y(self, tiny_relation):
        sub = tiny_relation.restrict_y([4])
        assert set(sub.y_values().tolist()) == {4}

    def test_restrict_empty_values(self, tiny_relation):
        assert len(tiny_relation.restrict_x([])) == 0

    def test_union(self):
        a = Relation.from_pairs([(1, 2)])
        b = Relation.from_pairs([(3, 4), (1, 2)])
        assert len(a.union(b)) == 2

    def test_difference(self):
        a = Relation.from_pairs([(1, 2), (3, 4)])
        b = Relation.from_pairs([(1, 2)])
        diff = a.difference(b)
        assert diff.pairs() == [(3, 4)]

    def test_difference_with_empty(self, tiny_relation):
        assert tiny_relation.difference(Relation.empty()) == tiny_relation

    def test_intersection(self):
        a = Relation.from_pairs([(1, 2), (3, 4)])
        b = Relation.from_pairs([(3, 4), (5, 6)])
        assert a.intersection(b).pairs() == [(3, 4)]

    def test_partition_identity(self, tiny_relation):
        """light + heavy tuples reassemble the original relation."""
        mask = tiny_relation.xs <= 3
        light = tiny_relation.filter_pairs(mask)
        heavy = tiny_relation.filter_pairs(~mask)
        assert light.union(heavy) == tiny_relation

    def test_semijoin_y(self, tiny_relation, tiny_relation_s):
        reduced = tiny_relation.semijoin_y(tiny_relation_s)
        for _x, y in reduced:
            assert y in set(tiny_relation_s.y_values().tolist())

    def test_sample_tuples_subset(self, tiny_relation):
        sample = tiny_relation.sample_tuples(5, seed=1)
        assert len(sample) == 5
        for pair in sample:
            assert pair in tiny_relation

    def test_sample_larger_than_relation(self, tiny_relation):
        assert len(tiny_relation.sample_tuples(1000)) == len(tiny_relation)


class TestStatsAndMatrices:
    def test_stats_fields(self, tiny_relation):
        stats = tiny_relation.stats()
        assert stats.num_tuples == len(tiny_relation)
        assert stats.num_sets == 6
        assert stats.min_set_size == 2
        assert stats.max_set_size == 3

    def test_stats_empty(self):
        stats = Relation.empty().stats()
        assert stats == RelationStats(0, 0, 0, 0.0, 0, 0)

    def test_stats_as_row(self, tiny_relation):
        row = tiny_relation.stats().as_row()
        assert row["tuples"] == len(tiny_relation)
        assert "avg_set_size" in row

    def test_full_join_size_matches_bruteforce(self, tiny_relation, tiny_relation_s):
        expected = 0
        for y in set(tiny_relation.y_values().tolist()):
            expected += tiny_relation.degree_y(y) * tiny_relation_s.degree_y(y)
        assert tiny_relation.full_join_size(tiny_relation_s) == expected

    def test_full_join_size_empty(self, tiny_relation):
        assert tiny_relation.full_join_size(Relation.empty()) == 0

    def test_adjacency_matrix_entries(self, tiny_relation):
        rows = [4, 5, 6]
        cols = [4, 5, 6]
        matrix = tiny_relation.adjacency_matrix(rows, cols)
        assert matrix.shape == (3, 3)
        assert matrix[1, 0] == 1  # (5, 4) present
        assert matrix[0, 1] == 0  # (4, 5) absent

    def test_adjacency_matrix_empty_dims(self, tiny_relation):
        assert tiny_relation.adjacency_matrix([], [1, 2]).shape == (0, 2)

    def test_to_set_dict(self, tiny_relation):
        sets = tiny_relation.to_set_dict()
        assert sets[5] == {4, 5, 6}
