"""DIM3 dense-core mapping, adaptive bail-out, and the extract-mode knob.

Property tests assert the load-bearing invariant of the whole subsystem:
whatever permutation, core geometry, band size or scan mode is in play, the
extracted coordinate set is *identical* to the one-shot
``np.nonzero(product > t)`` oracle.  Unit tests pin the adaptive bail-out
trigger, the mapping geometry model, the session-level mapping cache and
the per-mode cost estimates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EXTRACT_MODES, MMJoinConfig
from repro.core.two_path import two_path_join_detailed
from repro.data.relation import Relation
from repro.joins.hash_join import hash_join_project
from repro.matmul import mapping as core_mapping
from repro.matmul import tiling
from repro.matmul.cost_model import MatMulCostModel
from repro.serve import QuerySession

SETTINGS = dict(max_examples=30, deadline=None, derandomize=True)

# Auto band height, one-row bands, odd bands, and a single whole-matrix band.
TILE_SIZES = (None, 1, 7, 10**6)


@st.composite
def products_and_degrees(draw):
    """A random product matrix plus row/column degree vectors.

    Density spans empty, sparse, dense-noisy and fully saturated so every
    scan path (skip, mask, bail-out, rectangle) gets drawn.
    """
    n_rows = draw(st.integers(min_value=0, max_value=40))
    n_cols = draw(st.integers(min_value=0, max_value=40))
    density = draw(st.sampled_from([0.0, 0.02, 0.3, 0.8, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    product = ((rng.random((n_rows, n_cols)) < density) *
               rng.integers(1, 5, (n_rows, n_cols))).astype(np.float32)
    row_deg = rng.integers(0, 60, n_rows)
    col_deg = rng.integers(0, 60, n_cols)
    inner = draw(st.integers(min_value=1, max_value=200))
    return product, row_deg, col_deg, inner


# --------------------------------------------------------------------------- #
# Mapped extraction == identity-mapped extraction
# --------------------------------------------------------------------------- #
class TestMappedExtractionEquivalence:
    @settings(**SETTINGS)
    @given(case=products_and_degrees(), tile_rows=st.sampled_from(TILE_SIZES))
    def test_mapped_coords_match_oracle(self, case, tile_rows):
        product, row_deg, col_deg, inner = case
        mapping = core_mapping.mapping_from_degrees(row_deg, col_deg, inner)
        stats = {}
        r, c, v = core_mapping.mapped_nonzero_coords(
            product, mapping, tile_rows=tile_rows, stats=stats,
            want_values=True)
        er, ec = np.nonzero(product > 0.5)
        assert set(zip(r.tolist(), c.tolist())) == \
            set(zip(er.tolist(), ec.tolist()))
        assert np.all(product[r, c] == v)
        assert stats["extract_mode"] == "core"
        assert stats["dense_core_shape"] == mapping.core_shape
        assert 0.0 <= stats["dense_core_density"] <= 1.0

    @settings(**SETTINGS)
    @given(case=products_and_degrees())
    def test_mapped_blocks_match_tiled_blocks(self, case):
        product, row_deg, col_deg, inner = case
        mapping = core_mapping.mapping_from_degrees(row_deg, col_deg, inner)
        n_rows, n_cols = product.shape
        rows = np.arange(100, 100 + n_rows, dtype=np.int64)
        cols = np.arange(500, 500 + n_cols, dtype=np.int64)
        mapped = core_mapping.mapped_nonzero_block(product, rows, cols, mapping)
        tiled = tiling.tiled_nonzero_block(product, rows, cols)
        assert mapped.to_set() == tiled.to_set()
        mapped_counts = core_mapping.mapped_nonzero_counted_block(
            product, rows, cols, mapping)
        tiled_counts = tiling.tiled_nonzero_counted_block(product, rows, cols)
        assert mapped_counts.to_dict() == tiled_counts.to_dict()

    def test_mismatched_mapping_rejected(self):
        mapping = core_mapping.mapping_from_degrees([3, 4], [5], inner_dim=10)
        with pytest.raises(ValueError):
            core_mapping.mapped_nonzero_coords(
                np.ones((3, 3), dtype=np.float32), mapping)


# --------------------------------------------------------------------------- #
# Mapping geometry
# --------------------------------------------------------------------------- #
class TestMappingGeometry:
    def test_cutoff_follows_density_model(self):
        # d* = sqrt(-v ln(1 - target)); at target 0.5 and v=100: ~8.33
        assert core_mapping.core_degree_cutoff(100, 0.5) == \
            pytest.approx(np.sqrt(100 * np.log(2)))
        # Higher targets demand higher degrees.
        assert core_mapping.core_degree_cutoff(100, 0.9) > \
            core_mapping.core_degree_cutoff(100, 0.5)

    def test_degree_split_defines_core(self):
        # 3 hot rows / 2 hot cols clear the cutoff, the rest do not.
        m = core_mapping.mapping_from_degrees(
            [50, 1, 50, 50, 0], [1, 50, 0, 50], inner_dim=100)
        assert m.core_shape == (3, 2)
        assert sorted(m.row_order[:3].tolist()) == [0, 2, 3]
        assert sorted(m.col_order[:2].tolist()) == [1, 3]
        assert m.core_density == pytest.approx(1 - np.exp(-25.0), rel=1e-6)

    def test_all_cold_degrees_mean_no_core(self):
        m = core_mapping.mapping_from_degrees([1, 1], [1, 1], inner_dim=1000)
        assert m.core_shape == (0, 0)
        assert m.core_density == 0.0

    def test_heavy_core_mapping_reads_relation_degrees(self):
        left = Relation.from_pairs(
            [(1, y) for y in range(30)] + [(2, 0)], name="L")
        right = Relation.from_pairs(
            [(7, y) for y in range(30)] + [(8, 1)], name="R")
        m = core_mapping.heavy_core_mapping(
            left, right, rows=[1, 2], cols=[7, 8], inner_dim=30)
        # degree 30 clears d* = sqrt(30 ln 2) ~ 4.6; degree 1 does not.
        assert m.core_shape == (1, 1)
        assert m.row_order[0] == 0 and m.col_order[0] == 0


# --------------------------------------------------------------------------- #
# Adaptive bail-out
# --------------------------------------------------------------------------- #
class TestAdaptiveBailOut:
    def test_bail_fires_mid_scan_on_dense_noise(self):
        # Large enough that the auto band height yields several bands.
        rng = np.random.default_rng(5)
        dense = (rng.random((2000, 400)) < 0.8).astype(np.float32)
        stats = {}
        r, c = tiling.tiled_nonzero_coords(dense, stats=stats)
        assert stats["extract_mode"] == "adaptive"
        assert stats["extract_bailed_at_band"] >= 1
        # Far fewer bands screened than the tiled scan would touch.
        assert stats["extract_tiles_total"] < -(-2000 // stats["extract_tile_rows"])
        er, ec = np.nonzero(dense > 0.5)
        assert np.array_equal(r, er) and np.array_equal(c, ec)

    def test_saturated_product_keeps_screening(self):
        # All-ones: every band is a saturated rectangle — screening wins, so
        # the bail-out must NOT fire.
        sat = np.ones((2000, 400), dtype=np.float32)
        stats = {}
        r, c = tiling.tiled_nonzero_coords(sat, stats=stats)
        assert stats["extract_mode"] == "tiled"
        assert stats["extract_tiles_total"] > 1  # multiple bands screened
        assert stats["extract_tiles_saturated"] == stats["extract_tiles_total"]
        assert "extract_bailed_at_band" not in stats
        assert np.array_equal(r, np.nonzero(sat > 0.5)[0])

    def test_sparse_product_never_bails(self):
        sparse = np.zeros((400, 200), dtype=np.float32)
        sparse[3, 5] = sparse[390, 100] = 2.0
        stats = {}
        tiling.tiled_nonzero_coords(sparse, stats=stats)
        assert stats["extract_mode"] == "tiled"
        assert "extract_bailed_at_band" not in stats

    def test_explicit_tile_rows_pins_memory_contract(self):
        # A caller-chosen band height disables the bail-out: the screened
        # scan's O(tile + output) envelope must hold even on dense products.
        rng = np.random.default_rng(6)
        dense = (rng.random((400, 200)) < 0.8).astype(np.float32)
        stats = {}
        tiling.tiled_nonzero_coords(dense, tile_rows=40, stats=stats)
        assert stats["extract_mode"] == "tiled"
        assert stats["extract_tiles_total"] == 10

    def test_mode_adaptive_rearms_bail_with_explicit_tiles(self):
        rng = np.random.default_rng(6)
        dense = (rng.random((400, 200)) < 0.8).astype(np.float32)
        stats = {}
        r, c = tiling.tiled_nonzero_coords(dense, tile_rows=40, stats=stats,
                                           mode="adaptive")
        assert stats["extract_mode"] == "adaptive"
        er, ec = np.nonzero(dense > 0.5)
        assert np.array_equal(r, er) and np.array_equal(c, ec)

    def test_density_hint_skips_screening_up_front(self):
        rng = np.random.default_rng(7)
        dense = (rng.random((400, 200)) < 0.8).astype(np.float32)
        stats = {}
        tiling.tiled_nonzero_coords(dense, stats=stats, density_hint=0.8)
        assert stats["extract_mode"] == "full"
        # ...but a saturated prediction stays screened: rectangles win.
        stats = {}
        tiling.tiled_nonzero_coords(np.ones((400, 200), dtype=np.float32),
                                    stats=stats, density_hint=0.99)
        assert stats["extract_mode"] == "tiled"


# --------------------------------------------------------------------------- #
# End-to-end: extract_mode through plans, sessions, cost model
# --------------------------------------------------------------------------- #
def _heavy_pair():
    x = np.arange(300, dtype=np.int64)
    left = Relation(np.column_stack([x % 40, x % 60]), name="L")
    right = Relation(np.column_stack([x % 50, x % 60]), name="R")
    return left, right


class TestExtractModeEndToEnd:
    def test_config_validates_mode(self):
        assert "core" in EXTRACT_MODES
        with pytest.raises(ValueError):
            MMJoinConfig(extract_mode="bogus")

    @pytest.mark.parametrize("mode", EXTRACT_MODES)
    def test_all_modes_agree_with_baseline(self, mode):
        left, right = _heavy_pair()
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend="dense",
                              extract_mode=mode)
        result = two_path_join_detailed(left, right, config=config)
        assert result.pairs == hash_join_project(left, right)

    def test_core_mode_surfaces_geometry_in_explain(self):
        left, right = _heavy_pair()
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend="dense",
                              extract_mode="core")
        result = two_path_join_detailed(left, right, config=config)
        heavy = next(op for op in result.explanation.operators
                     if op.operator == "matmul_heavy")
        assert heavy.detail["extract_mode"] == "core"
        shape = heavy.detail["dense_core_shape"]
        assert len(shape) == 2 and all(s >= 0 for s in shape)
        assert 0.0 <= heavy.detail["dense_core_density"] <= 1.0

    def test_session_caches_core_mapping(self):
        left, right = _heavy_pair()
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend="dense",
                              extract_mode="core")
        with QuerySession(config=config) as session:
            session.register(left, name="L")
            session.register(right, name="R")
            cold = session.two_path("L", "R", use_memo=False)
            warm = session.two_path("L", "R", use_memo=False)
            detail_cold = next(
                op for op in cold.explanation.operators
                if op.operator == "matmul_heavy").detail
            detail_warm = next(
                op for op in warm.explanation.operators
                if op.operator == "matmul_heavy").detail
            assert detail_cold["mapping_cache"] == "miss"
            assert detail_warm["mapping_cache"] == "hit"
            assert cold.pairs == warm.pairs == hash_join_project(left, right)
            # Mutation bumps the relation version, invalidating the mapping.
            session.update("L", left)
            fresh = session.two_path("L", "R", use_memo=False)
            detail_fresh = next(
                op for op in fresh.explanation.operators
                if op.operator == "matmul_heavy").detail
            assert detail_fresh["mapping_cache"] == "miss"

    def test_cost_model_per_mode_estimates(self):
        model = MatMulCostModel()
        u = w = 10_000
        full = model.estimate_extraction(u, w, mode="full")
        tiled = model.estimate_extraction(u, w, mode="tiled", density=0.01)
        adaptive = model.estimate_extraction(u, w, mode="adaptive",
                                             density=0.01)
        auto = model.estimate_extraction(u, w, density=0.01)
        assert 0 < tiled < full
        assert adaptive <= tiled
        assert auto == min(full, tiled, adaptive)
        # A small dense core with a sparse remainder beats the full scan.
        core = model.estimate_extraction(u, w, mode="core", density=0.01,
                                         core_shape=(500, 500))
        assert 0 < core < full

    def test_observe_extraction_calibrates_full_modes_only(self):
        model = MatMulCostModel()
        before = model.extract_seconds_per_cell
        model.observe_extraction(1000, 1000, seconds=1.0, mode="tiled")
        assert model.extract_seconds_per_cell == before  # screened: no signal
        model.observe_extraction(1000, 1000, seconds=1.0, mode="full")
        assert model.extract_seconds_per_cell != before
