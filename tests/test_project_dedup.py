"""Unit tests for repro.joins.project (dedup strategies) and the baseline join."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.joins.baseline import (
    combinatorial_star,
    combinatorial_two_path,
    combinatorial_two_path_filtered,
)
from repro.joins.hash_join import hash_join_project, hash_join_project_counts
from repro.joins.project import (
    Deduplicator,
    dedup_pairs,
    dedup_tuples,
    merge_pair_sets,
    project_join_counts,
    sort_dedup_pairs,
)


class TestDeduplicator:
    @pytest.mark.parametrize("strategy", ["hash", "sort", "counter", "auto"])
    def test_strategies_agree(self, strategy):
        chunks = [np.array([1, 5, 9]), np.array([5, 5, 2]), np.array([9, 0])]
        dedup = Deduplicator(domain_size=10, strategy=strategy)
        assert dedup.dedup(chunks).tolist() == [0, 1, 2, 5, 9]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            Deduplicator(10, strategy="bogus")

    def test_empty_chunks(self):
        dedup = Deduplicator(10)
        assert dedup.dedup([]).size == 0
        assert dedup.dedup([np.array([])]).size == 0

    def test_counter_reusable_across_calls(self):
        dedup = Deduplicator(domain_size=8, strategy="counter")
        first = dedup.dedup([np.array([1, 2, 2])])
        second = dedup.dedup([np.array([3, 3])])
        assert first.tolist() == [1, 2]
        assert second.tolist() == [3]

    def test_dedup_with_counts(self):
        dedup = Deduplicator(10)
        counts = dedup.dedup_with_counts([np.array([1, 2]), np.array([2, 2])])
        assert counts == {1: 1, 2: 3}


class TestHelpers:
    def test_dedup_pairs(self):
        assert dedup_pairs([(1, 2), (1, 2), (3, 4)]) == {(1, 2), (3, 4)}

    def test_dedup_tuples(self):
        assert dedup_tuples([(1, 2, 3), (1, 2, 3)]) == {(1, 2, 3)}

    def test_sort_dedup_pairs(self):
        assert sort_dedup_pairs([(3, 4), (1, 2), (3, 4)]) == [(1, 2), (3, 4)]
        assert sort_dedup_pairs([]) == []

    def test_project_join_counts(self):
        full = [(1, 10, 2), (1, 11, 2), (1, 10, 3)]
        assert project_join_counts(full) == {(1, 2): 2, (1, 3): 1}

    def test_merge_pair_sets(self):
        assert merge_pair_sets({(1, 2)}, {(3, 4)}, set()) == {(1, 2), (3, 4)}


class TestCombinatorialBaseline:
    def test_matches_full_join_project(self, skewed_pair):
        left, right = skewed_pair
        assert combinatorial_two_path(left, right) == hash_join_project(left, right)

    @pytest.mark.parametrize("strategy", ["hash", "sort", "counter", "auto"])
    def test_all_dedup_strategies_match(self, tiny_relation, tiny_relation_s, strategy):
        expected = hash_join_project(tiny_relation, tiny_relation_s)
        assert combinatorial_two_path(
            tiny_relation, tiny_relation_s, dedup_strategy=strategy
        ) == expected

    def test_with_counts(self, tiny_relation, tiny_relation_s):
        counts = combinatorial_two_path(tiny_relation, tiny_relation_s, with_counts=True)
        assert counts == hash_join_project_counts(tiny_relation, tiny_relation_s)

    def test_empty_input(self, tiny_relation):
        assert combinatorial_two_path(tiny_relation, Relation.empty()) == set()
        assert combinatorial_two_path(tiny_relation, Relation.empty(), with_counts=True) == {}

    def test_star_two_relations(self, tiny_relation, tiny_relation_s):
        star = combinatorial_star([tiny_relation, tiny_relation_s])
        expected = {(x, z) for x, z in hash_join_project(tiny_relation, tiny_relation_s)}
        assert star == expected

    def test_star_with_counts_sum(self, tiny_relation, tiny_relation_s):
        counts = combinatorial_star([tiny_relation, tiny_relation_s], with_counts=True)
        assert sum(counts.values()) == tiny_relation.full_join_size(tiny_relation_s)

    def test_star_three_relations_self(self, tiny_relation):
        rels = [tiny_relation] * 3
        result = combinatorial_star(rels)
        # every output tuple must have a common witness
        for x1, x2, x3 in list(result)[:50]:
            common = set(tiny_relation.neighbors_x(x1).tolist())
            common &= set(tiny_relation.neighbors_x(x2).tolist())
            common &= set(tiny_relation.neighbors_x(x3).tolist())
            assert common

    def test_filtered_two_path(self, tiny_relation, tiny_relation_s):
        expected = hash_join_project(tiny_relation, tiny_relation_s)
        candidates = [(1, 1), (2, 2), (1, 3), (5, 6)]
        filtered = combinatorial_two_path_filtered(tiny_relation, tiny_relation_s, candidates)
        assert filtered == {pair for pair in candidates if pair in expected}

    def test_filtered_empty_candidates(self, tiny_relation, tiny_relation_s):
        assert combinatorial_two_path_filtered(tiny_relation, tiny_relation_s, []) == set()
