"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.loaders import save_edge_list
from repro.data.relation import Relation


@pytest.fixture
def edge_file(tmp_path, tiny_relation):
    path = tmp_path / "edges.txt"
    save_edge_list(tiny_relation, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join", "file.txt"])
        assert args.command == "join"
        assert args.delta1 is None and args.backend == "auto"

    def test_ssj_options(self):
        args = build_parser().parse_args(["ssj", "f.txt", "-c", "3", "--method", "sizeaware"])
        assert args.overlap == 3 and args.method == "sizeaware"

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scj", "f.txt", "--method", "bogus"])


class TestCommands:
    def test_join_command(self, edge_file, capsys):
        assert main(["join", edge_file]) == 0
        out = capsys.readouterr().out
        assert "output_pairs" in out and "strategy" in out

    def test_join_with_thresholds(self, edge_file, capsys):
        assert main(["join", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        assert "mmjoin" in capsys.readouterr().out

    def test_join_no_optimizer(self, edge_file, capsys):
        assert main(["join", edge_file, "--no-optimizer"]) == 0
        assert "wcoj" in capsys.readouterr().out

    def test_ssj_command(self, edge_file, capsys):
        assert main(["ssj", edge_file, "-c", "1"]) == 0
        assert "similar_pairs" in capsys.readouterr().out

    def test_scj_command(self, edge_file, capsys):
        assert main(["scj", edge_file, "--method", "pretti"]) == 0
        assert "containment_pairs" in capsys.readouterr().out

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "dblp" in out and "image" in out
