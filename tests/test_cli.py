"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.loaders import save_edge_list
from repro.data.relation import Relation


@pytest.fixture
def edge_file(tmp_path, tiny_relation):
    path = tmp_path / "edges.txt"
    save_edge_list(tiny_relation, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join", "file.txt"])
        assert args.command == "join"
        assert args.delta1 is None and args.backend == "auto"

    def test_ssj_options(self):
        args = build_parser().parse_args(["ssj", "f.txt", "-c", "3", "--method", "sizeaware"])
        assert args.overlap == 3 and args.method == "sizeaware"

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scj", "f.txt", "--method", "bogus"])

    def test_join_engine_flag(self):
        args = build_parser().parse_args(["join", "f.txt", "--engine", "postgres"])
        assert args.engine == "postgres"

    def test_join_engine_default_mmjoin(self):
        assert build_parser().parse_args(["join", "f.txt"]).engine == "mmjoin"

    def test_join_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "f.txt", "--engine", "oracle"])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain", "f.txt"])
        assert args.command == "explain"
        assert args.query == "two-path" and args.backend == "auto"

    def test_explain_star_options(self):
        args = build_parser().parse_args(["explain", "f.txt", "--query", "star", "--k", "2"])
        assert args.query == "star" and args.k == 2

    def test_new_backends_accepted(self):
        for backend in ("blocked", "strassen"):
            args = build_parser().parse_args(["join", "f.txt", "--backend", backend])
            assert args.backend == backend

    def test_join_shards_flag(self):
        args = build_parser().parse_args(["join", "f.txt", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["join", "f.txt"]).shards == 1

    def test_extract_mode_flag(self):
        for mode in ("auto", "full", "tiled", "adaptive", "core"):
            args = build_parser().parse_args(
                ["join", "f.txt", "--extract-mode", mode])
            assert args.extract_mode == mode
        assert build_parser().parse_args(["join", "f.txt"]).extract_mode == "auto"
        assert build_parser().parse_args(
            ["explain", "f.txt", "--extract-mode", "core"]).extract_mode == "core"

    def test_invalid_extract_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["join", "f.txt", "--extract-mode", "bogus"])

    def test_shard_defaults(self):
        args = build_parser().parse_args(["shard", "f.txt"])
        assert args.command == "shard"
        assert args.shards == 4 and args.repeat == 2

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics", "f.txt"])
        assert args.command == "metrics"
        assert args.format == "prometheus" and args.shards == 1

    def test_metrics_invalid_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "f.txt", "--format", "xml"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "f.txt"])
        assert args.command == "trace"
        assert args.id is None and args.repeat == 1

    def test_serve_slow_ms_flag(self):
        assert build_parser().parse_args(["serve", "f.txt"]).slow_ms == 0.0
        args = build_parser().parse_args(["serve", "f.txt", "--slow-ms", "250"])
        assert args.slow_ms == 250.0


class TestCommands:
    def test_join_command(self, edge_file, capsys):
        assert main(["join", edge_file]) == 0
        out = capsys.readouterr().out
        assert "output_pairs" in out and "strategy" in out

    def test_join_with_thresholds(self, edge_file, capsys):
        assert main(["join", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        assert "mmjoin" in capsys.readouterr().out

    def test_join_no_optimizer(self, edge_file, capsys):
        assert main(["join", edge_file, "--no-optimizer"]) == 0
        assert "wcoj" in capsys.readouterr().out

    def test_ssj_command(self, edge_file, capsys):
        assert main(["ssj", edge_file, "-c", "1"]) == 0
        assert "similar_pairs" in capsys.readouterr().out

    def test_scj_command(self, edge_file, capsys):
        assert main(["scj", edge_file, "--method", "pretti"]) == 0
        assert "containment_pairs" in capsys.readouterr().out

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "dblp" in out and "image" in out

    def test_join_with_engine(self, edge_file, capsys):
        assert main(["join", edge_file, "--engine", "non-mmjoin"]) == 0
        out = capsys.readouterr().out
        assert "non-mmjoin" in out and "output_pairs" in out

    def test_explain_command(self, edge_file, capsys):
        assert main(["explain", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        # The plan names the strategy, thresholds, backend and every operator.
        assert "strategy: mmjoin" in out
        assert "delta1:   2" in out
        assert "backend:" in out
        for operator in ("semijoin_reduce", "light_heavy_partition",
                         "combinatorial_light", "matmul_heavy", "dedup_merge"):
            assert operator in out

    def test_explain_star_command(self, edge_file, capsys):
        assert main(["explain", edge_file, "--query", "star", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "plan for star join-project" in out
        assert "semijoin_reduce" in out

    def test_explain_with_backend(self, edge_file, capsys):
        assert main(["explain", edge_file, "--delta1", "1", "--delta2", "1",
                     "--backend", "sparse"]) == 0
        assert "sparse" in capsys.readouterr().out

    def test_join_sharded(self, edge_file, capsys):
        assert main(["join", edge_file, "--shards", "3",
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out and "shards_executed" in out

    def test_shard_command(self, edge_file, capsys):
        assert main(["shard", edge_file, "--shards", "3",
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        # Layout table, per-shard plan breakdown and cumulative hit rates.
        assert "shard layout" in out
        assert "hash" in out
        assert "cache h/m" in out
        assert "per-shard operator cache hit rates" in out
        assert "router:" in out

    def test_session_command(self, edge_file, capsys):
        assert main(["session", edge_file, "--repeat", "2",
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "operator_cache_hits" in out
        assert "artifact cache:" in out and "feedback:" in out
        rows = {line.split("|")[0].strip(): line for line in out.splitlines()
                if "|" in line}
        # The cold run executes; every warm run serves from the memo.
        assert "miss" in rows["cold"]
        assert "hit" in rows["warm1"] and "hit" in rows["warm2"]

    def test_session_no_memo_shows_operator_hits(self, edge_file, capsys):
        assert main(["session", edge_file, "--repeat", "1", "--no-memo",
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        # Without the memo every run executes; the warm run hits the
        # semijoin/partition/operand caches instead.
        assert "estimated vs actual operator cost" in out

    def test_serve_command_script(self, edge_file, capsys, tmp_path):
        script = tmp_path / "commands.txt"
        script.write_text(
            "# warm-up\ntwo-path\ntwo-path\nstar 2\nssj 1\nscj\nstats\nnope\nquit\n",
            encoding="utf-8",
        )
        assert main(["serve", edge_file, "--script", str(script),
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving R" in out
        assert "two-path:" in out and "memo hit" in out
        assert "star(2):" in out
        assert "ssj(c=1):" in out and "scj:" in out
        assert "queries_served" in out
        assert "unknown command: nope" in out

    def test_serve_command_stdin(self, edge_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("two-path\nexplain\nquit\n"))
        assert main(["serve", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "two-path:" in out and "strategy: mmjoin" in out

    def test_metrics_command_prometheus(self, edge_file, capsys):
        assert main(["metrics", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert 'repro_queries_total{kind="two_path",path="cold"}' in out
        assert 'repro_queries_total{kind="two_path",path="memo"} 1' in out
        assert "# TYPE repro_query_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_metrics_command_json(self, edge_file, capsys):
        import json

        assert main(["metrics", edge_file, "--format", "json",
                     "--delta1", "2", "--delta2", "2"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["repro_queries_total"]["kind"] == "counter"

    def test_metrics_command_sharded(self, edge_file, capsys):
        assert main(["metrics", edge_file, "--shards", "2",
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "repro_shard_subplan_seconds" in out

    def test_trace_command_prints_span_tree(self, edge_file, capsys):
        assert main(["trace", edge_file, "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "slow query t" in out
        assert "two_path" in out and "plan" in out
        assert "explain:" in out

    def test_trace_command_by_id(self, edge_file, capsys):
        # The sample workload always runs a cold query first, so t000001 exists.
        assert main(["trace", edge_file, "--id", "t000001",
                     "--delta1", "2", "--delta2", "2"]) == 0
        assert "slow query t000001" in capsys.readouterr().out

    def test_trace_command_unknown_id(self, edge_file, capsys):
        assert main(["trace", edge_file, "--id", "bogus",
                     "--delta1", "2", "--delta2", "2"]) == 1
        out = capsys.readouterr().out
        assert "no such trace: bogus" in out and "recorded:" in out

    def test_serve_metrics_and_trace_commands(self, edge_file, capsys, tmp_path):
        script = tmp_path / "commands.txt"
        script.write_text(
            "two-path\nappend 9 9\ntwo-path\nmetrics\nmetrics prom\n"
            "trace t000001\ntrace\ntrace nope\nquit\n",
            encoding="utf-8",
        )
        assert main(["serve", edge_file, "--script", str(script),
                     "--delta1", "2", "--delta2", "2"]) == 0
        out = capsys.readouterr().out
        assert "metrics [prom|json] | trace [id]" in out  # banner lists them
        assert "queries (" in out                         # one-line summary
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_writes_total" in out
        assert "slow query t000001" in out
        assert "no such trace" in out
        # The exit summary fires even after quit.
        assert out.rstrip().splitlines()[-1].startswith("metrics:")
