"""Unit tests for repro.data.generators."""

import numpy as np
import pytest

from repro.data import generators
from repro.data.generators import (
    DatasetProfile,
    PAPER_PROFILES,
    community_bipartite,
    example1_instance,
    generate,
    generate_all,
    generate_dataset,
    list_profiles,
    roadnet_graph,
    scaled_profile,
    sparse_bipartite,
    uniform_bipartite,
    zipf_bipartite,
)


class TestProfiles:
    def test_six_paper_profiles(self):
        assert list_profiles() == ["dblp", "roadnet", "jokes", "words", "protein", "image"]
        assert set(PAPER_PROFILES) == set(list_profiles())

    def test_scaled_profile_shrinks(self):
        base = PAPER_PROFILES["jokes"]
        scaled = scaled_profile("jokes", 0.1)
        assert scaled.num_tuples < base.num_tuples
        assert scaled.num_sets < base.num_sets
        assert scaled.name == "jokes"

    def test_scaled_profile_floor(self):
        scaled = scaled_profile("dblp", 1e-9)
        assert scaled.num_tuples >= 10
        assert scaled.num_sets >= 4


class TestGenerators:
    def test_zipf_deterministic(self):
        a = zipf_bipartite(500, 50, 40, seed=3)
        b = zipf_bipartite(500, 50, 40, seed=3)
        assert a == b

    def test_zipf_different_seeds_differ(self):
        a = zipf_bipartite(500, 50, 40, seed=3)
        b = zipf_bipartite(500, 50, 40, seed=4)
        assert a != b

    def test_zipf_domains_respected(self):
        rel = zipf_bipartite(800, 60, 45, skew=1.2, seed=1)
        assert rel.x_values().max() < 60
        assert rel.y_values().max() < 45

    def test_zipf_is_skewed(self):
        rel = zipf_bipartite(5000, 100, 500, skew=1.5, seed=2)
        degrees = sorted(rel.degrees_y().values(), reverse=True)
        # the most popular element should dominate the median element
        assert degrees[0] > 5 * degrees[len(degrees) // 2]

    def test_uniform_bipartite(self):
        rel = uniform_bipartite(1000, 50, 50, seed=0)
        assert len(rel) > 0
        assert rel.x_values().max() < 50

    def test_sparse_bipartite_small_sets(self):
        rel = sparse_bipartite(2000, 400, 300, max_set_size=20, seed=6)
        assert max(rel.degrees_x().values()) <= 20

    def test_roadnet_low_degree(self):
        rel = roadnet_graph(400, seed=0)
        assert max(rel.degrees_x().values()) <= 5
        assert len(rel) > 300

    def test_community_bipartite_block_structure(self):
        rel = community_bipartite(60, 60, num_communities=3, density=0.9,
                                  background_noise=0.0, seed=1)
        # Elements within a community are shared by many sets -> high y degrees.
        assert max(rel.degrees_y().values()) >= 10

    def test_community_empty_when_density_zero(self):
        rel = community_bipartite(20, 20, num_communities=2, density=0.0,
                                  background_noise=0.0, seed=1)
        assert len(rel) == 0

    def test_example1_full_join_much_larger_than_output(self):
        rel = example1_instance(600, num_communities=3, seed=2)
        full_join = rel.full_join_size(rel)
        # output is at most |dom(x)|^2 but full join blows up quadratically per community
        assert full_join > 5 * len(rel)


class TestProfileDriven:
    @pytest.mark.parametrize("name", list_profiles())
    def test_generate_dataset_nonempty(self, name):
        rel = generate_dataset(name, scale=0.05, seed=1)
        assert len(rel) > 0
        assert rel.name == name

    def test_generate_all(self):
        datasets = generate_all(scale=0.03, seed=2)
        assert set(datasets) == set(list_profiles())

    def test_generate_unknown_dataset(self):
        with pytest.raises(ValueError):
            generate_dataset("unknown")

    def test_generate_unknown_kind(self):
        profile = DatasetProfile(
            name="x", num_tuples=10, num_sets=5, domain_size=5,
            min_set_size=1, max_set_size=3, kind="nope",
        )
        with pytest.raises(ValueError):
            generate(profile)

    def test_dense_datasets_are_denser_than_sparse(self):
        dense = generate_dataset("image", scale=0.05, seed=3)
        sparse = generate_dataset("dblp", scale=0.05, seed=3)
        dense_ratio = len(dense) / max(dense.x_values().size * dense.y_values().size, 1)
        sparse_ratio = len(sparse) / max(sparse.x_values().size * sparse.y_values().size, 1)
        assert dense_ratio > 10 * sparse_ratio
