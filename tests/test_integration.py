"""Integration tests: end-to-end scenarios spanning multiple subsystems."""

import pytest

from repro import (
    Catalog,
    MMJoinConfig,
    Relation,
    SetFamily,
    set_containment_join,
    set_similarity_join,
    star_join,
    two_path_join,
)
from repro.bench.datasets import bench_dataset, bench_family
from repro.core.bsi import BSIBatchScheduler
from repro.data import generators
from repro.engines.registry import make_engine
from repro.joins.hash_join import hash_join_project
from repro.setops.ssj import ssj_bruteforce


class TestPaperExample1:
    """The motivating co-author / friend-of-friend scenario of the paper."""

    def test_friends_in_common(self):
        graph = generators.example1_instance(4000, num_communities=2, seed=9)
        result = two_path_join(graph, graph)
        expected = hash_join_project(graph, graph)
        assert result.pairs == expected
        # The projection is far smaller than the full join on this instance.
        assert len(result.pairs) < graph.full_join_size(graph)

    def test_mmjoin_strategy_selected_on_dense_instance(self):
        graph = generators.example1_instance(4000, num_communities=2, seed=9)
        result = two_path_join(graph, graph)
        assert result.strategy == "mmjoin"
        assert result.matrix_dims[1] > 0  # some heavy witnesses existed


class TestDatasetPipelines:
    @pytest.mark.parametrize("name", ["dblp", "roadnet", "jokes"])
    def test_two_path_on_paper_datasets(self, name):
        relation = bench_dataset(name, scale=0.02)
        result = two_path_join(relation, relation)
        expected = hash_join_project(relation, relation)
        assert result.pairs == expected

    def test_star_on_paper_dataset_samples(self):
        base = bench_dataset("words", scale=0.02)
        sample = base.sample_tuples(1500, seed=1)
        relations = [sample, sample.swap().swap(), sample]
        from repro.joins.baseline import combinatorial_star

        assert star_join(relations).tuples == combinatorial_star(relations)

    def test_catalog_workflow(self):
        catalog = Catalog()
        for name in ("dblp", "jokes"):
            catalog.add(bench_dataset(name, scale=0.02), name=name)
        stats = catalog.stats_table()
        assert stats["jokes"].avg_set_size > stats["dblp"].avg_set_size
        # the cached degree statistics drive the optimizer interface
        assert catalog.statistics("jokes").num_tuples == len(catalog.get("jokes"))


class TestApplicationsEndToEnd:
    def test_ssj_pipeline_on_generated_dataset(self):
        family = bench_family("jokes", scale=0.015)
        sample_ids = [int(v) for v in family.set_ids()[:40]]
        family = family.restrict(sample_ids)
        expected = ssj_bruteforce(family, c=2).pairs
        for method in ("mmjoin", "sizeaware", "sizeaware++"):
            assert set_similarity_join(family, c=2, method=method).pairs == expected

    def test_scj_pipeline(self):
        family = SetFamily.from_dict(
            {i: list(range(i, i + 5)) for i in range(20)} | {100: list(range(0, 30))}
        )
        result = set_containment_join(family, method="mmjoin")
        # every 5-element window is contained in the big set that covers it
        for i in range(20):
            if set(range(i, i + 5)) <= set(range(0, 30)):
                assert (i, 100) in result.pairs

    def test_bsi_end_to_end(self):
        left = bench_dataset("words", scale=0.015)
        right = bench_dataset("words", scale=0.015)
        scheduler = BSIBatchScheduler(left, right, arrival_rate=1000)
        workload = scheduler.generate_workload(150, seed=11)
        mm = scheduler.run(workload, batch_size=50, use_mmjoin=True)
        comb = scheduler.run(workload, batch_size=50, use_mmjoin=False)
        assert mm.num_queries == comb.num_queries == 150
        assert mm.average_delay > 0 and comb.average_delay > 0

    def test_engine_comparison_consistency(self):
        relation = bench_dataset("dblp", scale=0.02).sample_tuples(2500, seed=3)
        reference = make_engine("non-mmjoin").two_path(relation, relation)
        for name in ("mmjoin", "postgres", "emptyheaded"):
            assert make_engine(name).two_path(relation, relation) == reference


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for symbol in (
            "Relation", "SetFamily", "Catalog", "two_path_join", "star_join",
            "set_similarity_join", "set_containment_join", "MMJoinConfig",
            "BooleanSetIntersection", "BSIBatchScheduler",
        ):
            assert hasattr(repro, symbol), symbol

    def test_docstring_quickstart(self):
        R = Relation.from_pairs([(1, 10), (2, 10), (3, 11)], name="R")
        result = sorted(two_path_join(R, R).pairs)
        assert result == [(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)]

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
