"""Tests for the star-query MMJoin (Section 3.2)."""

import pytest

from repro.core.config import MMJoinConfig
from repro.core.star import star_join, star_join_detailed
from repro.data import generators
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_star


@pytest.fixture
def star_relations():
    r1 = generators.zipf_bipartite(900, 80, 60, skew=1.1, seed=31, name="R1")
    r2 = generators.zipf_bipartite(900, 80, 60, skew=1.1, seed=32, name="R2")
    r3 = generators.zipf_bipartite(900, 80, 60, skew=1.1, seed=33, name="R3")
    return [r1, r2, r3]


class TestCorrectness:
    def test_two_relation_star_matches_baseline(self, tiny_relation, tiny_relation_s):
        relations = [tiny_relation, tiny_relation_s]
        expected = combinatorial_star(relations)
        result = star_join(relations, config=MMJoinConfig(delta1=2, delta2=2))
        assert result.tuples == expected

    def test_three_relation_star_matches_baseline(self, star_relations):
        expected = combinatorial_star(star_relations)
        result = star_join(star_relations, config=MMJoinConfig(delta1=2, delta2=2))
        assert result.tuples == expected

    @pytest.mark.parametrize("delta1,delta2", [(1, 1), (2, 3), (3, 2), (50, 50)])
    def test_any_thresholds(self, tiny_relation, tiny_relation_s, delta1, delta2):
        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        expected = combinatorial_star(relations)
        result = star_join(relations, config=MMJoinConfig(delta1=delta1, delta2=delta2))
        assert result.tuples == expected

    def test_optimizer_choice_still_correct(self, star_relations):
        expected = combinatorial_star(star_relations)
        result = star_join(star_relations)
        assert result.tuples == expected

    def test_four_relation_star(self, tiny_relation, tiny_relation_s):
        relations = [tiny_relation, tiny_relation_s, tiny_relation, tiny_relation_s]
        expected = combinatorial_star(relations)
        result = star_join(relations, config=MMJoinConfig(delta1=1, delta2=1))
        assert result.tuples == expected

    def test_single_relation(self, tiny_relation):
        result = star_join([tiny_relation])
        assert result.tuples == {(int(x),) for x in tiny_relation.x_values()}

    def test_empty_input_list(self):
        assert star_join([]).tuples == set()

    def test_empty_relation_in_star(self, tiny_relation):
        assert star_join([tiny_relation, Relation.empty()]).tuples == set()

    def test_disjoint_witnesses(self):
        r1 = Relation.from_pairs([(1, 10)])
        r2 = Relation.from_pairs([(2, 20)])
        assert star_join([r1, r2]).tuples == set()

    def test_forced_wcoj(self, star_relations):
        result = star_join(star_relations, config=MMJoinConfig(use_optimizer=False))
        assert result.strategy == "wcoj"
        assert result.tuples == combinatorial_star(star_relations)


class TestMetadata:
    def test_result_protocol(self, tiny_relation, tiny_relation_s):
        result = star_join([tiny_relation, tiny_relation_s])
        assert len(result) == result.output_size()
        tup = next(iter(result.tuples))
        assert tup in result

    def test_timings_and_dims(self, star_relations):
        result = star_join_detailed(star_relations, config=MMJoinConfig(delta1=2, delta2=2))
        assert "total" in result.timings
        assert result.strategy == "mmjoin"
        assert result.light_tuples + result.heavy_tuples >= len(result.tuples)

    def test_output_arity_matches_relation_count(self, star_relations):
        result = star_join(star_relations, config=MMJoinConfig(delta1=2, delta2=2))
        for tup in list(result.tuples)[:20]:
            assert len(tup) == 3

    def test_every_output_tuple_has_witness(self, star_relations):
        result = star_join(star_relations, config=MMJoinConfig(delta1=2, delta2=2))
        for tup in list(result.tuples)[:50]:
            common = set(star_relations[0].neighbors_x(tup[0]).tolist())
            for rel, head in zip(star_relations[1:], tup[1:]):
                common &= set(rel.neighbors_x(head).tolist())
            assert common
