"""Tests for set similarity join (unordered and ordered)."""

import pytest

from repro.core.config import MMJoinConfig
from repro.setops.ssj import (
    set_similarity_join,
    size_boundary,
    ssj_bruteforce,
    ssj_mmjoin,
    ssj_sizeaware,
    ssj_sizeaware_plus,
)
from repro.setops.ssj_ordered import ordered_set_similarity_join, top_k_similar


class TestUnorderedSSJ:
    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_mmjoin_matches_bruteforce(self, small_family, c):
        assert ssj_mmjoin(small_family, c).pairs == ssj_bruteforce(small_family, c).pairs

    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_sizeaware_matches_bruteforce(self, small_family, c):
        assert ssj_sizeaware(small_family, c).pairs == ssj_bruteforce(small_family, c).pairs

    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_sizeaware_plus_matches_bruteforce(self, small_family, c):
        assert ssj_sizeaware_plus(small_family, c).pairs == ssj_bruteforce(small_family, c).pairs

    @pytest.mark.parametrize("c", [2, 3, 4])
    def test_all_methods_agree_on_skewed_family(self, skewed_family, c):
        expected = ssj_bruteforce(skewed_family, c).pairs
        assert ssj_mmjoin(skewed_family, c).pairs == expected
        assert ssj_sizeaware(skewed_family, c).pairs == expected
        assert ssj_sizeaware_plus(skewed_family, c).pairs == expected

    def test_mmjoin_counts_are_exact_overlaps(self, skewed_family):
        result = ssj_mmjoin(skewed_family, c=2)
        for (a, b), count in list(result.counts.items())[:100]:
            assert count == skewed_family.intersection_size(a, b)

    def test_pairs_are_canonical(self, skewed_family):
        result = ssj_mmjoin(skewed_family, c=2)
        for a, b in result.pairs:
            assert a < b

    def test_no_self_pairs(self, skewed_family):
        result = ssj_mmjoin(skewed_family, c=1)
        assert all(a != b for a, b in result.pairs)

    def test_higher_c_gives_subset(self, skewed_family):
        loose = ssj_mmjoin(skewed_family, c=2).pairs
        strict = ssj_mmjoin(skewed_family, c=4).pairs
        assert strict <= loose

    def test_cross_family_join(self, small_family, skewed_family):
        result = ssj_mmjoin(small_family, c=1, other=skewed_family)
        for a, b in list(result.pairs)[:50]:
            overlap = len(
                set(small_family.get(a).tolist()) & set(skewed_family.get(b).tolist())
            )
            assert overlap >= 1

    def test_dispatcher_validation(self, small_family):
        with pytest.raises(ValueError):
            set_similarity_join(small_family, c=0)
        with pytest.raises(ValueError):
            set_similarity_join(small_family, method="nope")

    @pytest.mark.parametrize("method", ["mmjoin", "sizeaware", "sizeaware++"])
    def test_dispatcher_routes(self, small_family, method):
        result = set_similarity_join(small_family, c=2, method=method)
        assert result.pairs == ssj_bruteforce(small_family, 2).pairs

    def test_size_boundary_positive(self, skewed_family):
        for c in (1, 2, 4):
            assert size_boundary(skewed_family, c) >= 1

    def test_sizeaware_records_partition_sizes(self, skewed_family):
        result = ssj_sizeaware(skewed_family, c=2)
        assert result.heavy_sets + result.light_sets == skewed_family.num_sets()


class TestSizeAwarePlusAblation:
    """The Figure 8 configurations must all be correct; only speed differs."""

    @pytest.mark.parametrize("heavy_mm,light_mm,prefix", [
        (False, False, False),   # NO-OP
        (False, True, False),    # Light
        (True, True, False),     # Heavy
        (True, False, True),     # Prefix
        (True, True, True),
    ])
    def test_every_configuration_correct(self, skewed_family, heavy_mm, light_mm, prefix):
        expected = ssj_bruteforce(skewed_family, 2).pairs
        result = ssj_sizeaware_plus(
            skewed_family, 2, heavy_mm=heavy_mm, light_mm=light_mm, prefix=prefix
        )
        assert result.pairs == expected

    def test_prefix_depth_limit_still_correct(self, skewed_family):
        expected = ssj_bruteforce(skewed_family, 2).pairs
        result = ssj_sizeaware_plus(
            skewed_family, 2, heavy_mm=True, light_mm=False, prefix=True, prefix_depth=2
        )
        assert result.pairs == expected


class TestOrderedSSJ:
    @pytest.mark.parametrize("method", ["mmjoin", "sizeaware", "sizeaware++"])
    def test_ordering_is_by_decreasing_overlap(self, skewed_family, method):
        result = ordered_set_similarity_join(skewed_family, c=2, method=method)
        overlaps = [count for _, count in result.ordered_pairs]
        assert overlaps == sorted(overlaps, reverse=True)

    @pytest.mark.parametrize("method", ["mmjoin", "sizeaware", "sizeaware++"])
    def test_same_pairs_as_unordered(self, skewed_family, method):
        ordered = ordered_set_similarity_join(skewed_family, c=2, method=method)
        expected = ssj_bruteforce(skewed_family, 2).pairs
        assert set(ordered.pairs()) == expected

    def test_overlaps_are_exact(self, skewed_family):
        result = ordered_set_similarity_join(skewed_family, c=2, method="sizeaware")
        for (a, b), count in result.ordered_pairs[:100]:
            assert count == skewed_family.intersection_size(a, b)

    def test_top_k(self, skewed_family):
        top3 = top_k_similar(skewed_family, k=3, c=1)
        full = ordered_set_similarity_join(skewed_family, c=1).ordered_pairs
        assert top3 == full[:3]

    def test_invalid_method(self, small_family):
        with pytest.raises(ValueError):
            ordered_set_similarity_join(small_family, method="bogus")

    def test_timings_include_sort(self, small_family):
        result = ordered_set_similarity_join(small_family, c=1)
        assert "sort" in result.timings and "total" in result.timings
