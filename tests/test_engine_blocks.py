"""Engines stay columnar until the API boundary.

Every registered engine exposes ``two_path_block`` / ``star_block`` returning
a :class:`~repro.data.pairblock.PairBlock`, and its set-returning ``two_path``
/ ``star`` methods are thin boundary wrappers: exactly one ``to_set()`` call,
after all internal work.  The tests instrument ``PairBlock.to_set`` to prove
no engine materialises Python sets internally any more (the historical bug in
``sql_engine.py`` / ``setintersection.py``).
"""

from __future__ import annotations

import pytest
from strategies import skewed_random_relation

from repro.data.pairblock import PairBlock
from repro.engines.registry import available_engines, make_engine
from repro.joins.baseline import combinatorial_star, combinatorial_two_path

ENGINES = available_engines()


@pytest.fixture
def to_set_calls(monkeypatch):
    """Counts every PairBlock.to_set() materialisation while active."""
    calls = []
    original = PairBlock.to_set

    def counting(self):
        calls.append(self)
        return original(self)

    monkeypatch.setattr(PairBlock, "to_set", counting)
    return calls


def _inputs():
    left = skewed_random_relation(11, n_pairs=160, x_domain=25, y_domain=18, name="R")
    right = skewed_random_relation(12, n_pairs=160, x_domain=25, y_domain=18, name="S")
    return left, right


@pytest.mark.parametrize("name", ENGINES)
def test_two_path_block_is_columnar_and_correct(name, to_set_calls):
    left, right = _inputs()
    engine = make_engine(name)
    block = engine.two_path_block(left, right)
    assert isinstance(block, PairBlock)
    assert len(to_set_calls) == 0, (
        f"{name}: block evaluation materialised a Python set internally"
    )
    assert block.to_set() == combinatorial_two_path(left, right)


@pytest.mark.parametrize("name", ENGINES)
def test_two_path_set_materialises_exactly_once(name, to_set_calls):
    left, right = _inputs()
    engine = make_engine(name)
    expected = combinatorial_two_path(left, right)
    del to_set_calls[:]  # the oracle above may have converted blocks itself
    assert engine.two_path(left, right) == expected
    assert len(to_set_calls) == 1, (
        f"{name}: expected exactly one to_set() at the API boundary, "
        f"saw {len(to_set_calls)}"
    )


@pytest.mark.parametrize("name", ENGINES)
def test_star_block_is_columnar_and_correct(name, to_set_calls):
    left, right = _inputs()
    relations = [left, right, skewed_random_relation(13, n_pairs=120,
                                                     x_domain=20, y_domain=18,
                                                     name="T")]
    engine = make_engine(name)
    block = engine.star_block(relations)
    assert isinstance(block, PairBlock)
    assert block.arity == 3
    assert len(to_set_calls) == 0
    assert block.to_set() == combinatorial_star(relations)


@pytest.mark.parametrize("name", ENGINES)
def test_star_set_materialises_exactly_once(name, to_set_calls):
    left, right = _inputs()
    relations = [left, right]
    engine = make_engine(name)
    expected = combinatorial_star(relations)
    del to_set_calls[:]
    assert engine.star(relations) == expected
    assert len(to_set_calls) == 1, name
