"""Property test: the planner pipeline equals the combinatorial baselines.

For seeded-random relations (shared generators in ``tests/strategies.py``),
the two-path (set and counting semantics) and star outputs of the planner
pipeline must match the combinatorial reference implementations exactly, for
every backend in the registry and for the optimizer-driven auto path.
"""

import pytest
from strategies import random_relation

from repro.core.config import MMJoinConfig
from repro.core.star import star_join
from repro.core.two_path import two_path_join, two_path_join_counts
from repro.joins.baseline import combinatorial_star, combinatorial_two_path
from repro.matmul.registry import make_default_registry

ALL_BACKENDS = make_default_registry().names()
SEEDS = [0, 1, 2, 3, 4]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestTwoPathProperty:
    def test_pairs_equal_combinatorial(self, seed, backend):
        left = random_relation(seed, name="R")
        right = random_relation(seed + 1000, name="S")
        expected = combinatorial_two_path(left, right)
        # delta1 = delta2 = 1 forces as much work as possible onto the
        # matrix path, exercising the chosen backend.
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend)
        result = two_path_join(left, right, config=config)
        assert result.pairs == expected
        assert result.backend == backend or result.matrix_dims == (0, 0, 0)

    def test_counts_equal_combinatorial(self, seed, backend):
        left = random_relation(seed, name="R")
        right = random_relation(seed + 2000, name="S")
        expected = combinatorial_two_path(left, right, with_counts=True)
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend)
        result = two_path_join_counts(left, right, config=config)
        assert result.counts == expected


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestStarProperty:
    def test_star_equals_combinatorial(self, seed, backend):
        relations = [
            random_relation(seed + offset, n_pairs=90, x_domain=10, y_domain=8,
                            name=f"R{offset}")
            for offset in (0, 100, 200)
        ]
        expected = combinatorial_star(relations)
        config = MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend)
        result = star_join(relations, config=config)
        assert result.tuples == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_auto_path_with_optimizer(seed):
    """The optimizer-driven auto path agrees with the baseline too."""
    left = random_relation(seed, n_pairs=400, x_domain=40, y_domain=25, name="R")
    right = random_relation(seed + 3000, n_pairs=400, x_domain=40, y_domain=25, name="S")
    assert two_path_join(left, right).pairs == combinatorial_two_path(left, right)
