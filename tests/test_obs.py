"""Unit tests for the observability substrate (repro.obs).

Covers the three tentpole pieces in isolation — trace span trees, the
metrics registry with its snapshot/delta/exporter layers, and the bounded
slow-query log — plus the Telemetry facade that the serving layer owns.
Session integration lives in test_telemetry_session.py.
"""

import json
import threading

import pytest

from repro.obs import (
    DISABLED,
    LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    SlowQueryEntry,
    SlowQueryLog,
    Telemetry,
    TelemetryConfig,
    Trace,
    activate,
    current_trace,
    span,
)
from repro.obs.trace import NULL_SPAN


class TestTrace:
    def test_nested_spans_build_a_tree(self):
        trace = Trace("t1", "two_path")
        with trace.span("plan") as plan:
            with trace.span("semijoin"):
                pass
            with trace.span("matmul") as mm:
                mm.set("backend", "dense")
        trace.finish()
        assert trace.root.name == "two_path"
        assert [child.name for child in trace.root.children] == ["plan"]
        assert [child.name for child in plan.children] == ["semijoin", "matmul"]
        assert trace.find("matmul").attrs == {"backend": "dense"}
        assert trace.span_names() == ["two_path", "plan", "semijoin", "matmul"]

    def test_span_timing_and_seconds(self):
        trace = Trace("t1", "q")
        with trace.span("work") as sp:
            pass
        trace.finish()
        assert sp.end >= sp.start > 0.0
        assert sp.seconds >= 0.0
        assert trace.seconds >= sp.seconds

    def test_module_span_is_null_without_active_trace(self):
        assert current_trace() is None
        assert span("anything", attr=1) is NULL_SPAN
        # The null span is a usable context manager and absorbs set().
        with span("anything") as sp:
            assert sp.set("k", "v") is sp

    def test_module_span_attaches_under_active_trace(self):
        trace = Trace("t1", "q")
        with activate(trace):
            assert current_trace() is trace
            with span("outer"):
                with span("inner", shard=3):
                    pass
        assert current_trace() is None
        assert trace.span_names() == ["q", "outer", "inner"]
        assert trace.find("inner").attrs == {"shard": 3}

    def test_activation_restores_previous_trace(self):
        outer, inner = Trace("t1", "a"), Trace("t2", "b")
        with activate(outer):
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_worker_threads_attach_under_submitting_span(self):
        trace = Trace("t1", "q")
        with trace.span("fanout") as fanout:
            def task(i):
                with trace.worker(fanout):
                    with trace.span("subplan", shard=i):
                        pass
            threads = [threading.Thread(target=task, args=(i,)) for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        names = sorted(child.name for child in fanout.children)
        assert names == ["subplan"] * 3
        assert sorted(c.attrs["shard"] for c in fanout.children) == [0, 1, 2]

    def test_worker_context_restores_prior_stack(self):
        trace = Trace("t1", "q")
        with trace.span("a") as a:
            with trace.worker(trace.root):
                with trace.span("from_worker"):
                    pass
            # Back on the original stack: new spans nest under "a" again.
            with trace.span("after"):
                pass
        assert [c.name for c in trace.root.children] == ["a", "from_worker"]
        assert [c.name for c in a.children] == ["after"]

    def test_format_and_to_dict(self):
        trace = Trace("t9", "star")
        with trace.span("plan", k=3):
            pass
        trace.finish()
        text = trace.format()
        assert "trace t9 (star)" in text
        assert "plan" in text and "k=3" in text
        tree = trace.root.to_dict()
        assert tree["name"] == "star"
        assert tree["children"][0]["attrs"] == {"k": 3}

    def test_find_all(self):
        trace = Trace("t1", "q")
        with trace.span("cache_lookup", kind="semijoin"):
            pass
        with trace.span("cache_lookup", kind="partition"):
            pass
        lookups = trace.root.find_all("cache_lookup")
        assert [sp.attrs["kind"] for sp in lookups] == ["semijoin", "partition"]


class TestMetricsRegistry:
    def test_counter_with_labels(self):
        metrics = MetricsRegistry()
        metrics.inc("requests", kind="two_path")
        metrics.inc("requests", 2, kind="two_path")
        metrics.inc("requests", kind="star")
        snap = metrics.snapshot()
        assert snap.value("requests", kind="two_path") == 3
        assert snap.value("requests", kind="star") == 1
        assert snap.value("requests", kind="missing") == 0.0

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("ratio", 0.25, cache="artifacts")
        metrics.set_gauge("ratio", 0.75, cache="artifacts")
        assert metrics.snapshot().value("ratio", cache="artifacts") == 0.75

    def test_histogram_buckets_and_overflow(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 0.0004)   # below first bound (0.0005)
        metrics.observe("lat", 0.003)    # in the 0.005 bucket
        metrics.observe("lat", 100.0)    # overflow
        hist = metrics.snapshot().histogram("lat")
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(100.0034)
        assert hist["bounds"] == LATENCY_BUCKETS
        assert hist["counts"][0] == 1
        assert hist["counts"][-1] == 1  # +Inf overflow

    def test_label_order_does_not_matter(self):
        metrics = MetricsRegistry()
        metrics.inc("m", a="1", b="2")
        metrics.inc("m", b="2", a="1")
        assert metrics.snapshot().value("m", a="1", b="2") == 2

    def test_kind_conflict_rejected(self):
        metrics = MetricsRegistry()
        metrics.inc("m")
        with pytest.raises(ValueError, match="already registered"):
            metrics.set_gauge("m", 1.0)

    def test_concurrent_increments_are_not_lost(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot().value("hits") == 4000


class TestSnapshotDelta:
    def test_counter_and_histogram_subtract_gauge_keeps_later(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 5)
        metrics.observe("h", 0.01)
        metrics.set_gauge("g", 1.0)
        before = metrics.snapshot()
        metrics.inc("c", 2)
        metrics.observe("h", 0.02)
        metrics.observe("h", 0.03)
        metrics.set_gauge("g", 9.0)
        delta = metrics.snapshot().delta(before)
        assert delta.value("c") == 2
        assert delta.value("g") == 9.0
        hist = delta.histogram("h")
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.05)

    def test_delta_keeps_series_new_since_earlier(self):
        metrics = MetricsRegistry()
        before = metrics.snapshot()
        metrics.inc("fresh", 7)
        assert metrics.snapshot().delta(before).value("fresh") == 7

    def test_names_sorted(self):
        metrics = MetricsRegistry()
        metrics.inc("zz")
        metrics.inc("aa")
        assert metrics.snapshot().names() == ["aa", "zz"]


class TestExporters:
    def _snapshot(self):
        metrics = MetricsRegistry()
        metrics.inc("repro_queries_total", 3, kind="two_path", path="warm")
        metrics.set_gauge("repro_hit_ratio", 0.5, cache="artifacts")
        metrics.observe("repro_query_seconds", 0.002, kind="two_path")
        return metrics.snapshot()

    def test_prometheus_text_format(self):
        text = self._snapshot().to_prometheus()
        assert '# TYPE repro_queries_total counter' in text
        assert 'repro_queries_total{kind="two_path",path="warm"} 3' in text
        assert '# TYPE repro_hit_ratio gauge' in text
        assert 'repro_hit_ratio{cache="artifacts"} 0.5' in text
        assert '# TYPE repro_query_seconds histogram' in text
        # Cumulative buckets end at +Inf and agree with _count.
        assert 'le="+Inf"} 1' in text
        assert 'repro_query_seconds_count{kind="two_path"} 1' in text
        assert 'repro_query_seconds_sum{kind="two_path"} 0.002' in text
        assert text.endswith("\n")

    def test_prometheus_bucket_counts_are_cumulative(self):
        metrics = MetricsRegistry()
        metrics.observe("h", 0.0001)
        metrics.observe("h", 0.002)
        lines = metrics.snapshot().to_prometheus().splitlines()
        buckets = [int(line.rsplit(" ", 1)[1]) for line in lines if "h_bucket" in line]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 2

    def test_prometheus_label_escaping(self):
        metrics = MetricsRegistry()
        metrics.inc("m", label='quo"te\\path')
        text = metrics.snapshot().to_prometheus()
        assert r'label="quo\"te\\path"' in text

    def test_json_round_trip(self):
        parsed = json.loads(self._snapshot().to_json())
        assert parsed["repro_queries_total"]["kind"] == "counter"
        series = parsed["repro_queries_total"]["series"]
        assert series["kind=two_path,path=warm"] == 3
        hist = parsed["repro_query_seconds"]["series"]["kind=two_path"]
        assert hist["count"] == 1 and hist["overflow"] == 0


class TestNullMetrics:
    def test_every_call_is_a_noop(self):
        metrics = NullMetrics()
        metrics.inc("a", kind="x")
        metrics.set_gauge("b", 1.0)
        metrics.observe("c", 0.5)
        metrics.counter("a").inc()
        metrics.gauge("b").set(2.0)
        metrics.histogram("c").observe(1.0)
        snap = metrics.snapshot()
        assert isinstance(snap, MetricsSnapshot)
        assert snap.names() == []
        assert snap.value("a", kind="x") == 0.0


class TestSlowQueryLog:
    def _entry(self, trace_id, seconds=1.0):
        return SlowQueryEntry(Trace(trace_id, "q"), "q", "cold", seconds)

    def test_ring_buffer_is_bounded(self):
        log = SlowQueryLog(capacity=3)
        for i in range(5):
            log.record(self._entry(f"t{i}"))
        assert len(log) == 3
        assert [e.trace_id for e in log.entries()] == ["t2", "t3", "t4"]

    def test_get_by_trace_id(self):
        log = SlowQueryLog()
        log.record(self._entry("t1"))
        log.record(self._entry("t2"))
        assert log.get("t1").trace_id == "t1"
        assert log.get("missing") is None

    def test_clear(self):
        log = SlowQueryLog()
        log.record(self._entry("t1"))
        log.clear()
        assert len(log) == 0

    def test_entry_format_includes_span_tree_and_explain(self):
        trace = Trace("t7", "two_path")
        with trace.span("plan"):
            pass
        trace.finish()
        entry = SlowQueryEntry(trace, "two_path", "cold", 0.5,
                               explain_text="strategy: mmjoin")
        text = entry.format()
        assert "slow query t7" in text and "path=cold" in text
        assert "plan" in text
        assert "  strategy: mmjoin" in text

    def test_entry_to_dict(self):
        entry = self._entry("t1", seconds=0.25)
        as_dict = entry.to_dict()
        assert as_dict["trace_id"] == "t1"
        assert as_dict["seconds"] == 0.25
        assert as_dict["spans"]["name"] == "q"


class TestTelemetryFacade:
    def test_coerce_accepts_the_documented_knobs(self):
        assert Telemetry.coerce(True).enabled
        assert Telemetry.coerce(None).enabled
        assert Telemetry.coerce(False) is DISABLED
        config = TelemetryConfig(slow_query_seconds=1.5)
        assert Telemetry.coerce(config).config is config
        prebuilt = Telemetry()
        assert Telemetry.coerce(prebuilt) is prebuilt
        with pytest.raises(TypeError):
            Telemetry.coerce("yes")

    def test_disabled_facade_is_inert(self):
        assert not DISABLED.enabled
        assert DISABLED.start("two_path") is None
        assert isinstance(DISABLED.metrics, NullMetrics)
        DISABLED.observe_query(None, "two_path", "cold", 10.0)
        DISABLED.observe_write(None, "append", "absorbed", 10.0)
        assert len(DISABLED.slow_log) == 0
        assert DISABLED.metrics.snapshot().names() == []

    def test_start_mints_unique_trace_ids(self):
        telemetry = Telemetry()
        first, second = telemetry.start("a"), telemetry.start("b")
        assert first.trace_id != second.trace_id
        assert first.metrics is telemetry.metrics

    def test_observe_query_records_latency_and_counts(self):
        telemetry = Telemetry()
        telemetry.observe_query(None, "two_path", "cold", 0.002)
        snap = telemetry.metrics.snapshot()
        assert snap.value("repro_queries_total", kind="two_path", path="cold") == 1
        assert snap.histogram("repro_query_seconds",
                              kind="two_path", path="cold")["count"] == 1

    def test_slow_log_threshold(self):
        telemetry = Telemetry(TelemetryConfig(slow_query_seconds=0.1))
        fast, slow = telemetry.start("q"), telemetry.start("q")
        telemetry.observe_query(fast, "q", "cold", 0.05)
        assert len(telemetry.slow_log) == 0
        telemetry.observe_query(slow, "q", "cold", 0.2)
        assert [e.trace_id for e in telemetry.slow_log.entries()] == [slow.trace_id]

    def test_threshold_zero_records_everything(self):
        telemetry = Telemetry(TelemetryConfig(slow_query_seconds=0.0))
        trace = telemetry.start("q")
        telemetry.observe_query(trace, "q", "memo", 0.0)
        assert len(telemetry.slow_log) == 1

    def test_observe_write_counts_outcomes(self):
        telemetry = Telemetry()
        telemetry.observe_write(None, "append", "absorbed", 0.001, rows=8)
        telemetry.observe_write(None, "delete", "folded", 0.001, rows=2)
        snap = telemetry.metrics.snapshot()
        assert snap.value("repro_writes_total", op="append", outcome="absorbed") == 1
        assert snap.value("repro_writes_total", op="delete", outcome="folded") == 1
        assert snap.value("repro_write_rows_total", op="append") == 8
