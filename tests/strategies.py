"""Shared hypothesis strategies and seeded generators for the test suite.

Every property/differential test draws its inputs from here instead of
re-defining ad-hoc generators, so the whole suite agrees on what a "random
relation" covers:

* **uniform** pair lists over a small domain (dense collision-heavy keys);
* **skewed / heavy-hitter** lists — one hot witness with a large fanout, the
  shape the light/heavy partition exists for;
* **empty** and **single-row** edge cases;
* **huge-domain** values (up to ``2**40``) that overflow the packed-int64
  fast path and force the ``np.unique(axis=0)`` fallback.

The seeded (non-hypothesis) ``random_relation`` generator lives here too so
deterministic parametrised tests share the same input shapes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.data.setfamily import SetFamily

Pair = Tuple[int, int]

# Values deliberately include 0 and a huge outlier range so both the
# packed-int64-key fast path and the unique(axis=0) fallback are exercised.
SMALL_VALUES = st.integers(min_value=0, max_value=40)
HUGE_VALUES = st.integers(min_value=0, max_value=2**40)


# --------------------------------------------------------------------------- #
# Row-list strategies
# --------------------------------------------------------------------------- #
def pair_lists(values=SMALL_VALUES, max_size: int = 120, min_size: int = 0):
    """Uniform ``(x, y)`` row lists."""
    return st.lists(st.tuples(values, values), min_size=min_size, max_size=max_size)


def triple_lists(values=SMALL_VALUES, max_size: int = 80):
    """Uniform ``(a, b, c)`` row lists (arity-3 blocks)."""
    return st.lists(st.tuples(values, values, values), min_size=0, max_size=max_size)


@st.composite
def skewed_pair_lists(draw, values=SMALL_VALUES, max_size: int = 100,
                      max_fanout: int = 30) -> List[Pair]:
    """Heavy-hitter rows: a uniform base plus one hot witness with big fanout.

    The hot witness's degree exceeds any reasonable light threshold, so the
    pipeline's heavy (matrix) path is exercised even on small inputs.
    """
    base = draw(pair_lists(values=values, max_size=max_size))
    hot_y = draw(values)
    fanout = draw(st.integers(min_value=5, max_value=max_fanout))
    first_x = draw(st.integers(min_value=0, max_value=10))
    return base + [(first_x + i, hot_y) for i in range(fanout)]


def relation_rows(values=SMALL_VALUES, max_size: int = 120):
    """The canonical mix: empty, single-row, uniform, and heavy-hitter lists."""
    return st.one_of(
        st.just([]),
        pair_lists(values=values, max_size=1, min_size=1),
        pair_lists(values=values, max_size=max_size),
        skewed_pair_lists(values=values, max_size=max_size),
    )


def huge_domain_rows(max_size: int = 40):
    """Rows whose values overflow the packed-key fast path."""
    return pair_lists(values=HUGE_VALUES, max_size=max_size)


# --------------------------------------------------------------------------- #
# Relation / set-family strategies
# --------------------------------------------------------------------------- #
@st.composite
def relations(draw, name: str = "R", values=SMALL_VALUES, max_size: int = 120) -> Relation:
    """One relation drawn from the canonical row mix."""
    return Relation.from_pairs(draw(relation_rows(values=values, max_size=max_size)),
                               name=name)


@st.composite
def relation_pairs(draw, values=SMALL_VALUES,
                   max_size: int = 120) -> Tuple[Relation, Relation]:
    """Two relations sharing a y domain (the two-path query input)."""
    left = draw(relations(name="R", values=values, max_size=max_size))
    right = draw(relations(name="S", values=values, max_size=max_size))
    return left, right


@st.composite
def relation_lists(draw, k_min: int = 2, k_max: int = 3, values=SMALL_VALUES,
                   max_size: int = 80) -> List[Relation]:
    """``k`` relations joined on the shared witness (the star query input)."""
    k = draw(st.integers(min_value=k_min, max_value=k_max))
    return [
        draw(relations(name=f"R{i}", values=values, max_size=max_size))
        for i in range(k)
    ]


@st.composite
def set_families(draw, values=SMALL_VALUES, max_size: int = 100) -> SetFamily:
    """A set family over the canonical row mix (SSJ/SCJ input)."""
    return SetFamily.from_relation(
        draw(relations(name="F", values=values, max_size=max_size))
    )


# --------------------------------------------------------------------------- #
# Seeded generators (deterministic parametrised tests)
# --------------------------------------------------------------------------- #
def random_relation(seed: int, n_pairs: int = 140, x_domain: int = 18,
                    y_domain: int = 12, name: str = "R") -> Relation:
    """The seeded uniform relation shared by the deterministic grid tests."""
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, x_domain, size=n_pairs)
    ys = rng.integers(0, y_domain, size=n_pairs)
    return Relation.from_pairs(list(zip(xs.tolist(), ys.tolist())), name=name)


def skewed_random_relation(seed: int, n_pairs: int = 200, x_domain: int = 40,
                           y_domain: int = 30, hot_fraction: float = 0.3,
                           name: str = "R") -> Relation:
    """Seeded heavy-hitter relation: a fraction of rows share one witness."""
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, x_domain, size=n_pairs)
    ys = rng.integers(0, y_domain, size=n_pairs)
    hot_rows = max(int(n_pairs * hot_fraction), 1)
    ys[:hot_rows] = int(rng.integers(0, y_domain))
    return Relation.from_pairs(list(zip(xs.tolist(), ys.tolist())), name=name)
