"""Tests for the pluggable matmul backend registry."""

import numpy as np
import pytest

from repro.core.config import MMJoinConfig
from repro.matmul.cost_model import MatMulCostModel
from repro.matmul.registry import (
    BackendRegistry,
    DenseBackend,
    MatMulBackend,
    SparseBackend,
    default_registry,
    make_default_registry,
)


@pytest.fixture
def registry():
    return make_default_registry()


class TestRegistryBasics:
    def test_builtin_backends_registered(self, registry):
        assert registry.names() == ["blocked", "dense", "sparse", "strassen"]

    def test_get_by_name(self, registry):
        assert registry.get("dense").name == "dense"
        assert registry.get("strassen").name == "strassen"

    def test_unknown_backend_raises(self, registry):
        with pytest.raises(ValueError, match="unknown matmul backend"):
            registry.get("tensorcore")

    def test_duplicate_registration_refused(self, registry):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(DenseBackend())
        registry.register(DenseBackend(), replace=True)  # explicit replace is fine

    def test_custom_backend_pluggable(self, registry):
        class DoubleDense(DenseBackend):
            name = "double-dense"

        registry.register(DoubleDense())
        assert "double-dense" in registry
        assert registry.get("double-dense").multiply_dense(
            np.eye(3), np.eye(3)
        ).trace() == pytest.approx(3.0)

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestMultiply:
    @pytest.mark.parametrize("name", ["dense", "sparse", "blocked", "strassen"])
    def test_multiply_dense_matches_numpy(self, registry, name):
        rng = np.random.default_rng(7)
        a = (rng.random((13, 9)) < 0.4).astype(np.float32)
        b = (rng.random((9, 11)) < 0.4).astype(np.float32)
        product = registry.get(name).multiply_dense(a, b)
        assert np.allclose(np.asarray(product), a @ b, atol=1e-4)


class TestSelection:
    def test_explicit_backend_wins(self, registry):
        config = MMJoinConfig(matrix_backend="strassen")
        backend = registry.select(config, (10, 10, 10), 50, 50)
        assert backend.name == "strassen"

    def test_auto_picks_auto_eligible(self, registry):
        config = MMJoinConfig(matrix_backend="auto")
        backend = registry.select(config, (100, 50, 100), 500, 500)
        assert backend.auto_eligible
        assert backend.name in ("dense", "sparse")

    def test_auto_small_dense_product_prefers_dense(self, registry):
        config = MMJoinConfig(matrix_backend="auto")
        backend = registry.select(config, (50, 50, 50), 2000, 2000)
        assert backend.name == "dense"

    def test_auto_respects_max_heavy_dimension(self, registry):
        config = MMJoinConfig(matrix_backend="auto", max_heavy_dimension=64)
        backend = registry.select(config, (100_000, 10, 100_000), 100, 100)
        assert backend.name == "sparse"

    def test_selection_uses_cost_model(self):
        class FreeSparse(SparseBackend):
            def estimate_cost(self, dims, nnz_left, nnz_right, cost_model, config):
                return 0.0

        registry = BackendRegistry(cost_model=MatMulCostModel())
        registry.register(DenseBackend())
        registry.register(FreeSparse())
        config = MMJoinConfig(matrix_backend="auto")
        assert registry.select(config, (10, 10, 10), 10, 10).name == "sparse"

    def test_non_auto_eligible_never_auto_selected(self, registry):
        config = MMJoinConfig(matrix_backend="auto")
        for dims in [(5, 5, 5), (500, 20, 500), (4000, 4000, 4000)]:
            assert registry.select(config, dims, 100, 100).name not in (
                "blocked", "strassen",
            )


class TestHeavyEvaluation:
    def test_heavy_pairs_agree_across_backends(self, registry, skewed_pair):
        from repro.core.partitioning import partition_two_path

        left, right = skewed_pair
        partition = partition_two_path(left, right, 2, 2)
        rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
        reference = None
        for backend in registry:
            pairs, build_s, mult_s = backend.heavy_pairs(
                partition.r_heavy, partition.s_heavy, rows, mids, cols
            )
            assert build_s >= 0 and mult_s >= 0
            if reference is None:
                reference = pairs
            else:
                assert pairs == reference, backend.name

    def test_heavy_counts_agree_across_backends(self, registry, skewed_pair):
        from repro.core.partitioning import partition_two_path

        left, right = skewed_pair
        partition = partition_two_path(left, right, 2, 2)
        rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
        reference = None
        for backend in registry:
            counts, _, _ = backend.heavy_counts(
                partition.r_heavy, partition.s_heavy, rows, mids, cols
            )
            if reference is None:
                reference = counts
            else:
                assert counts == reference, backend.name


class TestAbstractInterface:
    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            MatMulBackend()  # type: ignore[abstract]


class TestEndToEndPluggability:
    def test_custom_backend_usable_via_config(self, skewed_pair):
        """A runtime-registered backend is selectable by name end-to-end:
        the config accepts it and the planner's heavy operator invokes it."""
        from repro.core.two_path import two_path_join
        from repro.joins.hash_join import hash_join_project

        class TracingBackend(DenseBackend):
            name = "tracing-test-backend"
            calls = 0

            def multiply_dense(self, left, right, cores=1):
                TracingBackend.calls += 1
                return super().multiply_dense(left, right, cores=cores)

        if TracingBackend.name not in default_registry():
            default_registry().register(TracingBackend())
        left, right = skewed_pair
        config = MMJoinConfig(
            delta1=2, delta2=2, matrix_backend=TracingBackend.name
        )
        result = two_path_join(left, right, config=config)
        assert result.pairs == hash_join_project(left, right)
        assert result.backend == TracingBackend.name
        assert TracingBackend.calls >= 1

    def test_unregistered_backend_still_rejected(self):
        with pytest.raises(ValueError, match="matrix_backend"):
            MMJoinConfig(matrix_backend="not-a-backend")
