"""Unit tests for repro.data.setfamily."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.data.setfamily import SetFamily


class TestConstruction:
    def test_from_dict(self, small_family):
        assert small_family.num_sets() == 8
        assert small_family.set_size(0) == 4

    def test_from_relation(self, tiny_relation):
        fam = SetFamily.from_relation(tiny_relation)
        assert fam.relation is tiny_relation
        assert fam.num_tuples() == len(tiny_relation)

    def test_len_and_iter(self, small_family):
        assert len(small_family) == 8
        seen = {sid for sid, _ in small_family}
        assert seen == set(int(v) for v in small_family.set_ids())


class TestAccess:
    def test_get_sorted(self, small_family):
        assert small_family.get(6).tolist() == [1, 2, 3, 4, 5, 6]

    def test_get_missing(self, small_family):
        assert small_family.get(99).size == 0

    def test_sizes(self, small_family):
        sizes = small_family.sizes()
        assert sizes[7] == 1
        assert sizes[6] == 6

    def test_elements_domain(self, small_family):
        assert set(small_family.elements().tolist()) == set(range(1, 10))

    def test_inverted_index_consistency(self, small_family):
        inv = small_family.inverted_index()
        for element, set_ids in inv.items():
            for sid in set_ids:
                assert element in small_family.get(int(sid)).tolist()

    def test_inverted_list_missing(self, small_family):
        assert small_family.inverted_list(1234).size == 0


class TestSetOperations:
    def test_intersection_size(self, small_family):
        assert small_family.intersection_size(0, 1) == 3
        assert small_family.intersection_size(0, 4) == 0

    def test_intersection_symmetric(self, small_family):
        for a in range(8):
            for b in range(8):
                assert small_family.intersection_size(a, b) == small_family.intersection_size(b, a)

    def test_contains(self, small_family):
        assert small_family.contains(3, 0)       # {1,2} subset of {1,2,3,4}
        assert small_family.contains(1, 6)       # {2,3,4} subset of {1..6}
        assert not small_family.contains(0, 1)
        assert not small_family.contains(5, 6)

    def test_contains_reflexive(self, small_family):
        for sid in range(8):
            assert small_family.contains(sid, sid)

    def test_jaccard(self, small_family):
        assert small_family.jaccard(0, 1) == pytest.approx(3 / 4)
        assert small_family.jaccard(0, 4) == 0.0

    def test_partition_by_size(self, small_family):
        light, heavy = small_family.partition_by_size(3)
        assert set(heavy) == {0, 5, 6}
        assert set(light) | set(heavy) == set(int(v) for v in small_family.set_ids())

    def test_restrict(self, small_family):
        sub = small_family.restrict([0, 1, 2])
        assert sub.num_sets() == 3
        assert sub.get(0).tolist() == [1, 2, 3, 4]

    def test_stats_row(self, small_family):
        row = small_family.stats_row()
        assert row["sets"] == 8
        assert row["tuples"] == small_family.num_tuples()
