"""Fault-tolerance layer: retries, crash recovery, deadlines, admission.

Unit tests drive the retry policy and deadlines against fake clocks (exact
backoff schedules, no real sleeping); integration tests inject deterministic
fault plans (:mod:`repro.faults`) into real sessions and assert the serving
path recovers to the fault-free oracle — or fails with the right typed
error — per the contracts in ``README.md``'s fault-tolerance section.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.data.relation import Relation
from repro.errors import (
    AdmissionRejected,
    Deadline,
    QueryTimeoutError,
    ReproError,
    ShardFailure,
    StrictDeleteError,
    UnknownRelationError,
    WorkerCrashError,
    check_deadline,
    current_deadline,
    install_deadline,
    restore_deadline,
)
from repro.faults import (
    SITE_BACKEND_MATMUL,
    SITE_EXTRACT_ALLOC,
    SITE_POOL_TASK,
    SITE_SHARD_SUBPLAN,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_plan,
    fault_site,
    inject,
    run_with_retry,
)
from repro.joins.baseline import combinatorial_two_path
from repro.parallel.executor import ParallelExecutor
from repro.plan.query import TwoPathQuery
from repro.serve import QuerySession

# Fast schedule for integration tests: real retries, negligible real sleep.
FAST = RetryPolicy(max_attempts=3, base_delay_ms=0.01, max_delay_ms=0.05,
                   jitter=0.0)


def _relation(seed: int = 0, n: int = 4000, dom: int = 200) -> Relation:
    rng = np.random.default_rng(seed)
    rows = np.unique(rng.integers(0, dom, size=(n, 2)), axis=0)
    return Relation.from_arrays(rows[:, 0], rows[:, 1], name="R")


class FakeClock:
    """A manually-advanced monotonic clock (doubles as a fake sleep)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


# --------------------------------------------------------------------------- #
# RetryPolicy / run_with_retry
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay_ms=10.0,
                             max_delay_ms=40.0, jitter=0.0)
        rng = policy.rng()
        delays = [policy.backoff_seconds(attempt, rng)
                  for attempt in (1, 2, 3, 4)]
        assert delays == [0.010, 0.020, 0.040, 0.040]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter=0.5, seed=7)
        draws = [policy.backoff_seconds(1, policy.rng()) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]  # same seed, same schedule
        assert 0.005 <= draws[0] <= 0.015  # ±50% of 10 ms

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_recovers_within_budget_with_exact_schedule(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay_ms=10.0,
                             max_delay_ms=100.0, jitter=0.0)
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 3:
                raise WorkerCrashError("boom")
            return "ok"

        assert run_with_retry(flaky, policy=policy,
                              sleep=clock.sleep) == "ok"
        assert len(calls) == 3
        assert clock.sleeps == [0.010, 0.020]  # exponential, fake clock

    def test_exhaustion_propagates_last_error(self):
        clock = FakeClock()

        def doomed():
            raise WorkerCrashError("always")

        with pytest.raises(WorkerCrashError, match="always"):
            run_with_retry(doomed, policy=FAST, sleep=clock.sleep)
        assert len(clock.sleeps) == FAST.max_attempts - 1

    def test_non_retryable_raises_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            run_with_retry(wrong, policy=FAST, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise WorkerCrashError("x")
            return 42

        result = run_with_retry(
            flaky, policy=FAST, sleep=lambda _s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert result == 42
        assert seen == [(1, WorkerCrashError)]


# --------------------------------------------------------------------------- #
# FaultPlan determinism
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_seeded_replay_is_identical(self):
        histories = []
        for _ in range(2):
            plan = FaultPlan(
                [FaultRule(SITE_POOL_TASK, "crash", count=3, probability=0.4)],
                seed=5,
            )
            with inject(plan):
                for _ in range(12):
                    try:
                        fault_site(SITE_POOL_TASK)
                    except WorkerCrashError:
                        pass
            histories.append(tuple(plan.fired))
        assert histories[0] == histories[1]

    def test_counts_bound_firing(self):
        plan = FaultPlan([FaultRule(SITE_POOL_TASK, "error", count=2)])
        with inject(plan):
            fired = 0
            for _ in range(5):
                try:
                    fault_site(SITE_POOL_TASK)
                except RuntimeError:
                    fired += 1
        assert fired == 2 and plan.exhausted

    def test_kinds_map_to_exceptions(self):
        for kind, exc_type in (("crash", WorkerCrashError),
                               ("alloc", MemoryError),
                               ("error", RuntimeError)):
            plan = FaultPlan([FaultRule("site", kind)])
            with inject(plan), pytest.raises(exc_type):
                fault_site("site")

    def test_slow_fault_sleeps_injectably(self):
        clock = FakeClock()
        plan = FaultPlan([FaultRule("site", "slow", delay_ms=30.0)],
                         sleep=clock.sleep)
        with inject(plan):
            fault_site("site")
        assert clock.sleeps == [0.030]

    def test_sites_do_not_cross_fire(self):
        plan = FaultPlan([FaultRule(SITE_BACKEND_MATMUL, "error")])
        with inject(plan):
            fault_site(SITE_POOL_TASK)  # different site: no fire
            fault_site(SITE_EXTRACT_ALLOC)
        assert plan.fired == [] and not plan.exhausted

    def test_inject_scopes_the_active_plan(self):
        assert active_plan() is None
        plan = FaultPlan([])
        with inject(plan):
            assert active_plan() is plan
        assert active_plan() is None
        fault_site(SITE_POOL_TASK)  # production state: pure no-op

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("site", "melt")
        with pytest.raises(ValueError):
            FaultRule("site", "crash", count=0)
        with pytest.raises(ValueError):
            FaultRule("site", "crash", probability=0.0)


# --------------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------------- #
class TestDeadline:
    def test_fake_clock_expiry_and_metadata(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        deadline.check("early")  # within budget: no-op
        clock.now = 0.049
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(0.001)
        clock.now = 0.060
        with pytest.raises(QueryTimeoutError) as info:
            deadline.check("expand.chunk")
        err = info.value
        assert err.site == "expand.chunk"
        assert err.timeout_ms == 50.0
        assert err.elapsed_ms == pytest.approx(60.0)

    def test_thread_local_checkpoint_hook(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        token = install_deadline(deadline)
        try:
            assert current_deadline() is deadline
            check_deadline("loop")
            clock.now = 1.0
            with pytest.raises(QueryTimeoutError):
                check_deadline("loop")
        finally:
            restore_deadline(token)
        assert current_deadline() is None
        check_deadline("no-deadline")  # unbounded: no-op

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-5.0)


# --------------------------------------------------------------------------- #
# ParallelExecutor resilience
# --------------------------------------------------------------------------- #
class TestExecutorResilience:
    def test_crashed_task_retries_and_order_is_preserved(self):
        plan = FaultPlan([FaultRule(SITE_POOL_TASK, "crash", count=1)])
        executor = ParallelExecutor(cores=2, persistent=True,
                                    retry_policy=FAST)
        try:
            with inject(plan):
                out = executor.map(lambda x: x * x, list(range(8)))
            assert out == [x * x for x in range(8)]
            assert plan.exhausted
            assert not executor.degraded
        finally:
            executor.close()

    def test_unbounded_crashes_degrade_to_inline(self):
        plan = FaultPlan([FaultRule(SITE_POOL_TASK, "crash", count=10**9)])
        executor = ParallelExecutor(cores=2, persistent=True,
                                    retry_policy=FAST)
        try:
            with inject(plan):
                out = executor.map(lambda x: x + 1, list(range(6)))
                # Inline fallback bypasses the pool wrapper, so results are
                # still correct under a permanently-crashing pool site.
                assert out == list(range(1, 7))
        finally:
            executor.close()

    def test_hung_worker_detected_and_pool_rebuilt(self):
        executor = ParallelExecutor(cores=2, persistent=True,
                                    retry_policy=FAST, hang_timeout=0.05)
        state = {"hang": True}

        def task(item):
            if item == 1 and state.pop("hang", False):
                time.sleep(0.6)  # far past the hang timeout
            return item

        try:
            out = executor.map(task, [0, 1, 2])
            assert out == [0, 1, 2]
            assert not executor.degraded  # recovered, pool healthy again
        finally:
            executor.close()

    def test_deadline_propagates_into_pool_workers(self):
        executor = ParallelExecutor(cores=2, persistent=True)
        deadline = Deadline(60_000.0)
        token = install_deadline(deadline)
        try:
            seen = executor.map(lambda _x: current_deadline() is deadline,
                                [0, 1, 2, 3])
            assert all(seen)
        finally:
            restore_deadline(token)
            executor.close()

    def test_expired_deadline_aborts_map(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.now = 1.0  # already past due
        executor = ParallelExecutor(cores=2, persistent=True)
        token = install_deadline(deadline)
        try:
            with pytest.raises(QueryTimeoutError):
                executor.map(lambda x: x, [0, 1, 2, 3])
        finally:
            restore_deadline(token)
            executor.close()


# --------------------------------------------------------------------------- #
# Session-level fault tolerance
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def oracle_pairs():
    rel = _relation()
    return combinatorial_two_path(rel, rel)


class TestSessionFaultTolerance:
    def test_worker_crash_recovers_in_one_retry(self, oracle_pairs):
        # Acceptance: a seeded plan crashing one pool worker mid-sharded-
        # query completes after <= 1 retry and matches the fault-free oracle.
        rel = _relation()
        plan = FaultPlan([FaultRule(SITE_POOL_TASK, "crash", count=1)],
                         seed=7)
        with QuerySession(config=DEFAULT_CONFIG.with_cores(4), shards=4,
                          retry_policy=FAST) as session:
            session.register(rel, "R", sharded=True)
            with inject(plan):
                result = session.two_path("R", use_memo=False)
            assert result.pairs == oracle_pairs
            snapshot = session.metrics()
            assert snapshot.value("repro_retries_total", scope="pool") == 1
            assert snapshot.value("repro_degraded_total", scope="pool") == 0
        assert plan.exhausted

    def test_shard_subplan_error_retries_transparently(self, oracle_pairs):
        rel = _relation()
        plan = FaultPlan([FaultRule(SITE_SHARD_SUBPLAN, "error", count=2)])
        with QuerySession(shards=4, retry_policy=FAST) as session:
            session.register(rel, "R", sharded=True)
            with inject(plan):
                result = session.two_path("R", use_memo=False)
            assert result.pairs == oracle_pairs
            assert session.metrics().value("repro_retries_total",
                                           scope="shard") == 2

    def test_exhausted_shard_raises_shard_failure(self):
        rel = _relation()
        plan = FaultPlan([FaultRule(SITE_SHARD_SUBPLAN, "error",
                                    count=10**9)])
        with QuerySession(shards=4, retry_policy=FAST) as session:
            session.register(rel, "R", sharded=True)
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            with inject(plan), pytest.raises(ShardFailure) as info:
                session.submit(query, use_memo=False)
        assert info.value.attempts == FAST.max_attempts
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_partial_results_keep_completed_shards(self, oracle_pairs):
        rel = _relation()
        # Fail exactly one shard permanently (retries exhaust on it alone):
        # attempts on one shard = max_attempts, so a count of max_attempts
        # pins the failure to whichever shard drew the rule first.
        plan = FaultPlan([FaultRule(SITE_SHARD_SUBPLAN, "error",
                                    count=FAST.max_attempts)])
        with QuerySession(shards=4, retry_policy=FAST) as session:
            session.register(rel, "R", sharded=True)
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            with inject(plan):
                result = session.submit(query, partial_results=True,
                                        use_memo=False)
            assert result.partial
            assert result.pairs < oracle_pairs  # strict subset
            stats = result.explanation.session_stats
            assert stats["partial"] is True and stats["shards_failed"] == 1
            assert "partial" in result.explain()
            # The partial union must not be memoized: the healthy re-serve
            # re-attempts the failed shard and recovers the full result.
            recovered = session.submit(query, use_memo=True)
            assert not recovered.from_memo
            assert recovered.pairs == oracle_pairs

    def test_partial_results_reject_counting(self):
        rel = _relation()
        with QuerySession(shards=4) as session:
            session.register(rel, "R", sharded=True)
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"), counting=True)
            with pytest.raises(ValueError, match="set semantics"):
                session.submit(query, partial_results=True)

    def test_timeout_raises_within_one_checkpoint(self):
        # Acceptance: timeout_ms=50 against a plan slowed by injected delays
        # raises QueryTimeoutError within 50 ms plus one checkpoint interval
        # (here: one 40 ms injected subplan delay).
        rel = _relation()
        plan = FaultPlan([FaultRule(SITE_SHARD_SUBPLAN, "slow", count=10**9,
                                    delay_ms=40.0)])
        with QuerySession(shards=4) as session:
            session.register(rel, "R", sharded=True)
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            start = time.perf_counter()
            with inject(plan), pytest.raises(QueryTimeoutError) as info:
                session.submit(query, timeout_ms=50.0, use_memo=False)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert info.value.timeout_ms == 50.0
            assert info.value.elapsed_ms >= 50.0
            assert elapsed_ms < 1000.0  # budget + one interval, not a hang
            assert info.value.trace is not None  # partial span tree attached
            assert session.metrics().value("repro_deadline_exceeded_total",
                                           kind="two_path") == 1

    def test_admission_forces_tiled_and_matches_oracle(self, oracle_pairs):
        rel = _relation()
        # dom(x) x dom(z) = 200 x 200 = 40 000 candidate cells > 4 000 B
        # budget; a 20-row band (4 000 B) fits, so the query is admitted
        # onto tiled extraction and must still match the oracle.
        with QuerySession(memory_budget_bytes=4000) as session:
            session.register(rel, "R")
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            result = session.submit(query, use_memo=False)
            assert result.pairs == oracle_pairs
            assert session.metrics().value("repro_admission_total",
                                           decision="tiled") == 1

    def test_admission_rejects_when_no_band_fits(self):
        rel = _relation()
        with QuerySession(memory_budget_bytes=50) as session:
            session.register(rel, "R")
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            with pytest.raises(AdmissionRejected) as info:
                session.submit(query, use_memo=False)
            assert info.value.budget_bytes == 50
            assert info.value.estimate_bytes > 50
            assert session.metrics().value("repro_admission_total",
                                           decision="reject") == 1

    def test_admission_admits_under_budget(self, oracle_pairs):
        rel = _relation()
        with QuerySession(memory_budget_bytes=1 << 30) as session:
            session.register(rel, "R")
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            assert session.submit(query, use_memo=False).pairs == oracle_pairs
            assert session.metrics().value("repro_admission_total",
                                           decision="admit") == 1

    def test_memo_hits_bypass_admission(self):
        rel = _relation()
        with QuerySession() as session:
            session.register(rel, "R")
            query = TwoPathQuery(left=session.relation("R"),
                                 right=session.relation("R"))
            warm = session.submit(query)  # populate the memo
            assert not warm.from_memo
            session.memory_budget_bytes = 1  # would reject any execution
            memo = session.submit(query)
            assert memo.from_memo  # served without touching admission


# --------------------------------------------------------------------------- #
# Typed error taxonomy
# --------------------------------------------------------------------------- #
class TestErrorTaxonomy:
    def test_hierarchy(self):
        for exc_type in (QueryTimeoutError, WorkerCrashError,
                         AdmissionRejected, ShardFailure,
                         UnknownRelationError, StrictDeleteError):
            assert issubclass(exc_type, ReproError)
        # Compat: pre-taxonomy callers catch the stdlib classes.
        assert issubclass(UnknownRelationError, KeyError)
        assert issubclass(StrictDeleteError, ValueError)

    def test_unknown_relation_is_typed(self):
        with QuerySession() as session:
            with pytest.raises(UnknownRelationError):
                session.update("ghost", _relation())
            with pytest.raises(UnknownRelationError):
                session.sharded("ghost")
            with pytest.raises(KeyError):  # old-style catch still works
                session.append("ghost", [(1, 2)])

    def test_strict_delete_is_typed(self):
        with QuerySession() as session:
            session.register(_relation(), "R")
            with pytest.raises(StrictDeleteError):
                session.delete("R", [(10**6, 10**6)], strict=True)
            with pytest.raises(ValueError):  # old-style catch still works
                session.delete("R", [(10**6, 10**6)], strict=True)


# --------------------------------------------------------------------------- #
# Session lifecycle
# --------------------------------------------------------------------------- #
class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        session = QuerySession()
        session.register(_relation(), "R")
        session.close()
        session.close()  # second close: no-op, no error

    def test_context_manager_closes_pools(self):
        with QuerySession(config=DEFAULT_CONFIG.with_cores(2),
                          shards=2) as session:
            session.register(_relation(), "R", sharded=True)
            session.two_path("R", use_memo=False)
            context = session.context
            assert context._executors  # persistent pool was created
        assert not context._executors  # torn down by __exit__
