"""Tests for set containment join."""

import pytest

from repro.data.setfamily import SetFamily
from repro.setops.scj import (
    scj_bruteforce,
    scj_limit,
    scj_mmjoin,
    scj_partitions,
    scj_piejoin,
    scj_pretti,
    set_containment_join,
)

ALL_METHODS = ["mmjoin", "pretti", "limit", "piejoin"]


class TestSelfJoin:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_bruteforce_small(self, small_family, method):
        expected = scj_bruteforce(small_family, small_family).pairs
        result = set_containment_join(small_family, method=method)
        assert result.pairs == expected

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_bruteforce_skewed(self, skewed_family, method):
        expected = scj_bruteforce(skewed_family, skewed_family).pairs
        result = set_containment_join(skewed_family, method=method)
        assert result.pairs == expected

    def test_known_containments_present(self, small_family):
        result = scj_mmjoin(small_family, small_family)
        assert (3, 0) in result.pairs     # {1,2} subset of {1,2,3,4}
        assert (1, 0) in result.pairs     # {2,3,4} subset of {1,2,3,4}
        assert (1, 6) in result.pairs     # {2,3,4} subset of {1..6}
        assert (0, 1) not in result.pairs

    def test_no_self_containment_reported(self, small_family):
        for method in ALL_METHODS:
            result = set_containment_join(small_family, method=method)
            assert all(a != b for a, b in result.pairs)

    def test_duplicate_sets_contained_both_ways(self):
        family = SetFamily.from_dict({0: [1, 2], 1: [1, 2], 2: [5]})
        result = scj_pretti(family, family)
        assert (0, 1) in result.pairs and (1, 0) in result.pairs


class TestCrossJoin:
    def test_cross_family(self, small_family):
        containers = SetFamily.from_dict({100: list(range(1, 10)), 101: [1, 2]})
        expected = set()
        for a in small_family.set_ids():
            for b in containers.set_ids():
                set_a = set(small_family.get(int(a)).tolist())
                set_b = set(containers.get(int(b)).tolist())
                if set_a and set_a <= set_b:
                    expected.add((int(a), int(b)))
        for method in ALL_METHODS:
            result = set_containment_join(small_family, other=containers, method=method)
            assert result.pairs == expected, method


class TestDetails:
    def test_invalid_method(self, small_family):
        with pytest.raises(ValueError):
            set_containment_join(small_family, method="bogus")

    def test_limit_parameter(self, skewed_family):
        expected = scj_bruteforce(skewed_family, skewed_family).pairs
        for limit in (1, 2, 4):
            assert scj_limit(skewed_family, skewed_family, limit=limit).pairs == expected

    def test_limit_verifications_decrease_with_larger_limit(self, skewed_family):
        few = scj_limit(skewed_family, skewed_family, limit=1)
        many = scj_limit(skewed_family, skewed_family, limit=4)
        # a deeper prefix intersection prunes more candidates before verification
        assert many.verifications <= few.verifications * 4  # sanity bound; exact order depends on data

    def test_partitions_cover_all_probe_sets(self, skewed_family):
        parts = scj_partitions(skewed_family, skewed_family)
        covered = {sid for part in parts for sid in part}
        nonempty = {int(s) for s in skewed_family.set_ids() if skewed_family.set_size(int(s)) > 0}
        assert covered == nonempty

    def test_partitions_disjoint(self, skewed_family):
        parts = scj_partitions(skewed_family, skewed_family)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)

    def test_timings_reported(self, small_family):
        for method in ALL_METHODS:
            result = set_containment_join(small_family, method=method)
            assert result.timings.get("total", 0) >= 0

    def test_result_protocol(self, small_family):
        result = scj_pretti(small_family, small_family)
        assert len(result) == len(result.pairs)
        if result.pairs:
            assert next(iter(result.pairs)) in result
