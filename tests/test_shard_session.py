"""Serving-layer tests for the sharded execution path.

Covers the shard-scoped invalidation contract — ``update_shard`` leaves
sibling-shard artifacts warm (asserted via cache hit/miss counters),
re-registering a sharded name invalidates *all* shard tokens — plus the
router's fallback behaviour, the per-shard explain rollup, shard statistics
and the parallel shard fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest
from strategies import random_relation, skewed_random_relation

from repro.core.config import MMJoinConfig
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_star, combinatorial_two_path
from repro.plan.query import StarQuery, TwoPathQuery
from repro.serve import QuerySession

CONFIG = MMJoinConfig(delta1=2, delta2=2, matrix_backend="dense")


@pytest.fixture
def sharded_inputs():
    left = skewed_random_relation(31, n_pairs=500, x_domain=60, y_domain=40, name="R")
    right = skewed_random_relation(32, n_pairs=500, x_domain=60, y_domain=40, name="S")
    return left, right


def _session(left, right, shards=4, config=CONFIG):
    session = QuerySession(config=config, shards=shards)
    session.register(left, name="R", sharded=True)
    session.register(right, name="S", sharded=True)
    return session


def _shard_cache_rows(result):
    return {row["shard"]: row for row in result.explanation.shard_reports}


def _busiest_hash_shard(session, name):
    container = session.sharded(name)
    hash_shards = session.sharding_spec.hash_shards
    return int(np.argmax(container.sizes()[:hash_shards]))


class TestShardedServing:
    def test_sharded_matches_unsharded(self, sharded_inputs):
        left, right = sharded_inputs
        expected = combinatorial_two_path(left, right)
        with _session(left, right) as session:
            result = session.two_path("R", "S", use_memo=False)
            assert result.strategy == "sharded"
            assert result.pairs == expected
            stats = result.explanation.session_stats
            assert stats["shards_planned"] == session.sharding_spec.num_shards
            assert stats["shards_executed"] + stats["shards_skipped_empty"] == \
                stats["shards_planned"]

    def test_warm_run_hits_every_shard(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            warm = session.two_path("R", "S", use_memo=False)
        assert warm.explanation.session_stats["operator_cache_misses"] == 0
        # Every shard either re-serves its cached result block or is a
        # rank-1 heavy shard: those re-emit output-sensitively (a partially
        # containment-reduced emission depends on sibling rectangles, so it
        # is deliberately never cached) or prove emptiness outright.
        assert all(
            row["result_cached"] or row["strategy"] in ("heavy_direct",
                                                        "heavy_skipped")
            for row in warm.explanation.shard_reports
        )
        assert all(row["cache_misses"] == 0
                   for row in warm.explanation.shard_reports)

    def test_heavy_keys_isolated_into_dedicated_shards(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            spec = session.sharding_spec
            assert spec.num_heavy >= 1  # the skewed generators plant hot witnesses
            container = session.sharded("R")
            for shard in range(spec.hash_shards, spec.num_shards):
                key = spec.heavy_key_of(shard)
                sub = container.shard(shard)
                assert set(sub.ys.tolist()) <= {key}

    def test_explain_contains_shard_breakdown(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            text = session.two_path("R", "S", use_memo=False).explain()
        assert "cache h/m" in text and "shard_merge" in text
        assert "shards_executed" in text


class TestShardScopedInvalidation:
    def test_update_shard_leaves_siblings_warm(self, sharded_inputs):
        """The acceptance property: one shard misses, every sibling hits."""
        left, right = sharded_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            warm = session.two_path("R", "S", use_memo=False)
            assert warm.explanation.session_stats["operator_cache_misses"] == 0
            target = _busiest_hash_shard(session, "R")
            new_rows = session.sharded("R").shard(target).data[::2]
            session.update_shard("R", target, new_rows)
            result = session.two_path("R", "S", use_memo=False)
            rows = _shard_cache_rows(result)
            assert rows[target]["cache_misses"] > 0
            for shard, row in rows.items():
                if shard != target:
                    assert row["cache_misses"] == 0, (shard, row)
                    # Siblings re-serve their cached result block, or are
                    # rank-1 heavy shards re-emitting output-sensitively.
                    assert row["result_cached"] or row["strategy"] in (
                        "heavy_direct", "heavy_skipped"), (shard, row)
            # the served result reflects the mutation exactly
            assert result.pairs == combinatorial_two_path(
                session.relation("R"), right
            )
            # cumulative counters prove the same through session_stats
            per_shard = session.shard_stats()["per_shard"]
            for shard, counters in per_shard.items():
                if shard != target and counters["queries"] == 3:
                    assert counters["cache_misses"] <= rows[target]["cache_misses"]

    def test_update_shard_invalidates_memo(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            session.two_path("R", "S")
            assert session.two_path("R", "S").from_memo
            target = _busiest_hash_shard(session, "R")
            session.update_shard("R", target,
                                 session.sharded("R").shard(target).data[::2])
            fresh = session.two_path("R", "S")
            assert not fresh.from_memo
            assert fresh.pairs == combinatorial_two_path(session.relation("R"), right)

    def test_update_shard_bumps_version_and_family(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            version = session.version("R")
            target = _busiest_hash_shard(session, "R")
            session.update_shard("R", target,
                                 session.sharded("R").shard(target).data[::2])
            assert session.version("R") == version + 1
            # the base relation view reflects the mutation
            assert len(session.relation("R")) == len(session.sharded("R"))

    def test_update_shard_rejects_foreign_keys(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            spec = session.sharding_spec
            target = _busiest_hash_shard(session, "R")
            other = (target + 1) % spec.hash_shards
            foreign = session.sharded("R").shard(other)
            if len(foreign) == 0:
                pytest.skip("sibling shard empty for this seed")
            with pytest.raises(ValueError):
                session.update_shard("R", target, foreign)

    def test_update_shard_requires_sharded_name(self, sharded_inputs):
        left, right = sharded_inputs
        with QuerySession(config=CONFIG, shards=4) as session:
            session.register(left, name="R")  # not sharded
            with pytest.raises(KeyError):
                session.update_shard("R", 0, left)
            with pytest.raises(KeyError):
                session.update_shard("missing", 0, left)

    def test_update_shard_rejects_out_of_range(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            with pytest.raises(ValueError):
                session.update_shard("R", session.sharding_spec.num_shards, left)

    def test_reregister_invalidates_every_shard_token(self, sharded_inputs):
        """Re-registering a sharded name must cold-start all shards."""
        left, right = sharded_inputs
        replacement = skewed_random_relation(33, n_pairs=500, x_domain=60,
                                             y_domain=40, name="R")
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            session.two_path("R", "S", use_memo=False)
            session.register(replacement, name="R", sharded=True)
            result = session.two_path("R", "S", use_memo=False)
            for row in result.explanation.shard_reports:
                assert row["cache_hits"] == 0, row
            assert result.pairs == combinatorial_two_path(
                session.relation("R"), right
            )

    def test_plain_update_preserves_shardedness(self, sharded_inputs):
        left, right = sharded_inputs
        replacement = random_relation(34, n_pairs=400, x_domain=50, y_domain=40)
        with _session(left, right) as session:
            session.update("R", replacement)
            assert "R" in session.shard_stats()["relations"]
            result = session.two_path("R", "S", use_memo=False)
            assert result.strategy == "sharded"
            assert result.pairs == combinatorial_two_path(replacement, right)

    def test_remove_drops_sharding(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            session.remove("R")
            with pytest.raises(KeyError):
                session.sharded("R")

    def test_respec_unbinds_stale_shard_tokens(self):
        """Spec-changing registrations must not pin old shard generations.

        Every registration below plants a new heavy-hitter key, changing the
        frozen spec and re-partitioning all siblings; the context must only
        keep the *current* generation of shard bindings per relation.
        """
        with QuerySession(config=CONFIG, shards=4) as session:
            for seed in range(6):
                hot = [(x, 1000 + seed) for x in range(80)]
                rel = Relation(
                    np.array(random_relation(seed, n_pairs=120, x_domain=20,
                                             y_domain=12).data.tolist() + hot),
                    name=f"R{seed}",
                )
                session.register(rel, name=f"R{seed}", sharded=True)
            for name, container in session._sharded.items():
                bound = sum(
                    1 for token, _ in session.context._tokens.values()
                    if token[0] == "shard" and token[1] == name
                )
                assert bound == container.num_shards, (name, bound)


class TestRouterFallbacks:
    def test_unsharded_relation_falls_back(self, sharded_inputs):
        left, right = sharded_inputs
        with QuerySession(config=CONFIG, shards=4) as session:
            session.register(left, name="R", sharded=True)
            session.register(right, name="S")  # unsharded
            result = session.two_path("R", "S", use_memo=False)
            assert result.strategy != "sharded"
            assert result.pairs == combinatorial_two_path(left, right)
            assert session.shard_stats()["router"]["fallbacks"] >= 1

    def test_single_shard_session_falls_back(self, sharded_inputs):
        left, right = sharded_inputs
        with QuerySession(config=CONFIG, shards=1) as session:
            session.register(left, name="R", sharded=True)
            session.register(right, name="S", sharded=True)
            result = session.two_path("R", "S", use_memo=False)
            assert result.strategy != "sharded"
            assert result.pairs == combinatorial_two_path(left, right)

    def test_adhoc_relation_falls_back(self, sharded_inputs):
        left, right = sharded_inputs
        adhoc = random_relation(35, n_pairs=100, x_domain=20, y_domain=15)
        with _session(left, right) as session:
            result = session.evaluate(TwoPathQuery(left=adhoc, right=adhoc))
            assert result.strategy != "sharded"
            assert result.pairs == combinatorial_two_path(adhoc, adhoc)

    def test_star_routes_sharded(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            result = session.star(["R", "S", "R"], use_memo=False)
            assert result.strategy == "sharded"
            assert result.pairs == combinatorial_star([left, right, left])


class TestShardStatsAndParallel:
    def test_shard_stats_shape(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            session.two_path("R", "S", use_memo=False)
            session.two_path("R", "S", use_memo=False)
            stats = session.shard_stats()
            assert stats["shards"] == session.sharding_spec.num_shards
            assert stats["hash_shards"] == 4
            assert set(stats["relations"]) == {"R", "S"}
            assert stats["relations"]["R"]["tuples"] == len(left)
            assert stats["per_shard"]
            for counters in stats["per_shard"].values():
                assert 0.0 <= counters["hit_rate"] <= 1.0
            assert "shards" in session.cache_stats()

    def test_parallel_fanout_matches_serial(self, sharded_inputs):
        left, right = sharded_inputs
        expected = combinatorial_two_path(left, right)
        parallel_config = MMJoinConfig(delta1=2, delta2=2,
                                       matrix_backend="dense", cores=3)
        with _session(left, right, shards=6, config=parallel_config) as session:
            for _ in range(2):
                result = session.two_path("R", "S", use_memo=False)
                assert result.pairs == expected

    def test_batched_sharded_queries(self, sharded_inputs):
        left, right = sharded_inputs
        with _session(left, right) as session:
            queries = [
                TwoPathQuery(left=session.relation("R"), right=session.relation("S")),
                TwoPathQuery(left=session.relation("R"), right=session.relation("S"),
                             counting=True),
                StarQuery([session.relation("R"), session.relation("S")]),
            ]
            results = session.submit_batch(queries, use_memo=False)
        assert results[0].pairs == combinatorial_two_path(left, right)
        assert set(results[1].counts) == combinatorial_two_path(left, right)
        assert results[2].pairs == combinatorial_star([left, right])
