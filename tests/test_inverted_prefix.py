"""Tests for the inverted index and the prefix tree (Example 6 machinery)."""

import pytest

from repro.setops.inverted_index import InvertedIndex, c_subsets, count_c_subsets
from repro.setops.prefix_tree import PrefixTree


@pytest.fixture
def index(small_family):
    return InvertedIndex(small_family)


class TestInvertedIndex:
    def test_lists_consistent_with_family(self, index, small_family):
        for element, lst in index.lists().items():
            for sid in lst:
                assert element in small_family.get(int(sid)).tolist()

    def test_list_length(self, index, small_family):
        for element in index.elements():
            assert index.list_length(element) == index.get(element).size

    def test_missing_element(self, index):
        assert index.get(999).size == 0
        assert index.list_length(999) == 0

    def test_order_by_frequency_descending(self, index):
        order = index.order_by_frequency(descending=True)
        lengths = [index.list_length(e) for e in order]
        assert lengths == sorted(lengths, reverse=True)

    def test_order_by_frequency_ascending(self, index):
        order = index.order_by_frequency(descending=False)
        lengths = [index.list_length(e) for e in order]
        assert lengths == sorted(lengths)

    def test_rank_map_matches_order(self, index):
        order = index.order_by_frequency()
        ranks = index.rank_map()
        assert all(ranks[e] == i for i, e in enumerate(order))

    def test_reorder_set(self, index):
        reordered = index.reorder_set([9, 1, 4])
        ranks = index.rank_map()
        assert [ranks[e] for e in reordered] == sorted(ranks[e] for e in [9, 1, 4])

    def test_candidate_pairs_through(self, index, small_family):
        pairs = set(index.candidate_pairs_through(2))
        members = set(small_family.inverted_list(2).tolist())
        for a, b in pairs:
            assert a in members and b in members and a != b

    def test_merge_lists_counts_are_intersections(self, index, small_family):
        merged = index.merge_lists(small_family.get(0))
        for sid, count in merged.items():
            assert count == small_family.intersection_size(0, sid)

    def test_merge_empty(self, index):
        assert index.merge_lists([]) == {}


class TestCSubsets:
    def test_enumeration(self):
        assert set(c_subsets([3, 1, 2], 2)) == {(1, 2), (1, 3), (2, 3)}

    def test_c_larger_than_set(self):
        assert list(c_subsets([1, 2], 3)) == []

    def test_c_zero(self):
        assert list(c_subsets([1, 2], 0)) == []

    def test_count_matches_enumeration(self):
        elements = list(range(7))
        for c in range(1, 5):
            assert count_c_subsets(len(elements), c) == len(list(c_subsets(elements, c)))

    def test_count_edge_cases(self):
        assert count_c_subsets(5, 0) == 1
        assert count_c_subsets(3, 5) == 0


class TestPrefixTree:
    def test_merged_counts_match_direct_merge(self, index, small_family):
        tree = PrefixTree(index)
        tree.build((sid, small_family.get(sid)) for sid in small_family.sets())
        for sid in small_family.sets():
            direct = index.merge_lists(small_family.get(sid))
            assert tree.merged_counts(small_family.get(sid)) == direct

    def test_cache_reuse_counted(self, index, small_family):
        tree = PrefixTree(index)
        tree.build((sid, small_family.get(sid)) for sid in small_family.sets())
        for sid in small_family.sets():
            tree.merged_counts(small_family.get(sid))
        assert tree.cache_hits > 0
        assert 0.0 < tree.reuse_ratio() <= 1.0

    def test_materialization_depth_limit(self, index, small_family):
        unlimited = PrefixTree(index)
        unlimited.build((sid, small_family.get(sid)) for sid in small_family.sets())
        limited = PrefixTree(index, max_materialize_depth=1)
        limited.build((sid, small_family.get(sid)) for sid in small_family.sets())
        for sid in small_family.sets():
            unlimited.merged_counts(small_family.get(sid))
            limited.merged_counts(small_family.get(sid))
        assert limited.materialized_nodes() <= unlimited.materialized_nodes()

    def test_results_identical_with_depth_limit(self, index, small_family):
        limited = PrefixTree(index, max_materialize_depth=1)
        limited.build((sid, small_family.get(sid)) for sid in small_family.sets())
        for sid in small_family.sets():
            assert limited.merged_counts(small_family.get(sid)) == index.merge_lists(
                small_family.get(sid)
            )

    def test_unseen_prefix_handled(self, index):
        tree = PrefixTree(index)
        # No sets inserted: the walk falls through to plain merging.
        assert tree.merged_counts([1, 2]) == index.merge_lists([1, 2])

    def test_num_nodes_grows_with_inserts(self, index, small_family):
        tree = PrefixTree(index)
        before = tree.num_nodes()
        tree.insert(0, small_family.get(0))
        assert tree.num_nodes() > before

    def test_terminal_sets_recorded(self, index, small_family):
        tree = PrefixTree(index)
        node = tree.insert(3, small_family.get(3))
        assert 3 in node.terminal_sets
