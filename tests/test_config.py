"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig


class TestMMJoinConfig:
    def test_defaults(self):
        config = MMJoinConfig()
        assert config.delta1 is None and config.delta2 is None
        assert config.use_optimizer
        assert config.cores == 1

    def test_with_thresholds(self):
        config = DEFAULT_CONFIG.with_thresholds(4, 9)
        assert (config.delta1, config.delta2) == (4, 9)
        # the original is unchanged (frozen dataclass semantics)
        assert DEFAULT_CONFIG.delta1 is None

    def test_with_cores(self):
        assert DEFAULT_CONFIG.with_cores(8).cores == 8

    def test_with_backend(self):
        assert DEFAULT_CONFIG.with_backend("sparse").matrix_backend == "sparse"

    def test_without_optimizer(self):
        assert DEFAULT_CONFIG.without_optimizer().use_optimizer is False

    @pytest.mark.parametrize("kwargs", [
        {"matrix_backend": "gpu"},
        {"dedup_strategy": "bogus"},
        {"optimizer_shrink": 0.0},
        {"optimizer_shrink": 1.0},
        {"full_join_factor": -1},
        {"cores": 0},
        {"delta1": 0},
        {"delta2": -3},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MMJoinConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.cores = 5  # type: ignore[misc]
