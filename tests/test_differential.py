"""Cross-engine differential harness.

Every registered query engine, every matmul backend, serial and parallel
execution, the session-cached vs. cold paths, and the sharded execution
layer (across shard counts and cold / warm / ``update_shard`` session
states) must produce *identical* pair sets (and witness counts where
applicable) on random queries drawn from the shared strategies.  The
combinatorial baseline is the oracle; the skewed / heavy-hitter generators
are the adversarial case for shard placement.

All properties run derandomized (a fixed hypothesis seed per test), so the
harness is deterministic in CI and a failure reproduces locally verbatim.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import (
    relation_lists,
    relation_pairs,
    relations,
    set_families,
    skewed_pair_lists,
)

from repro.data.relation import Relation

from repro.core.config import MMJoinConfig
from repro.faults import (
    SITE_BACKEND_MATMUL,
    SITE_EXTRACT_ALLOC,
    SITE_POOL_TASK,
    SITE_SHARD_SUBPLAN,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    inject,
)
from repro.core.two_path import two_path_join, two_path_join_counts
from repro.engines.registry import available_engines, make_engine
from repro.joins.baseline import combinatorial_star, combinatorial_two_path
from repro.joins.hash_join import hash_join_project_counts
from repro.matmul.registry import make_default_registry
from repro.plan.query import StarQuery, TwoPathQuery
from repro.serve import QuerySession, TelemetryConfig
from repro.setops.scj import scj_bruteforce
from repro.setops.ssj import ssj_bruteforce

ALL_ENGINES = available_engines()
ALL_BACKENDS = make_default_registry().names()
CORE_COUNTS = (1, 2)

# Shard-count axis: 1 exercises the single-shard fallback; 3 and 8 exercise
# hash + heavy-shard layouts.  CI can inject an extra count through
# REPRO_TEST_SHARDS (the shard-enabled matrix entry sets it to 3).
_ENV_SHARDS = int(os.environ.get("REPRO_TEST_SHARDS", "0") or "0")
SHARD_COUNTS = tuple(sorted({1, 3, 8} | ({_ENV_SHARDS} if _ENV_SHARDS > 1 else set())))

# Derandomized: the whole differential harness runs under fixed seeds.
DIFF_SETTINGS = dict(max_examples=6, deadline=None, derandomize=True)

# Chaos axis: seeded fault plans injected into the serving path must be
# invisible in the output (retries and pool recovery absorb them).  The
# default run exercises the two highest-value plans; REPRO_TEST_FAULTS=1
# (the fault-enabled CI matrix entry) turns the full grid on.
_ENV_FAULTS = int(os.environ.get("REPRO_TEST_FAULTS", "0") or "0")
_FAULT_RULESETS = {
    "worker-crash": (FaultRule(SITE_POOL_TASK, "crash", count=1),),
    "shard-error": (FaultRule(SITE_SHARD_SUBPLAN, "error", count=2),),
}
if _ENV_FAULTS:
    _FAULT_RULESETS.update({
        "alloc-failure": (FaultRule(SITE_EXTRACT_ALLOC, "alloc", count=1),),
        "backend-error": (FaultRule(SITE_BACKEND_MATMUL, "error", count=1),),
        "fault-storm": (
            FaultRule(SITE_POOL_TASK, "crash", count=2),
            FaultRule(SITE_SHARD_SUBPLAN, "error", count=1),
            FaultRule(SITE_BACKEND_MATMUL, "error", count=1),
        ),
    })
# Real retries with negligible real backoff.
_CHAOS_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=0.01,
                           max_delay_ms=0.05, jitter=0.0)


# --------------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------------- #
class TestEnginesAgree:
    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_two_path_identical_across_engines(self, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        for name in ALL_ENGINES:
            engine = make_engine(name)
            assert engine.two_path(left, right) == expected, name
            assert engine.two_path_block(left, right).to_set() == expected, name

    @settings(**DIFF_SETTINGS)
    @given(rels=relation_lists(max_size=50))
    def test_star_identical_across_engines(self, rels):
        expected = combinatorial_star(rels)
        for name in ALL_ENGINES:
            engine = make_engine(name)
            assert engine.star(rels) == expected, name
            assert engine.star_block(rels).to_set() == expected, name


# --------------------------------------------------------------------------- #
# MMJoin x backend x serial-vs-parallel
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cores", CORE_COUNTS)
@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBackendParallelGrid:
    def _config(self, backend: str, cores: int) -> MMJoinConfig:
        # delta1 = delta2 = 1 routes as much work as possible through the
        # chosen matrix backend.
        return MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend, cores=cores)

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_pairs_identical(self, backend, cores, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        config = self._config(backend, cores)
        assert two_path_join(left, right, config=config).pairs == expected
        engine = make_engine("mmjoin", config=config)
        assert engine.two_path(left, right) == expected

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_counts_identical(self, backend, cores, pair):
        left, right = pair
        expected = hash_join_project_counts(left, right)
        config = self._config(backend, cores)
        assert two_path_join_counts(left, right, config=config).counts == expected


# --------------------------------------------------------------------------- #
# Tiled-extraction axis: every tile size must be invisible in the output
# --------------------------------------------------------------------------- #
# 0 forces the one-shot full scan, 1 and 7 exercise tiny/odd bands, the huge
# value collapses to a single band covering the whole product.
TILE_AXIS = (0, 1, 7, 10**6)


@pytest.mark.parametrize("tile_rows", TILE_AXIS)
class TestTiledExtractionAgrees:
    def _config(self, tile_rows: int, **kwargs) -> MMJoinConfig:
        return MMJoinConfig(delta1=1, delta2=1, matrix_backend="dense",
                            extract_tile_rows=tile_rows, **kwargs)

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_pairs_and_counts_identical(self, tile_rows, pair):
        left, right = pair
        config = self._config(tile_rows)
        assert two_path_join(left, right, config=config).pairs == \
            combinatorial_two_path(left, right)
        assert two_path_join_counts(left, right, config=config).counts == \
            hash_join_project_counts(left, right)

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(rels=relation_lists(max_size=50))
    def test_star_identical(self, tile_rows, rels):
        engine = make_engine("mmjoin", config=self._config(tile_rows))
        assert engine.star(rels) == combinatorial_star(rels)

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(rows=skewed_pair_lists(max_size=100))
    def test_sharded_with_tiling(self, tile_rows, rows):
        skewed = Relation.from_pairs(rows, name="L")
        expected = combinatorial_two_path(skewed, skewed)
        with QuerySession(config=self._config(tile_rows), shards=3) as session:
            session.register(skewed, name="L", sharded=True)
            cold = session.two_path("L", "L", use_memo=False)
            warm = session.two_path("L", "L", use_memo=False)
        assert cold.pairs == expected
        assert warm.pairs == expected


# --------------------------------------------------------------------------- #
# Extract-mode axis: every extraction strategy must be invisible in the output
# --------------------------------------------------------------------------- #
# "full" pins the one-shot scan, "tiled" the screened scan with no bail-out,
# "adaptive" the bail-out scan, "core" the DIM3 degree-sorted mapping (which
# degrades to auto where no mapping applies, e.g. the star's grouped rows);
# "auto" lets the planner pick.
EXTRACT_MODE_AXIS = ("auto", "full", "tiled", "adaptive", "core")


@pytest.mark.parametrize("extract_mode", EXTRACT_MODE_AXIS)
class TestExtractModeAgrees:
    def _config(self, extract_mode: str, **kwargs) -> MMJoinConfig:
        kwargs.setdefault("matrix_backend", "dense")
        return MMJoinConfig(delta1=1, delta2=1, extract_mode=extract_mode,
                            **kwargs)

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_pairs_and_counts_identical(self, extract_mode, pair):
        left, right = pair
        config = self._config(extract_mode)
        assert two_path_join(left, right, config=config).pairs == \
            combinatorial_two_path(left, right)
        assert two_path_join_counts(left, right, config=config).counts == \
            hash_join_project_counts(left, right)

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(pair=relation_pairs(max_size=60))
    def test_modes_per_backend(self, extract_mode, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        for backend in ALL_BACKENDS:
            config = self._config(extract_mode, matrix_backend=backend)
            assert two_path_join(left, right, config=config).pairs == \
                expected, backend

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(rels=relation_lists(max_size=50))
    def test_star_identical(self, extract_mode, rels):
        engine = make_engine("mmjoin", config=self._config(extract_mode))
        assert engine.star(rels) == combinatorial_star(rels)

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(rows=skewed_pair_lists(max_size=100))
    def test_sharded_with_extract_mode(self, extract_mode, rows):
        skewed = Relation.from_pairs(rows, name="L")
        expected = combinatorial_two_path(skewed, skewed)
        with QuerySession(config=self._config(extract_mode), shards=3) as session:
            session.register(skewed, name="L", sharded=True)
            cold = session.two_path("L", "L", use_memo=False)
            warm = session.two_path("L", "L", use_memo=False)
        assert cold.pairs == expected
        assert warm.pairs == expected


# --------------------------------------------------------------------------- #
# Session-cached vs cold paths
# --------------------------------------------------------------------------- #
class TestSessionAgreesWithCold:
    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_memoized_and_warm_match_cold(self, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left, name="L")
            session.register(right, name="R")
            cold = session.two_path("L", "R")
            memo = session.two_path("L", "R")
            warm = session.two_path("L", "R", use_memo=False)
            warm2 = session.two_path("L", "R", use_memo=False)
        assert cold.pairs == expected
        assert memo.pairs == expected and memo.from_memo
        assert warm.pairs == expected and not warm.from_memo
        assert warm2.pairs == expected

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_counting_session_matches_cold(self, pair):
        left, right = pair
        expected = hash_join_project_counts(left, right)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left, name="L")
            session.register(right, name="R")
            cold = session.two_path("L", "R", counting=True)
            warm = session.two_path("L", "R", counting=True, use_memo=False)
        assert cold.counts == expected
        assert warm.counts == expected

    @settings(**DIFF_SETTINGS)
    @given(rels=relation_lists(max_size=50))
    def test_star_session_matches_cold(self, rels):
        expected = combinatorial_star(rels)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            names = [session.register(rel, name=f"R{i}") for i, rel in enumerate(rels)]
            cold = session.star(names)
            memo = session.star(names)
            warm = session.star(names, use_memo=False)
        assert cold.pairs == expected
        assert memo.pairs == expected and memo.from_memo
        assert warm.pairs == expected

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_batch_and_async_match_cold(self, pair):
        import asyncio

        left, right = pair
        expected_pairs = combinatorial_two_path(left, right)
        expected_counts = hash_join_project_counts(left, right)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            queries = [
                TwoPathQuery(left=left, right=right),
                TwoPathQuery(left=left, right=right, counting=True),
                StarQuery([left, right]),
            ]
            batch = session.submit_batch(queries)
            assert batch[0].pairs == expected_pairs
            assert batch[1].counts == expected_counts
            assert batch[2].pairs == combinatorial_star([left, right])
            async_result = asyncio.run(
                session.asubmit(TwoPathQuery(left=left, right=right))
            )
        assert async_result.pairs == expected_pairs

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(family=set_families(max_size=60))
    def test_ssj_scj_session_matches_bruteforce(self, family):
        expected_ssj = ssj_bruteforce(family, c=2)
        expected_scj = scj_bruteforce(family, family)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register_family(family, name="F")
            cold_ssj = session.similarity("F", c=2)
            warm_ssj = session.similarity("F", c=2)  # memo-served counting join
            cold_scj = session.containment("F")
        assert cold_ssj.pairs == expected_ssj.pairs
        assert cold_ssj.counts == expected_ssj.counts
        assert warm_ssj.pairs == expected_ssj.pairs
        assert cold_scj.pairs == expected_scj.pairs

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=60))
    def test_mutation_invalidates_and_recomputes(self, pair):
        left, right = pair
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2)) as session:
            session.register(left, name="L")
            session.register(right, name="R")
            assert session.two_path("L", "R").pairs == combinatorial_two_path(left, right)
            session.update("L", right)  # replace L's data with R's
            fresh = session.two_path("L", "R")
            assert not fresh.from_memo
            assert fresh.pairs == combinatorial_two_path(right, right)


# --------------------------------------------------------------------------- #
# Sharded vs unsharded: engines x backends x shard counts x session states
# --------------------------------------------------------------------------- #
def _sharded_session(left, right, shards, config=None):
    session = QuerySession(
        config=config or MMJoinConfig(delta1=2, delta2=2), shards=shards
    )
    session.register(left, name="L", sharded=True)
    session.register(right, name="R", sharded=True)
    return session


def _mutate_one_shard(session, name):
    """Halve the fullest shard's rows through update_shard; returns success."""
    container = session.sharded(name)
    sizes = container.sizes()
    target = int(np.argmax(sizes))
    if sizes[target] == 0:
        return False
    kept = container.shard(target).data[::2]
    session.update_shard(name, target, np.array(kept))
    return True


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestShardedAgreesWithUnsharded:
    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_two_path_cold_warm_memo(self, shards, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        with _sharded_session(left, right, shards) as session:
            cold = session.two_path("L", "R", use_memo=False)
            warm = session.two_path("L", "R", use_memo=False)
            session.two_path("L", "R")
            memo = session.two_path("L", "R")
        assert cold.pairs == expected
        assert warm.pairs == expected
        assert memo.pairs == expected and memo.from_memo

    @settings(**DIFF_SETTINGS)
    @given(rows=skewed_pair_lists(max_size=100))
    def test_heavy_hitter_two_path_across_engines(self, shards, rows):
        """The adversarial case for shard placement: hot witnesses."""
        skewed = Relation.from_pairs(rows, name="L")
        expected = combinatorial_two_path(skewed, skewed)
        with _sharded_session(skewed, skewed, shards) as session:
            sharded = session.two_path("L", "L", use_memo=False)
        assert sharded.pairs == expected
        for name in ALL_ENGINES:
            assert make_engine(name).two_path(skewed, skewed) == sharded.pairs, name

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(pair=relation_pairs(max_size=60))
    def test_counts_per_backend(self, shards, pair):
        left, right = pair
        expected = hash_join_project_counts(left, right)
        for backend in ALL_BACKENDS:
            config = MMJoinConfig(delta1=1, delta2=1, matrix_backend=backend)
            with _sharded_session(left, right, shards, config=config) as session:
                cold = session.two_path("L", "R", counting=True, use_memo=False)
                warm = session.two_path("L", "R", counting=True, use_memo=False)
            assert cold.counts == expected, backend
            assert warm.counts == expected, backend

    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_update_shard_matches_recompute(self, shards, pair):
        left, right = pair
        with _sharded_session(left, right, shards) as session:
            warm_before = session.two_path("L", "R", use_memo=False)
            assert warm_before.pairs == combinatorial_two_path(left, right)
            if not _mutate_one_shard(session, "L"):
                return  # empty input: nothing to mutate
            mutated = session.relation("L")
            after = session.two_path("L", "R", use_memo=False)
            counted = session.two_path("L", "R", counting=True, use_memo=False)
        expected = combinatorial_two_path(mutated, right)
        assert after.pairs == expected
        assert counted.counts == hash_join_project_counts(mutated, right)
        # a cold unsharded session over the mutated data agrees
        assert two_path_join(mutated, right,
                             config=MMJoinConfig(delta1=2, delta2=2)).pairs == expected

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(rels=relation_lists(max_size=50))
    def test_star_sharded(self, shards, rels):
        expected = combinatorial_star(rels)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          shards=shards) as session:
            names = [
                session.register(rel, name=f"R{i}", sharded=True)
                for i, rel in enumerate(rels)
            ]
            cold = session.star(names, use_memo=False)
            warm = session.star(names, use_memo=False)
        assert cold.pairs == expected
        assert warm.pairs == expected

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(family=set_families(max_size=60))
    def test_ssj_scj_sharded(self, shards, family):
        expected_ssj = ssj_bruteforce(family, c=2)
        expected_scj = scj_bruteforce(family, family)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          shards=shards) as session:
            session.register_family(family, name="F", sharded=True)
            ssj = session.similarity("F", c=2)
            scj = session.containment("F")
        assert ssj.pairs == expected_ssj.pairs
        assert ssj.counts == expected_ssj.counts
        assert scj.pairs == expected_scj.pairs

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(rel=relations(max_size=80))
    def test_parallel_fanout_agrees(self, shards, rel):
        expected = combinatorial_two_path(rel, rel)
        config = MMJoinConfig(delta1=2, delta2=2, cores=2)
        with QuerySession(config=config, shards=shards) as session:
            session.register(rel, name="L", sharded=True)
            result = session.two_path("L", "L", use_memo=False)
        assert result.pairs == expected


# --------------------------------------------------------------------------- #
# Telemetry axis: tracing/metrics must be invisible in the output
# --------------------------------------------------------------------------- #
# False pins the disabled fast path, True the default-threshold instrumented
# path, and the zero-threshold config additionally renders explain text and
# records every span tree in the slow log.
TELEMETRY_AXIS = (False, True, TelemetryConfig(slow_query_seconds=0.0))


@pytest.mark.parametrize("telemetry", TELEMETRY_AXIS,
                         ids=("off", "on", "record-all"))
class TestTelemetryAgrees:
    @settings(**DIFF_SETTINGS)
    @given(pair=relation_pairs(max_size=80))
    def test_session_paths_identical(self, telemetry, pair):
        left, right = pair
        expected = combinatorial_two_path(left, right)
        expected_counts = hash_join_project_counts(left, right)
        with QuerySession(config=MMJoinConfig(delta1=2, delta2=2),
                          telemetry=telemetry) as session:
            session.register(left, name="L")
            session.register(right, name="R")
            cold = session.two_path("L", "R", use_memo=False)
            warm = session.two_path("L", "R", use_memo=False)
            memo = session.two_path("L", "R")
            counted = session.two_path("L", "R", counting=True, use_memo=False)
        assert cold.pairs == expected
        assert warm.pairs == expected
        assert memo.pairs == expected
        assert counted.counts == expected_counts

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(rows=skewed_pair_lists(max_size=100))
    def test_sharded_with_writes_identical(self, telemetry, rows):
        skewed = Relation.from_pairs(rows, name="L")
        config = MMJoinConfig(delta1=2, delta2=2)
        with QuerySession(config=config, shards=3,
                          telemetry=telemetry) as session:
            session.register(skewed, name="L", sharded=True)
            session.two_path("L", "L", use_memo=False)
            session.append("L", [(97, 3), (98, 4)])
            served = session.two_path("L", "L", use_memo=False)
        oracle = _rel_from_rows(
            set(map(tuple, np.asarray(skewed.data).tolist())) | {(97, 3), (98, 4)},
            "L",
        )
        assert served.pairs == combinatorial_two_path(oracle, oracle)


# --------------------------------------------------------------------------- #
# Mixed writes: interleaved append / delete / update_shard vs recompute
# --------------------------------------------------------------------------- #
def _rel_from_rows(rows, name):
    if rows:
        data = np.array(sorted(rows), dtype=np.int64).reshape(-1, 2)
    else:
        data = np.empty((0, 2), dtype=np.int64)
    return Relation(data, name=name)


@pytest.mark.parametrize("shards", (1, 3))
@pytest.mark.parametrize("warm", (False, True), ids=("cold", "warm"))
class TestMixedWritesMatchOracle:
    """Streaming writes against a maintained-row-set recompute oracle.

    Every step applies one write (append with fresh rows, idempotent delete
    including absent rows, or an ``update_shard`` replacement) to the
    session *and* to a plain Python row set; the sharded session must agree
    with a cold recompute over the oracle rows after each write (warm axis:
    reads interleave with writes, so the merged-result patch and the cached
    fallbacks are both exercised) or after the full sequence (cold axis).
    A tiny lazy-merge threshold makes the sequence cross buffered *and*
    folded write states.
    """

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(pair=relation_pairs(max_size=60))
    def test_interleaved_writes_match_recompute(self, shards, warm, pair):
        left, right = pair
        with _sharded_session(left, right, shards) as session:
            session.lazy_merge_rows = 4  # cross the buffered/folded boundary
            if warm:
                session.two_path("L", "R", use_memo=False)
            rows = set(map(tuple, np.asarray(left.data).tolist()))
            rng = np.random.default_rng(1 + len(rows))
            plan = ("append", "delete", "append", "update_shard", "delete")
            for step, op in enumerate(plan):
                if op == "append":
                    fresh = [(int(rng.integers(0, 70)), int(rng.integers(0, 50)))
                             for _ in range(int(rng.integers(1, 7)))]
                    session.append("L", fresh)
                    rows |= set(fresh)
                elif op == "delete":
                    doomed = sorted(rows)[::3][:4]
                    doomed.append((10**6, 10**6))  # absent row: no-op delete
                    session.delete("L", doomed)
                    rows -= set(doomed)
                else:
                    container = session.sharded("L")
                    sizes = container.sizes()
                    target = int(np.argmax(sizes))
                    if sizes[target] == 0:
                        continue
                    shard_rows = set(map(tuple,
                                         container.shard(target).data.tolist()))
                    kept = np.array(container.shard(target).data[::2])
                    session.update_shard("L", target, kept)
                    rows = (rows - shard_rows) | set(map(tuple, kept.tolist()))
                if warm:
                    oracle = _rel_from_rows(rows, "L")
                    served = session.two_path("L", "R", use_memo=False)
                    assert served.pairs == combinatorial_two_path(oracle, right), \
                        (op, step)
            oracle = _rel_from_rows(rows, "L")
            final = session.two_path("L", "R", use_memo=False)
            counted = session.two_path("L", "R", counting=True, use_memo=False)
        assert final.pairs == combinatorial_two_path(oracle, right)
        assert counted.counts == hash_join_project_counts(oracle, right)


# --------------------------------------------------------------------------- #
# Chaos axis: injected faults must be invisible in the output
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("ruleset", sorted(_FAULT_RULESETS))
class TestChaosAgreesWithOracle:
    """Seeded fault injection against the fault-free combinatorial oracle.

    Each plan is constructed per example (counts re-arm), injected for the
    serve only, and the served pair set must equal the oracle exactly —
    recovery is correct only if it is invisible.  The retry policy uses
    microsecond backoffs so the chaos grid stays fast.
    """

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(rows=skewed_pair_lists(max_size=100))
    def test_sharded_query_survives_faults(self, ruleset, rows):
        skewed = Relation.from_pairs(rows, name="L")
        expected = combinatorial_two_path(skewed, skewed)
        plan = FaultPlan(_FAULT_RULESETS[ruleset], seed=11)
        config = MMJoinConfig(delta1=2, delta2=2, cores=2)
        with QuerySession(config=config, shards=3,
                          retry_policy=_CHAOS_RETRY) as session:
            session.register(skewed, name="L", sharded=True)
            with inject(plan):
                served = session.two_path("L", "L", use_memo=False)
            rerun = session.two_path("L", "L", use_memo=False)
        assert served.pairs == expected
        assert rerun.pairs == expected  # session healthy after the faults

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(rows=skewed_pair_lists(max_size=80))
    def test_faulted_write_read_cycle_matches(self, ruleset, rows):
        skewed = Relation.from_pairs(rows, name="L")
        config = MMJoinConfig(delta1=2, delta2=2, cores=2)
        with QuerySession(config=config, shards=3,
                          retry_policy=_CHAOS_RETRY) as session:
            session.register(skewed, name="L", sharded=True)
            session.two_path("L", "L", use_memo=False)  # warm caches
            plan = FaultPlan(_FAULT_RULESETS[ruleset], seed=3)
            with inject(plan):
                session.append("L", [(91, 5), (92, 6)])
                served = session.two_path("L", "L", use_memo=False)
        oracle = _rel_from_rows(
            set(map(tuple, np.asarray(skewed.data).tolist()))
            | {(91, 5), (92, 6)},
            "L",
        )
        assert served.pairs == combinatorial_two_path(oracle, oracle)
