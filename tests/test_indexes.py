"""Unit tests for repro.data.indexes (the optimizer's degree indexes)."""

import numpy as np
import pytest

from repro.data.indexes import DegreeIndex, DegreeStatistics, build_statistics
from repro.data.relation import Relation


class TestDegreeIndex:
    def test_count_at_most(self):
        idx = DegreeIndex(np.array([1, 2, 2, 5, 9]))
        assert idx.count_at_most(0) == 0
        assert idx.count_at_most(2) == 3
        assert idx.count_at_most(100) == 5

    def test_count_above_complements_count_at_most(self):
        idx = DegreeIndex(np.array([1, 3, 3, 7]))
        for delta in (0, 1, 3, 6, 7, 10):
            assert idx.count_at_most(delta) + idx.count_above(delta) == 4

    def test_sum_at_most_default_weights(self):
        idx = DegreeIndex(np.array([1, 2, 4]))
        assert idx.sum_at_most(2) == pytest.approx(3.0)
        assert idx.sum_at_most(10) == pytest.approx(7.0)

    def test_sum_above(self):
        idx = DegreeIndex(np.array([1, 2, 4]))
        assert idx.sum_above(1) == pytest.approx(6.0)

    def test_custom_weights(self):
        idx = DegreeIndex(np.array([2, 3]), weights=np.array([10.0, 20.0]))
        assert idx.sum_at_most(2) == pytest.approx(10.0)
        assert idx.total() == pytest.approx(30.0)

    def test_from_degree_map(self):
        idx = DegreeIndex.from_degree_map({10: 3, 20: 1, 30: 5})
        assert idx.num_values() == 3
        assert idx.max_degree() == 5

    def test_from_degree_map_with_weights(self):
        idx = DegreeIndex.from_degree_map({1: 2, 2: 4}, weights={1: 4.0, 2: 16.0})
        assert idx.sum_at_most(2) == pytest.approx(4.0)
        assert idx.sum_at_most(4) == pytest.approx(20.0)

    def test_quantile_degree(self):
        idx = DegreeIndex(np.array([1, 2, 3, 4, 100]))
        assert idx.quantile_degree(0.0) == 1
        assert idx.quantile_degree(1.0) == 100
        assert idx.quantile_degree(0.5) == 3

    def test_empty_index(self):
        idx = DegreeIndex(np.array([], dtype=np.int64))
        assert idx.count_at_most(5) == 0
        assert idx.max_degree() == 0
        assert idx.quantile_degree(0.5) == 0


class TestDegreeStatistics:
    @pytest.fixture
    def stats(self, tiny_relation):
        return DegreeStatistics.from_relation(tiny_relation)

    def test_counts_match_relation(self, stats, tiny_relation):
        assert stats.num_tuples == len(tiny_relation)
        assert stats.domain_x == tiny_relation.x_values().size
        assert stats.domain_y == tiny_relation.y_values().size

    def test_light_heavy_partition_of_x(self, stats, tiny_relation):
        max_deg = max(tiny_relation.degrees_x().values())
        for delta in range(0, max_deg + 1):
            assert stats.light_x_count(delta) + stats.heavy_x_count(delta) == stats.x_index.num_values()

    def test_light_heavy_partition_of_y(self, stats):
        total = stats.y_index.num_values()
        for delta in (0, 1, 2, 3, 10):
            assert stats.light_y_count(delta) + stats.heavy_y_count(delta) == total

    def test_sum_x_counts_light_tuples(self, stats, tiny_relation):
        """sum(x_delta) over all degrees equals the tuple count."""
        max_deg = max(tiny_relation.degrees_x().values())
        assert stats.sum_x(max_deg) == pytest.approx(len(tiny_relation))

    def test_sum_y_is_sum_of_squares(self, stats, tiny_relation):
        expected = sum(d * d for d in tiny_relation.degrees_y().values())
        max_deg = max(tiny_relation.degrees_y().values())
        assert stats.sum_y(max_deg) == pytest.approx(expected)

    def test_cdfx_counts_tuples_by_y_degree(self, stats, tiny_relation):
        max_deg = max(tiny_relation.degrees_y().values())
        assert stats.cdfx_y(max_deg) == pytest.approx(len(tiny_relation))
        assert stats.cdfx_y(0) == pytest.approx(0.0)

    def test_cdfx_monotone(self, stats):
        values = [stats.cdfx_y(d) for d in range(0, 6)]
        assert values == sorted(values)

    def test_heavy_dimensions(self, stats):
        u, v = stats.heavy_dimensions(1, 1)
        assert u == stats.heavy_x_count(1)
        assert v == stats.heavy_y_count(1)

    def test_build_statistics_helper(self, tiny_relation, tiny_relation_s):
        stats = build_statistics({"R": tiny_relation, "S": tiny_relation_s})
        assert set(stats) == {"R", "S"}
        assert stats["R"].num_tuples == len(tiny_relation)
