"""Tests for the compressed (factorized) join view."""

import pytest

from repro.core.compressed import CompressedJoinView, build_compressed_view
from repro.core.config import MMJoinConfig
from repro.data import generators
from repro.data.relation import Relation
from repro.joins.hash_join import hash_join_project, hash_join_project_counts


@pytest.fixture
def dense_pair():
    rel = generators.community_bipartite(
        num_sets=80, domain_size=70, num_communities=3, density=0.6, seed=3, name="G"
    )
    return rel, rel


class TestConstruction:
    def test_enumeration_matches_join_project(self, dense_pair):
        left, right = dense_pair
        view = build_compressed_view(left, right, config=MMJoinConfig(delta1=3, delta2=3))
        assert set(view.enumerate()) == hash_join_project(left, right)

    def test_enumeration_with_optimizer(self, dense_pair):
        left, right = dense_pair
        view = build_compressed_view(left, right)
        assert set(view.enumerate()) == hash_join_project(left, right)

    def test_sparse_input_all_light(self):
        rel = generators.roadnet_graph(300, seed=2)
        view = build_compressed_view(rel, rel)
        assert view.left_matrix.size == 0
        assert set(view.enumerate()) == hash_join_project(rel, rel)

    def test_empty_input(self, dense_pair):
        left, _ = dense_pair
        view = build_compressed_view(left, Relation.empty())
        assert len(view) == 0
        assert view.stored_cells() == 0

    def test_len_matches_materialized_size(self, dense_pair):
        left, right = dense_pair
        view = build_compressed_view(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        assert len(view) == len(hash_join_project(left, right))


class TestQueries:
    @pytest.fixture
    def view(self, dense_pair):
        left, right = dense_pair
        return build_compressed_view(left, right, config=MMJoinConfig(delta1=3, delta2=3))

    def test_contains_agrees_with_materialisation(self, view, dense_pair):
        left, right = dense_pair
        expected = hash_join_project(left, right)
        sample = list(expected)[:200]
        for pair in sample:
            assert pair in view
        assert (10**6, 10**6) not in view

    def test_neighbors(self, view, dense_pair):
        left, right = dense_pair
        expected = hash_join_project(left, right)
        for x in list(left.x_values())[:30]:
            assert view.neighbors(int(x)) == {b for a, b in expected if a == int(x)}

    def test_witness_count_heavy_pairs(self, view, dense_pair):
        left, right = dense_pair
        counts = hash_join_project_counts(left, right)
        for pair in list(view.heavy_pairs())[:100]:
            # heavy witnesses are a subset of all witnesses
            assert view.witness_count(*pair) <= counts[pair]
            assert view.witness_count(*pair) >= 1

    def test_witness_count_unknown_values(self, view):
        assert view.witness_count(10**6, 0) == 0


class TestCompression:
    def test_compression_pays_off_on_hub_instance(self):
        """On a hub-dominated instance (many sets sharing a few popular
        elements) the factorized form stores far fewer cells than the
        materialised output: |X|*|Y| + |Y|*|Z| cells vs up to |X|*|Z| pairs."""
        hubs = list(range(5))
        pairs = [(x, y) for x in range(200) for y in hubs]
        graph = Relation.from_pairs(pairs, name="hub")
        view = build_compressed_view(graph, graph, config=MMJoinConfig(delta1=2, delta2=2))
        heavy = view.heavy_pairs()
        matrix_cells = view.left_matrix.size + view.right_matrix.size
        assert len(heavy) == 200 * 200
        assert matrix_cells < len(heavy) / 10
        assert view.compression_ratio() > 10

    def test_stored_cells_accounting(self, dense_pair):
        left, right = dense_pair
        view = build_compressed_view(left, right, config=MMJoinConfig(delta1=3, delta2=3))
        assert view.stored_cells() == (
            len(view.light_pairs) + view.left_matrix.size + view.right_matrix.size
        )
        assert view.compression_ratio() > 0
