"""Tests for boolean set intersection batching (Section 3.3)."""

import pytest

from repro.core.bsi import (
    BooleanSetIntersection,
    BSIBatchScheduler,
    machines_needed,
    optimal_batch_size,
    theoretical_latency,
)
from repro.data import generators


@pytest.fixture
def bsi_relations():
    left = generators.zipf_bipartite(1500, 150, 100, skew=1.0, seed=41, name="R")
    right = generators.zipf_bipartite(1500, 150, 100, skew=1.0, seed=42, name="S")
    return left, right


@pytest.fixture
def engine(bsi_relations):
    left, right = bsi_relations
    return BooleanSetIntersection(left, right)


class TestSingleQueries:
    def test_query_against_bruteforce(self, engine, bsi_relations):
        left, right = bsi_relations
        for a in list(left.x_values())[:20]:
            for b in list(right.x_values())[:20]:
                expected = bool(
                    set(left.neighbors_x(int(a)).tolist())
                    & set(right.neighbors_x(int(b)).tolist())
                )
                assert engine.query(int(a), int(b)) == expected

    def test_query_unknown_set(self, engine):
        assert engine.query(10**9, 0) is False

    def test_query_intersection_contents(self, engine, bsi_relations):
        left, right = bsi_relations
        a = int(left.x_values()[0])
        b = int(right.x_values()[0])
        expected = sorted(
            set(left.neighbors_x(a).tolist()) & set(right.neighbors_x(b).tolist())
        )
        assert engine.query_intersection(a, b).tolist() == expected


class TestBatches:
    @pytest.mark.parametrize("use_mmjoin", [True, False])
    def test_batch_matches_single_queries(self, engine, use_mmjoin):
        batch = [(a, b) for a in range(0, 30, 3) for b in range(0, 30, 5)]
        outcome = engine.answer_batch(batch, use_mmjoin=use_mmjoin)
        assert set(outcome.answers) == set(batch)
        for (a, b), answer in outcome.answers.items():
            assert answer == engine.query(a, b)

    def test_both_methods_agree(self, engine):
        batch = [(a, b) for a in range(0, 40, 2) for b in range(1, 40, 7)]
        mm = engine.answer_batch(batch, use_mmjoin=True)
        comb = engine.answer_batch(batch, use_mmjoin=False)
        assert mm.answers == comb.answers

    def test_empty_batch(self, engine):
        outcome = engine.answer_batch([])
        assert outcome.answers == {}
        assert outcome.batch_size == 0

    def test_positive_pairs_subset_of_batch(self, engine):
        batch = [(0, 0), (1, 1), (2, 2)]
        outcome = engine.answer_batch(batch)
        assert outcome.positive_pairs() <= set(batch)


class TestScheduler:
    def test_workload_generation_deterministic(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=500)
        assert sched.generate_workload(100, seed=5) == sched.generate_workload(100, seed=5)

    def test_workload_uses_valid_ids(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=500)
        xs = set(left.x_values().tolist())
        zs = set(right.x_values().tolist())
        for a, b in sched.generate_workload(50, seed=1):
            assert a in xs and b in zs

    def test_run_reports_metrics(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=1000)
        workload = sched.generate_workload(120, seed=2)
        result = sched.run(workload, batch_size=40)
        assert result.num_queries == 120
        assert result.average_delay > 0
        assert result.processing_units >= 1
        assert len(result.per_batch_seconds) == 3

    def test_larger_batches_wait_longer_to_fill(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=1000)
        workload = sched.generate_workload(200, seed=3)
        small = sched.run(workload, batch_size=10)
        large = sched.run(workload, batch_size=200)
        # The fill-wait component alone is C/2B; for large C it must dominate.
        assert large.average_delay >= large.batch_size / (2 * 1000.0)
        assert small.batch_size / (2 * 1000.0) < large.batch_size / (2 * 1000.0)

    def test_sweep(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=1000)
        workload = sched.generate_workload(100, seed=4)
        results = sched.sweep_batch_sizes(workload, [20, 50, 100])
        assert [r.batch_size for r in results] == [20, 50, 100]

    def test_invalid_parameters(self, bsi_relations):
        left, right = bsi_relations
        with pytest.raises(ValueError):
            BSIBatchScheduler(left, right, arrival_rate=0)
        sched = BSIBatchScheduler(left, right, arrival_rate=10)
        with pytest.raises(ValueError):
            sched.run([(0, 0)], batch_size=0)

    def test_empty_workload(self, bsi_relations):
        left, right = bsi_relations
        sched = BSIBatchScheduler(left, right, arrival_rate=10)
        result = sched.run([], batch_size=10)
        assert result.num_queries == 0 and result.average_delay == 0.0


class TestTheory:
    def test_proposition2_improves_on_naive_machines(self):
        n, rate = 1e6, 1000.0
        assert machines_needed(n, rate) < rate * n

    def test_optimal_batch_size_positive(self):
        assert optimal_batch_size(10**6, 1000) > 0

    def test_theoretical_latency_decreases_then_increases(self):
        n, rate = 1e6, 1000.0
        latencies = [theoretical_latency(n, rate, c) for c in (10, 1000, optimal_batch_size(n, rate), 10**7)]
        optimum = theoretical_latency(n, rate, optimal_batch_size(n, rate))
        assert optimum <= min(latencies[0], latencies[-1])
