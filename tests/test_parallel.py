"""Tests for the parallel executor and the deterministic work model."""

import numpy as np
import pytest

from repro.joins.hash_join import hash_join_project
from repro.parallel.executor import ParallelExecutor, parallel_matmul, parallel_two_path
from repro.parallel.workmodel import (
    ALGORITHM_PARALLEL_FRACTIONS,
    ParallelWorkModel,
    amdahl_speedup,
    model_for,
)


class TestParallelExecutor:
    def test_map_matches_serial(self):
        items = list(range(50))
        serial = [x * x for x in items]
        assert ParallelExecutor(cores=1).map(lambda x: x * x, items) == serial
        assert ParallelExecutor(cores=4).map(lambda x: x * x, items) == serial

    def test_chunks_cover_items(self):
        executor = ParallelExecutor(cores=3)
        items = list(range(10))
        chunks = executor.chunks(items)
        assert [x for chunk in chunks for x in chunk] == items

    def test_chunks_empty(self):
        assert ParallelExecutor(cores=3).chunks([]) == []

    def test_chunk_ranges_cover_range(self):
        executor = ParallelExecutor(cores=4)
        ranges = executor.chunk_ranges(13)
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(13))

    def test_cores_clamped(self):
        assert ParallelExecutor(cores=0).cores == 1


class TestParallelMatmul:
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_matches_numpy(self, cores):
        rng = np.random.default_rng(5)
        a = rng.random((37, 19)).astype(np.float32)
        b = rng.random((19, 23)).astype(np.float32)
        assert np.allclose(parallel_matmul(a, b, cores=cores), a @ b, atol=1e-4)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            parallel_matmul(np.ones((2, 3)), np.ones((2, 3)), cores=2)


class TestParallelTwoPath:
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_matches_baseline(self, skewed_pair, cores):
        left, right = skewed_pair
        expected = hash_join_project(left, right)
        result = parallel_two_path(left, right, delta1=3, delta2=3, cores=cores)
        assert result.pairs == expected
        assert result.cores == cores

    def test_phase_timings_reported(self, skewed_pair):
        left, right = skewed_pair
        result = parallel_two_path(left, right, delta1=2, delta2=2, cores=2)
        assert result.light_seconds >= 0
        assert result.matrix_seconds >= 0
        assert result.seconds >= result.light_seconds


class TestWorkModel:
    def test_amdahl_speedup_bounds(self):
        assert amdahl_speedup(1, 0.9) == pytest.approx(1.0)
        assert amdahl_speedup(8, 0.0) == pytest.approx(1.0)
        # fully parallel with perfect efficiency is linear
        assert amdahl_speedup(8, 1.0, efficiency=1.0) == pytest.approx(8.0)

    def test_speedup_monotone_in_cores(self):
        speedups = [amdahl_speedup(c, 0.9) for c in range(1, 10)]
        assert speedups == sorted(speedups)

    def test_speedup_monotone_in_fraction(self):
        assert amdahl_speedup(8, 0.95) > amdahl_speedup(8, 0.5)

    def test_series_decreasing(self):
        model = ParallelWorkModel(parallel_fraction=0.9)
        series = model.series(10.0, range(1, 9))
        times = [t for _, t in series]
        assert times == sorted(times, reverse=True)
        assert times[0] == pytest.approx(10.0)

    def test_model_for_known_algorithms(self):
        assert model_for("mmjoin").parallel_fraction == ALGORITHM_PARALLEL_FRACTIONS["mmjoin"]
        assert model_for("unknown-algo").parallel_fraction == pytest.approx(0.8)

    def test_mmjoin_scales_better_than_sizeaware(self):
        """The paper's qualitative claim: MMJoin parallelises better than SizeAware."""
        base = 100.0
        mmjoin_8 = model_for("mmjoin").time_at(base, 8)
        sizeaware_8 = model_for("sizeaware").time_at(base, 8)
        assert mmjoin_8 < sizeaware_8
