"""Tests for the logical-plan layer: queries, planner, operators, explain()."""

import pytest

from repro.bench.runner import time_call
from repro.core.config import MMJoinConfig
from repro.core.two_path import two_path_join, two_path_join_detailed
from repro.data.setfamily import SetFamily
from repro.engines.registry import make_engine
from repro.joins.baseline import combinatorial_star
from repro.joins.hash_join import hash_join_project, hash_join_project_counts
from repro.plan.planner import Planner
from repro.plan.query import (
    ContainmentJoinQuery,
    SimilarityJoinQuery,
    StarQuery,
    TwoPathQuery,
)

OPERATOR_NAMES = [
    "semijoin_reduce",
    "light_heavy_partition",
    "combinatorial_light",
    "matmul_heavy",
    "dedup_merge",
]


class TestPlanStructure:
    def test_pipeline_has_five_operators(self, skewed_pair):
        left, right = skewed_pair
        plan = Planner().create_plan(TwoPathQuery(left=left, right=right))
        assert [op.name for op in plan.operators] == OPERATOR_NAMES
        assert not plan.executed

    def test_unknown_query_type_rejected(self):
        with pytest.raises(TypeError):
            Planner().create_plan(object())  # type: ignore[arg-type]

    def test_similarity_query_lowers_to_counting_two_path(self, small_family):
        query = SimilarityJoinQuery(family=small_family, overlap=2)
        lowered = query.lower()
        assert isinstance(lowered, TwoPathQuery)
        assert lowered.with_counts
        plan = Planner().create_plan(query)
        assert plan.query.kind == "similarity"
        assert plan.mode == "counts"

    def test_containment_query_lowers_to_counting_two_path(self, small_family):
        plan = Planner().create_plan(ContainmentJoinQuery(family=small_family))
        assert plan.query.kind == "containment"
        assert plan.mode == "counts"


class TestPlanExecution:
    def test_two_path_matches_baseline(self, skewed_pair):
        left, right = skewed_pair
        plan = Planner().execute(TwoPathQuery(left=left, right=right))
        assert plan.state.pairs == hash_join_project(left, right)

    def test_counting_matches_baseline(self, skewed_pair):
        left, right = skewed_pair
        plan = Planner().execute(TwoPathQuery(left=left, right=right, counting=True))
        assert plan.state.counts == hash_join_project_counts(left, right)

    def test_star_matches_baseline(self, tiny_relation, tiny_relation_s):
        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        config = MMJoinConfig(delta1=2, delta2=2)
        plan = Planner(config=config).execute(StarQuery(relations))
        assert plan.state.pairs == combinatorial_star(relations)

    def test_forced_mmjoin_runs_every_operator(self, skewed_pair):
        left, right = skewed_pair
        config = MMJoinConfig(delta1=2, delta2=2)
        plan = Planner(config=config).execute(TwoPathQuery(left=left, right=right))
        statuses = {op.name: op.status for op in plan.operators}
        assert all(status == "ran" for status in statuses.values()), statuses

    def test_wcoj_skips_matmul_heavy(self, skewed_pair):
        left, right = skewed_pair
        config = MMJoinConfig(use_optimizer=False)
        plan = Planner(config=config).execute(TwoPathQuery(left=left, right=right))
        statuses = {op.name: op.status for op in plan.operators}
        assert statuses["matmul_heavy"] == "skipped"
        assert statuses["combinatorial_light"] == "ran"
        assert plan.state.strategy == "wcoj"


class TestExplain:
    def test_explain_names_every_executed_operator(self, skewed_pair):
        """Acceptance: explain() names every physical operator executed with
        its backend choice and per-operator wall-clock time."""
        left, right = skewed_pair
        config = MMJoinConfig(delta1=2, delta2=2)
        plan = Planner(config=config).execute(TwoPathQuery(left=left, right=right))
        explanation = plan.explain()
        assert explanation.operator_names() == OPERATOR_NAMES
        matmul = [op for op in explanation.operators if op.operator == "matmul_heavy"][0]
        assert matmul.backend in ("dense", "sparse", "blocked", "strassen")
        for report in explanation.operators:
            assert report.actual_seconds >= 0.0
        text = explanation.format()
        for name in OPERATOR_NAMES:
            assert name in text
        assert matmul.backend in text

    def test_explain_reports_estimated_vs_actual(self, skewed_pair):
        left, right = skewed_pair
        plan = Planner().execute(TwoPathQuery(left=left, right=right))
        explanation = plan.explain()
        decision = plan.state.decision
        assert decision is not None
        assert explanation.estimated_total_cost == decision.estimated_cost
        by_name = {op.operator: op for op in explanation.operators}
        if plan.state.strategy == "mmjoin":
            assert by_name["combinatorial_light"].estimated_cost == decision.light_cost
            assert by_name["matmul_heavy"].estimated_cost == decision.heavy_cost

    def test_result_explain_facility(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        text = result.explain()
        assert "matmul_heavy" in text and "strategy" in text
        assert result.explanation is not None
        assert result.explanation.query_kind == "two_path"

    def test_star_explain(self, tiny_relation, tiny_relation_s):
        from repro.core.star import star_join_detailed

        result = star_join_detailed(
            [tiny_relation, tiny_relation_s, tiny_relation],
            config=MMJoinConfig(delta1=2, delta2=2),
        )
        assert "semijoin_reduce" in result.explain()
        assert result.explanation.query_kind == "star"


class TestDetailsPlumbing:
    def test_engine_result_carries_plan_details(self, skewed_pair):
        left, right = skewed_pair
        engine = make_engine("mmjoin")
        result = engine.run_two_path(left, right)
        assert result.details["strategy"] in ("wcoj", "mmjoin")
        assert "backend" in result.details
        operators = result.details["operators"]
        assert [op["operator"] for op in operators] == OPERATOR_NAMES
        assert "op.matmul_heavy.seconds" in result.details

    def test_non_planner_engine_details_empty(self, tiny_relation, tiny_relation_s):
        engine = make_engine("postgres")
        result = engine.run_two_path(tiny_relation, tiny_relation_s)
        assert result.details == {}

    def test_bench_measurement_carries_details(self, skewed_pair):
        left, right = skewed_pair
        measurement = time_call(two_path_join_detailed, left, right, repeats=1)
        assert measurement.details["strategy"] in ("wcoj", "mmjoin")
        assert any(op["operator"] == "matmul_heavy" for op in measurement.details["operators"])


class TestLegacyTimings:
    def test_timings_keys_preserved(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        for key in ("partition", "light", "matrix_build", "matrix_multiply", "total"):
            assert key in result.timings, key

    def test_operator_timings_added(self, skewed_pair):
        left, right = skewed_pair
        result = two_path_join(left, right, config=MMJoinConfig(delta1=2, delta2=2))
        for name in OPERATOR_NAMES:
            assert name in result.timings, name
