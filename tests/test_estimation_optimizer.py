"""Tests for output-size estimation and the cost-based optimizer."""

import pytest

from repro.core.config import MMJoinConfig
from repro.core.estimation import (
    estimate_output_size,
    estimate_star_output_size,
    exact_full_join_size,
)
from repro.core.optimizer import (
    STAR_SEARCH_CAP,
    CostBasedOptimizer,
    CostConstants,
    OptimizerDecision,
    _power_of_two_grid,
)
from repro.data import generators
from repro.data.relation import Relation
from repro.joins.hash_join import hash_join_count, hash_join_project


class TestEstimation:
    def test_exact_full_join_size(self, tiny_relation, tiny_relation_s):
        assert exact_full_join_size(tiny_relation, tiny_relation_s) == hash_join_count(
            tiny_relation, tiny_relation_s
        )

    def test_bounds_contain_true_output(self, skewed_pair):
        left, right = skewed_pair
        est = estimate_output_size(left, right)
        truth = len(hash_join_project(left, right))
        assert est.lower_bound <= truth <= est.upper_bound

    def test_estimate_within_bounds(self, skewed_pair):
        left, right = skewed_pair
        est = estimate_output_size(left, right)
        assert est.lower_bound <= est.estimate <= est.upper_bound

    def test_estimate_with_precomputed_join_size(self, tiny_relation, tiny_relation_s):
        join_size = exact_full_join_size(tiny_relation, tiny_relation_s)
        est = estimate_output_size(tiny_relation, tiny_relation_s, full_join_size=join_size)
        assert est.full_join_size == join_size

    def test_clamp(self, tiny_relation, tiny_relation_s):
        est = estimate_output_size(tiny_relation, tiny_relation_s)
        assert est.clamp(-5) == est.lower_bound
        assert est.clamp(est.upper_bound * 10) == est.upper_bound

    def test_community_instance_output_much_smaller_than_join(self, community_relation):
        est = estimate_output_size(community_relation, community_relation)
        assert est.upper_bound <= est.full_join_size
        assert est.full_join_size > 5 * len(community_relation)

    def test_star_estimate_bounds(self, tiny_relation, tiny_relation_s):
        from repro.joins.baseline import combinatorial_star

        relations = [tiny_relation, tiny_relation_s, tiny_relation]
        est = estimate_star_output_size(relations)
        truth = len(combinatorial_star(relations))
        assert est.lower_bound <= truth <= max(est.upper_bound, est.lower_bound)

    def test_star_estimate_empty(self):
        est = estimate_star_output_size([])
        assert est.estimate == 0.0


class TestOptimizer:
    def test_small_join_picks_wcoj(self):
        rel = generators.roadnet_graph(400, seed=1)
        decision = CostBasedOptimizer().choose_two_path(rel, rel)
        assert decision.strategy == "wcoj"

    def test_dense_join_picks_mmjoin(self, community_relation):
        decision = CostBasedOptimizer().choose_two_path(community_relation, community_relation)
        assert decision.strategy == "mmjoin"
        assert decision.delta1 >= 1 and decision.delta2 >= 1

    def test_full_join_factor_respected(self, community_relation):
        config = MMJoinConfig(full_join_factor=1e12)
        decision = CostBasedOptimizer(config=config).choose_two_path(
            community_relation, community_relation
        )
        assert decision.strategy == "wcoj"

    def test_decision_fields_populated(self, community_relation):
        decision = CostBasedOptimizer().choose_two_path(community_relation, community_relation)
        assert decision.full_join_size > 0
        assert decision.estimated_output > 0
        assert decision.estimated_cost > 0
        assert decision.search_steps > 0

    def test_search_terminates(self, skewed_pair):
        left, right = skewed_pair
        decision = CostBasedOptimizer().choose_two_path(left, right)
        assert decision.search_steps < 200

    def test_cost_constants_influence_decision(self, community_relation):
        cheap_mm = CostBasedOptimizer(
            constants=CostConstants(random_insert=1.0)  # make light work absurdly expensive
        )
        decision = cheap_mm.choose_two_path(community_relation, community_relation)
        assert decision.strategy == "mmjoin"

    def test_star_decision_small_input(self, tiny_relation, tiny_relation_s):
        decision = CostBasedOptimizer().choose_star([tiny_relation, tiny_relation_s])
        assert decision.strategy in ("wcoj", "mmjoin")

    def test_star_decision_dense_input(self, community_relation):
        relations = [community_relation, community_relation, community_relation]
        decision = CostBasedOptimizer().choose_star(relations)
        assert decision.strategy == "mmjoin"
        assert decision.delta1 >= 1 and decision.delta2 >= 1

    def test_star_single_relation_is_wcoj(self, tiny_relation):
        decision = CostBasedOptimizer().choose_star([tiny_relation])
        assert decision.strategy == "wcoj"

    def test_thresholds_bounded_by_max_degree(self, skewed_pair):
        left, right = skewed_pair
        decision = CostBasedOptimizer().choose_two_path(left, right)
        if decision.strategy == "mmjoin":
            max_deg = max(
                max(left.degrees_y().values()), max(right.degrees_y().values())
            )
            assert decision.delta1 <= max_deg + 1


class TestStarSearch:
    """The choose_star grid search deduplicates pairs and caps its steps."""

    def test_search_steps_capped(self, community_relation):
        relations = [community_relation, community_relation, community_relation]
        decision = CostBasedOptimizer().choose_star(relations)
        assert decision.strategy == "mmjoin"
        assert 0 < decision.search_steps <= STAR_SEARCH_CAP

    def test_no_duplicate_candidate_pairs_evaluated(self, community_relation):
        relations = [community_relation, community_relation]
        decision = CostBasedOptimizer().choose_star(relations)
        grid = _power_of_two_grid(
            max(d for rel in relations for d in rel.degrees_y().values())
        )
        # Distinct pairs only: never more than |grid|^2 evaluations even
        # before the early exit kicks in.
        assert decision.search_steps <= len(set(grid)) ** 2

    def test_early_exit_prunes_grid(self, community_relation):
        """Mirroring the two-path search: rows stop once cost grows again."""
        relations = [community_relation, community_relation, community_relation]
        decision = CostBasedOptimizer().choose_star(relations)
        grid = _power_of_two_grid(
            max(d for rel in relations for d in rel.degrees_y().values())
        )
        full_grid = len(set(grid)) ** 2
        assert decision.search_steps <= full_grid

    def test_capped_search_still_returns_valid_thresholds(self, skewed_pair):
        left, right = skewed_pair
        decision = CostBasedOptimizer().choose_star([left, right, left])
        if decision.strategy == "mmjoin":
            assert decision.delta1 >= 1 and decision.delta2 >= 1
