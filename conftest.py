"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment), and registers the ``--update-goldens`` flag the
explain() snapshot tests use.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden explain() snapshot files instead of asserting",
    )
