"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed editable (``pip install -e .``) in offline
environments where PEP 517 build isolation cannot download build
dependencies.
"""

from setuptools import setup

setup()
