"""repro — Fast join-project query evaluation using matrix multiplication.

This package is a from-scratch Python reproduction of the system described in
"Fast Join Project Query Evaluation using Matrix Multiplication"
(Deep, Hu, Koutris — SIGMOD 2020).  It provides:

* ``repro.data`` — binary relation storage, the columnar ``PairBlock`` /
  ``CountedPairBlock`` result representation, degree indexes, synthetic
  dataset generators that mirror the paper's evaluation datasets.
* ``repro.joins`` — worst-case optimal join algorithms (hash, sort-merge,
  leapfrog-style multiway intersection, generic join) and the combinatorial
  output-sensitive baseline.
* ``repro.matmul`` — dense/sparse/blocked/Strassen matrix multiplication
  kernels and a calibrated cost model.
* ``repro.core`` — the paper's contribution: degree partitioning, the MMJoin
  two-path and star algorithms, output-size estimation, the cost-based
  optimizer and the boolean-set-intersection batch scheduler.
* ``repro.plan`` — logical join-project query descriptions and the planner
  that lowers them onto the physical pipeline, with ``explain()`` support.
* ``repro.exec`` — the physical operators (semijoin-reduce, light/heavy
  partition, combinatorial light, matmul heavy, dedup-merge).
* ``repro.setops`` — set similarity join (SizeAware, SizeAware++, MMJoin),
  ordered SSJ and set containment join (PRETTI, LIMIT+, PIEJoin, MMJoin).
* ``repro.engines`` — baseline query engines that stand in for the DBMSs the
  paper compares against.
* ``repro.bench`` — the harness that regenerates every table and figure.

Quickstart
----------

>>> from repro import Relation, two_path_join
>>> R = Relation.from_pairs([(1, 10), (2, 10), (3, 11)], name="R")
>>> sorted(two_path_join(R, R).pairs())
[(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)]
"""

from repro.data.relation import Relation
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.catalog import Catalog
from repro.data.setfamily import SetFamily
from repro.core.two_path import MMJoinResult, two_path_join, two_path_join_detailed
from repro.core.star import star_join
from repro.core.optimizer import CostBasedOptimizer, OptimizerDecision
from repro.core.config import MMJoinConfig
from repro.core.bsi import BooleanSetIntersection, BSIBatchScheduler
from repro.plan.planner import PhysicalPlan, Planner
from repro.plan.query import (
    ContainmentJoinQuery,
    JoinProjectQuery,
    SimilarityJoinQuery,
    StarQuery,
    TwoPathQuery,
)
from repro.matmul.registry import BackendRegistry, MatMulBackend, default_registry
from repro.setops.ssj import set_similarity_join
from repro.setops.ssj_ordered import ordered_set_similarity_join
from repro.setops.scj import set_containment_join

__version__ = "1.2.0"

__all__ = [
    "Relation",
    "PairBlock",
    "CountedPairBlock",
    "Catalog",
    "SetFamily",
    "MMJoinResult",
    "two_path_join",
    "two_path_join_detailed",
    "star_join",
    "CostBasedOptimizer",
    "OptimizerDecision",
    "MMJoinConfig",
    "BooleanSetIntersection",
    "BSIBatchScheduler",
    "PhysicalPlan",
    "Planner",
    "JoinProjectQuery",
    "TwoPathQuery",
    "StarQuery",
    "SimilarityJoinQuery",
    "ContainmentJoinQuery",
    "BackendRegistry",
    "MatMulBackend",
    "default_registry",
    "set_similarity_join",
    "ordered_set_similarity_join",
    "set_containment_join",
    "__version__",
]
