"""Generic (NPRR-style) worst-case optimal join for star queries.

The star query ``Q*_k(x1..xk) = R1(x1,y), ..., Rk(xk,y)`` has fractional edge
cover ``rho* = k`` and a worst-case optimal algorithm enumerates the full
join in time ``O(|D|^k)`` (Proposition 1 in the paper).  Because every
relation shares the single join variable ``y``, Generic Join specialises to:
pick ``y`` first (intersect the y-domains), then expand the per-relation
neighbour lists.  The projection variant deduplicates head tuples on the fly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.joins.leapfrog import leapfrog_intersection, star_full_join


def generic_star_join(relations: Sequence[Relation]) -> Iterator[Tuple[int, ...]]:
    """Enumerate the full star join as ``(y, x1, ..., xk)`` tuples."""
    yield from star_full_join(relations)


def generic_star_join_project(
    relations: Sequence[Relation],
    restrict_to: Iterable[int] | None = None,
) -> Set[Tuple[int, ...]]:
    """Compute the projected star join ``pi_{x1..xk}`` with on-the-fly dedup.

    Parameters
    ----------
    relations:
        The k star relations.
    restrict_to:
        Optional set of ``y`` values to restrict the join variable to.  Used
        by the MMJoin light/heavy decomposition which evaluates sub-joins
        over subsets of the ``y`` domain.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return set()
    y_domains = [r.y_values() for r in relations]
    shared_ys = leapfrog_intersection(y_domains)
    if restrict_to is not None:
        allowed = np.asarray(sorted(set(int(v) for v in restrict_to)), dtype=np.int64)
        shared_ys = leapfrog_intersection([shared_ys, allowed])
    indexes = [r.index_y() for r in relations]
    output: Set[Tuple[int, ...]] = set()
    for y in shared_ys:
        neighbour_lists: List[np.ndarray] = [idx[int(y)] for idx in indexes]
        _expand_product(neighbour_lists, (), output)
    return output


def generic_star_join_project_counts(
    relations: Sequence[Relation],
) -> Dict[Tuple[int, ...], int]:
    """Projected star join with witness counts (#distinct shared y values)."""
    counts: Dict[Tuple[int, ...], int] = {}
    for tup in star_full_join(relations):
        head = tup[1:]
        counts[head] = counts.get(head, 0) + 1
    return counts


def generic_two_path_project(
    left: Relation,
    right: Relation,
    restrict_left_x: Iterable[int] | None = None,
    restrict_y: Iterable[int] | None = None,
) -> Set[Tuple[int, int]]:
    """Projected two-path join with optional restrictions.

    This is the sub-join evaluator used by Algorithm 1: the MMJoin light part
    evaluates ``R- |><| S`` (a restriction over x and/or y values of the left
    relation) with a worst-case optimal strategy and deduplicates.
    """
    if len(left) == 0 or len(right) == 0:
        return set()
    left_view = left
    if restrict_left_x is not None:
        left_view = left_view.restrict_x(restrict_left_x)
    if restrict_y is not None:
        left_view = left_view.restrict_y(restrict_y)
    output: Set[Tuple[int, int]] = set()
    right_index = right.index_y()
    for x, y in zip(left_view.xs, left_view.ys):
        partners = right_index.get(int(y))
        if partners is None:
            continue
        xi = int(x)
        for z in partners:
            output.add((xi, int(z)))
    return output


def _expand_product(
    lists: List[np.ndarray], prefix: Tuple[int, ...], output: Set[Tuple[int, ...]]
) -> None:
    """Add every combination of the neighbour lists (prefixed) to ``output``."""
    if not lists:
        output.add(prefix)
        return
    head, *tail = lists
    for value in head:
        _expand_product(tail, prefix + (int(value),), output)
