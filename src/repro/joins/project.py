"""Projection and deduplication operators.

Section 6 of the paper describes two deduplication strategies for the light
part of the join — a reusable counter array (cheap when the z-domain fits in
cache) and sort-based dedup (cheap when only a few values must be
deduplicated) — and picks the better one per x value.  This module implements
both, plus the plain hash-set strategy conventional engines use, behind one
:class:`Deduplicator` facade so callers (and the ablation benchmark) can
switch strategies explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock

Pair = Tuple[int, int]

DEDUP_STRATEGIES = ("hash", "sort", "counter", "auto")


class Deduplicator:
    """Deduplicate the z values reachable from a fixed x value.

    Parameters
    ----------
    domain_size:
        Upper bound on z values (exclusive); required by the counter strategy.
    strategy:
        One of ``hash``, ``sort``, ``counter`` or ``auto``.  ``auto`` follows
        the paper: use the counter array when the expected number of items is
        a sizeable fraction of the domain, otherwise sort.
    """

    def __init__(self, domain_size: int, strategy: str = "auto") -> None:
        if strategy not in DEDUP_STRATEGIES:
            raise ValueError(f"unknown dedup strategy {strategy!r}")
        self.domain_size = int(domain_size)
        self.strategy = strategy
        self._counter = (
            np.zeros(self.domain_size, dtype=np.int32)
            if strategy in ("counter", "auto") and self.domain_size > 0
            else None
        )

    def dedup(self, values: Sequence[np.ndarray]) -> np.ndarray:
        """Deduplicate the concatenation of the given arrays of z values."""
        chunks = [np.asarray(v, dtype=np.int64) for v in values if len(v)]
        if not chunks:
            return _EMPTY
        total = sum(c.size for c in chunks)
        strategy = self.strategy
        if strategy == "auto":
            dense_enough = self.domain_size > 0 and total >= self.domain_size // 8
            strategy = "counter" if dense_enough and self._counter is not None else "sort"
        if strategy == "hash":
            return self._dedup_hash(chunks)
        if strategy == "sort":
            return self._dedup_sort(chunks)
        return self._dedup_counter(chunks)

    def dedup_with_counts(self, values: Sequence[np.ndarray]) -> Dict[int, int]:
        """Deduplicate and return witness counts ``{z: multiplicity}``."""
        counts: Dict[int, int] = {}
        for chunk in values:
            for z in chunk:
                zi = int(z)
                counts[zi] = counts.get(zi, 0) + 1
        return counts

    # -- strategies ---------------------------------------------------------
    @staticmethod
    def _dedup_hash(chunks: List[np.ndarray]) -> np.ndarray:
        seen: Set[int] = set()
        for chunk in chunks:
            seen.update(int(v) for v in chunk)
        return np.asarray(sorted(seen), dtype=np.int64)

    @staticmethod
    def _dedup_sort(chunks: List[np.ndarray]) -> np.ndarray:
        return np.unique(np.concatenate(chunks))

    def _dedup_counter(self, chunks: List[np.ndarray]) -> np.ndarray:
        if self._counter is None:
            self._counter = np.zeros(self.domain_size, dtype=np.int32)
        counter = self._counter
        touched = np.concatenate(chunks)
        counter[touched] += 1
        uniques = np.unique(touched)
        counter[touched] = 0  # reset only the cells we touched (cheap reuse)
        return uniques


def dedup_pairs(pairs: Iterable[Pair]) -> Set[Pair]:
    """Deduplicate an iterable of pairs into a set."""
    return set((int(a), int(b)) for a, b in pairs)


def dedup_tuples(tuples: Iterable[Tuple[int, ...]]) -> Set[Tuple[int, ...]]:
    """Deduplicate an iterable of tuples of any arity."""
    return set(tuple(int(v) for v in t) for t in tuples)


def sort_dedup_pairs(pairs: Sequence[Pair]) -> List[Pair]:
    """Sort-based deduplication of a materialised pair list.

    Routed through the columnar :class:`~repro.data.pairblock.PairBlock`
    (one packed-key ``np.unique`` in canonical order).
    """
    if not pairs:
        return []
    return list(PairBlock.from_pairs(pairs).dedup())


def project_join_counts(full_join: Iterable[Tuple[int, int, int]]) -> Dict[Pair, int]:
    """Project (x, y, z) tuples onto (x, z) and count witnesses.

    The (x, z) expansion is aggregated columnar (``np.add.at`` over packed
    keys) instead of a per-tuple Python dict accumulation.
    """
    rows = np.asarray(list(full_join), dtype=np.int64)
    if rows.size == 0:
        return {}
    expansion = PairBlock((rows[:, 0], rows[:, 2]))
    return CountedPairBlock.from_expansion(expansion).dedup().to_dict()


def merge_pair_sets(*sets: Set[Pair]) -> Set[Pair]:
    """Union several pair sets (the final step of Algorithm 1)."""
    merged: Set[Pair] = set()
    for s in sets:
        merged |= s
    return merged


_EMPTY = np.empty(0, dtype=np.int64)
