"""Combinatorial output-sensitive join-project (the paper's "Non-MMJoin").

Lemma 2 (Amossen & Pagh [11]) gives a purely combinatorial algorithm for the
star query running in time ``O(|D| * |OUT|^{1 - 1/k})``.  The idea, for the
two-path query, is again degree-based partitioning — but *both* the light and
heavy parts are evaluated with combinatorial expansion, i.e. no matrix
multiplication.  This is the strongest baseline the paper compares MMJoin
against (labelled ``Non-MMJoin`` in every figure).

The hot path is columnar: :func:`probe_pairs_block` expands probe tuples
against the other relation's y-sorted layout with ``searchsorted`` + index
gathers into preallocated arrays (no per-tuple Python), and the block-native
variants (:func:`combinatorial_two_path_block`,
:func:`combinatorial_two_path_counted`, :func:`combinatorial_star_block`)
deduplicate with one packed-key ``np.unique`` over the resulting
:class:`~repro.data.pairblock.PairBlock`.  The set-returning public functions
are thin boundary wrappers kept for the baseline engines and the ablation
benchmarks; the legacy per-x :class:`~repro.joins.project.Deduplicator` loop
survives only for the explicit ``hash`` / ``counter`` dedup strategies the
Figure 8 ablation isolates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation
from repro.errors import check_deadline
from repro.joins.leapfrog import leapfrog_intersection
from repro.joins.project import Deduplicator

Pair = Tuple[int, int]

# Cap on raw expansion rows materialised at once (two int64 columns per row:
# ~64 MB per chunk).  Chunking keeps the peak memory of the full combinatorial
# expansion output-sensitive — each chunk is deduplicated (or count-aggregated)
# before the next one is built — matching the old per-x loop's memory profile
# while staying fully vectorized.
EXPANSION_CHUNK_ROWS = 1 << 22


def _probe_slices(
    probe_ys: np.ndarray, other: Relation, chunk_rows: int
) -> List[slice]:
    """Split probe tuples into slices whose expansions stay under chunk_rows.

    A single probe tuple always forms a valid slice even when its own
    expansion exceeds the cap (it cannot be split further).
    """
    if probe_ys.size == 0:
        return []
    other_ys, _ = other.sorted_by_y()
    counts = (
        np.searchsorted(other_ys, probe_ys, side="right")
        - np.searchsorted(other_ys, probe_ys, side="left")
    )
    cum = np.cumsum(counts)
    if int(cum[-1]) <= chunk_rows:
        return [slice(0, probe_ys.size)]
    slices: List[slice] = []
    start = 0
    consumed = 0
    while start < probe_ys.size:
        # Last probe whose cumulative expansion still fits under the cap;
        # the max() guard guarantees progress when a single probe exceeds it.
        stop = int(np.searchsorted(cum, consumed + chunk_rows, side="right"))
        stop = min(max(stop, start + 1), probe_ys.size)
        slices.append(slice(start, stop))
        consumed = int(cum[stop - 1])
        start = stop
    return slices


# --------------------------------------------------------------------------- #
# Columnar expansion primitives
# --------------------------------------------------------------------------- #
def probe_pairs_block(
    probe_xs: np.ndarray,
    probe_ys: np.ndarray,
    other: Relation,
    flip: bool = False,
) -> PairBlock:
    """Expand probe tuples ``(x, y)`` against ``other``'s y-partners.

    For every probe tuple the partners ``z`` with ``(z, y) in other`` are
    located via ``searchsorted`` over ``other``'s cached y-sorted columns and
    gathered with one ragged-range index expression — the per-tuple Python
    loop of the old light join reduced to a handful of vectorized NumPy
    calls.  Rows are ``(x, z)``, or ``(z, x)`` when ``flip`` is set (probing
    from the S side of the two-path query).  The result may contain
    duplicate rows; deduplication happens once, downstream.
    """
    probe_xs = np.asarray(probe_xs, dtype=np.int64)
    probe_ys = np.asarray(probe_ys, dtype=np.int64)
    if probe_xs.size == 0 or len(other) == 0:
        return PairBlock.empty(2)
    other_ys, other_xs = other.sorted_by_y()
    lo = np.searchsorted(other_ys, probe_ys, side="left")
    hi = np.searchsorted(other_ys, probe_ys, side="right")
    counts = hi - lo
    hit = counts > 0
    if not hit.any():
        return PairBlock.empty(2)
    xs, lo, counts = probe_xs[hit], lo[hit], counts[hit]
    total = int(counts.sum())
    out_x = np.repeat(xs, counts)
    starts = np.cumsum(counts) - counts
    gather = np.arange(total, dtype=np.int64) - np.repeat(starts, counts) + np.repeat(lo, counts)
    out_z = other_xs[gather]
    return PairBlock((out_z, out_x) if flip else (out_x, out_z))


def deduped_probe_block(
    probe_xs: np.ndarray,
    probe_ys: np.ndarray,
    other: Relation,
    flip: bool = False,
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> PairBlock:
    """Chunked, deduplicated probe expansion (distinct pairs only).

    Each expansion chunk is deduplicated before the next is built, so peak
    memory tracks the distinct output rather than the raw witness count —
    the columnar analogue of the old set-based probe's memory profile.
    """
    probe_xs = np.asarray(probe_xs, dtype=np.int64)
    probe_ys = np.asarray(probe_ys, dtype=np.int64)
    if probe_xs.size == 0 or len(other) == 0:
        return PairBlock.empty(2)
    parts: List[PairBlock] = []
    for sl in _probe_slices(probe_ys, other, chunk_rows):
        # Cooperative cancellation point: each expansion chunk is the unit of
        # deadline granularity for the combinatorial light path.
        check_deadline("expand.chunk")
        parts.append(
            probe_pairs_block(probe_xs[sl], probe_ys[sl], other, flip=flip).dedup()
        )
    if not parts:
        return PairBlock.empty(2)
    if len(parts) == 1:
        return parts[0]
    return PairBlock.concat_all(parts).dedup()


def combinatorial_two_path_block(
    left: Relation,
    right: Relation,
    dedup_strategy: str = "auto",
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> PairBlock:
    """Block-native ``pi_{x,z}(R |><| S)``: chunked expansion + dedup.

    ``auto`` and ``sort`` run fully columnar, deduplicating per expansion
    chunk so peak memory tracks the output, not the full join; the explicit
    ``hash`` and ``counter`` strategies fall back to the per-x
    :class:`Deduplicator` loop (they exist for the dedup-strategy ablation)
    and convert at the end.
    """
    if len(left) == 0 or len(right) == 0:
        return PairBlock.empty(2)
    if dedup_strategy not in ("auto", "sort"):
        return PairBlock.from_pairs(
            _two_path_dedup_loop(left, right, dedup_strategy)
        ).dedup()
    return deduped_probe_block(left.xs, left.ys, right, chunk_rows=chunk_rows)


def counted_probe_block(
    probe_xs: np.ndarray,
    probe_ys: np.ndarray,
    other: Relation,
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> CountedPairBlock:
    """Chunked witness-counting expansion of probe tuples against ``other``.

    Every expanded ``(x, y, z)`` triple is one witness; the packed-key
    ``np.add.at`` aggregation of :meth:`CountedPairBlock.dedup` turns the raw
    expansion into exact per-pair counts.  Expansion chunks aggregate
    independently (they partition the witnesses) and their counts sum in the
    final merge, so peak memory stays output-sensitive.
    """
    probe_xs = np.asarray(probe_xs, dtype=np.int64)
    probe_ys = np.asarray(probe_ys, dtype=np.int64)
    if probe_xs.size == 0 or len(other) == 0:
        return CountedPairBlock.empty(2)
    merged: CountedPairBlock | None = None
    for sl in _probe_slices(probe_ys, other, chunk_rows):
        check_deadline("expand.chunk")
        expansion = probe_pairs_block(probe_xs[sl], probe_ys[sl], other)
        part = CountedPairBlock.from_expansion(expansion).dedup()
        merged = part if merged is None else merged.concat(part)
    if merged is None:
        return CountedPairBlock.empty(2)
    return merged if merged.deduped else merged.dedup(reduce="sum")


def combinatorial_two_path_counted(
    left: Relation,
    right: Relation,
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> CountedPairBlock:
    """Witness-counting two-path expansion as a :class:`CountedPairBlock`."""
    if len(left) == 0 or len(right) == 0:
        return CountedPairBlock.empty(2)
    return counted_probe_block(left.xs, left.ys, right, chunk_rows=chunk_rows)


def star_expansion_block(
    relations: Sequence[Relation],
    restrict_to: np.ndarray | None = None,
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> PairBlock:
    """Shared-y cartesian expansion of the star query.

    ``restrict_to`` optionally narrows the join variable to a subset of the
    ``y`` domain — the form the MMJoin light sub-joins need.  The result may
    still contain duplicate rows (callers deduplicate, possibly after
    concatenating several sub-joins), but accumulated expansion chunks are
    compacted with an intermediate dedup whenever they exceed ``chunk_rows``,
    keeping peak memory output-sensitive.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return PairBlock.empty(max(len(relations), 1))
    arity = len(relations)
    pending: List[np.ndarray] = []
    pending_rows = 0
    compacted: List[PairBlock] = []
    for lists in _star_neighbour_lists(relations, restrict_to):
        check_deadline("expand.chunk")
        combos = cartesian_arrays(lists)
        pending.append(combos)
        pending_rows += combos.shape[0]
        if pending_rows >= chunk_rows:
            compacted.append(
                PairBlock.from_array(np.concatenate(pending, axis=0)).dedup()
            )
            pending, pending_rows = [], 0
    if pending:
        compacted.append(PairBlock.from_array(np.concatenate(pending, axis=0)))
    return PairBlock.concat_all(compacted, arity=arity)


def star_counted_block(
    relations: Sequence[Relation],
    chunk_rows: int = EXPANSION_CHUNK_ROWS,
) -> CountedPairBlock:
    """Witness-counting star expansion (one count per shared-y combination).

    Count aggregation happens per expansion chunk (chunks partition the
    witnesses) and the chunk counts sum in the final merge — the star
    equivalent of :func:`combinatorial_two_path_counted`.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return CountedPairBlock.empty(max(len(relations), 1))
    pending: List[np.ndarray] = []
    pending_rows = 0
    merged: CountedPairBlock | None = None

    def flush(rows: List[np.ndarray], acc: CountedPairBlock | None) -> CountedPairBlock:
        expansion = PairBlock.from_array(np.concatenate(rows, axis=0))
        part = CountedPairBlock.from_expansion(expansion).dedup()
        return part if acc is None else acc.concat(part)

    for lists in _star_neighbour_lists(relations, None):
        check_deadline("expand.chunk")
        combos = cartesian_arrays(lists)
        pending.append(combos)
        pending_rows += combos.shape[0]
        if pending_rows >= chunk_rows:
            merged = flush(pending, merged)
            pending, pending_rows = [], 0
    if pending:
        merged = flush(pending, merged)
    if merged is None:
        return CountedPairBlock.empty(len(relations))
    return merged if merged.deduped else merged.dedup(reduce="sum")


def _star_neighbour_lists(
    relations: Sequence[Relation], restrict_to: np.ndarray | None
):
    """Yield the per-relation neighbour lists of every shared ``y`` value."""
    y_domains = [r.y_values() for r in relations]
    shared_ys = leapfrog_intersection(y_domains)
    if restrict_to is not None:
        allowed = np.unique(np.asarray(restrict_to, dtype=np.int64))
        shared_ys = leapfrog_intersection([shared_ys, allowed])
    indexes = [r.index_y() for r in relations]
    for y in shared_ys:
        yield [idx[int(y)] for idx in indexes]


def combinatorial_star_block(relations: Sequence[Relation]) -> PairBlock:
    """Block-native projected star query (shared-y cartesian expansion)."""
    return star_expansion_block(relations).dedup()


def cartesian_arrays(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Cartesian product of 1-D integer arrays as an (n, k) array."""
    if len(lists) == 1:
        return np.asarray(lists[0], dtype=np.int64).reshape(-1, 1)
    grids = np.meshgrid(*lists, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1).astype(np.int64, copy=False)


# --------------------------------------------------------------------------- #
# Set-based boundary wrappers (public baseline API)
# --------------------------------------------------------------------------- #
def combinatorial_two_path(
    left: Relation,
    right: Relation,
    dedup_strategy: str = "auto",
    with_counts: bool = False,
) -> Set[Pair] | Dict[Pair, int]:
    """Output-sensitive combinatorial evaluation of ``pi_{x,z}(R |><| S)``.

    Boundary wrapper over the columnar expansion: returns a Python set (or
    ``{(x, z): #witnesses}`` when ``with_counts`` is set) for the baseline
    engines and tests.

    Parameters
    ----------
    dedup_strategy:
        ``auto`` / ``sort`` run the columnar path; ``hash`` / ``counter``
        keep the legacy per-x :class:`Deduplicator` loop for the ablation.
    with_counts:
        When true, return ``{(x, z): #witnesses}`` instead of a plain set.
    """
    if with_counts:
        return combinatorial_two_path_counted(left, right).to_dict()
    return combinatorial_two_path_block(left, right, dedup_strategy).to_set()


def _two_path_dedup_loop(
    left: Relation, right: Relation, dedup_strategy: str
) -> Set[Pair]:
    """Legacy per-x merge loop, kept for the explicit dedup-strategy ablation."""
    left_index = left.index_x()
    right_index = right.index_y()
    z_domain = int(right.x_values().max()) + 1 if len(right) else 0
    dedup = Deduplicator(domain_size=z_domain, strategy=dedup_strategy)
    output: Set[Pair] = set()
    for x, ys in left_index.items():
        chunks: List[np.ndarray] = []
        for y in ys:
            partners = right_index.get(int(y))
            if partners is not None:
                chunks.append(partners)
        if not chunks:
            continue
        xi = int(x)
        for z in dedup.dedup(chunks):
            output.add((xi, int(z)))
    return output


def combinatorial_star(
    relations: Sequence[Relation],
    with_counts: bool = False,
) -> Set[Tuple[int, ...]] | Dict[Tuple[int, ...], int]:
    """Output-sensitive combinatorial evaluation of the projected star query.

    Enumerates shared ``y`` values (worst-case optimal choice of the first
    variable) and expands the cartesian product of neighbour lists; the
    running time matches Lemma 2's ``O(|D| * |OUT|^{1 - 1/k})`` shape on
    skew-free inputs.  Boundary wrapper returning Python collections.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return {} if with_counts else set()
    if with_counts:
        return star_counted_block(relations).to_dict()
    return combinatorial_star_block(relations).to_set()


def combinatorial_two_path_filtered(
    left: Relation,
    right: Relation,
    candidates: Iterable[Pair],
) -> Set[Pair]:
    """Combinatorial join-project restricted to candidate pairs.

    Used by the boolean-set-intersection baseline, where a batch relation
    ``T(x, z)`` filters the output.
    """
    wanted = set((int(a), int(b)) for a, b in candidates)
    if not wanted:
        return set()
    left_index = left.index_x()
    right_index = right.index_x()
    result: Set[Pair] = set()
    for a, b in wanted:
        ys_a = left_index.get(a)
        ys_b = right_index.get(b)
        if ys_a is None or ys_b is None:
            continue
        if leapfrog_intersection([ys_a, ys_b]).size:
            result.add((a, b))
    return result


def _product(lists: List[np.ndarray]) -> Iterable[Tuple[int, ...]]:
    """Cartesian product of numpy arrays as python int tuples (legacy helper)."""
    return map(tuple, cartesian_arrays(lists).tolist()) if lists else [()]
