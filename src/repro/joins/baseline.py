"""Combinatorial output-sensitive join-project (the paper's "Non-MMJoin").

Lemma 2 (Amossen & Pagh [11]) gives a purely combinatorial algorithm for the
star query running in time ``O(|D| * |OUT|^{1 - 1/k})``.  The idea, for the
two-path query, is again degree-based partitioning — but *both* the light and
heavy parts are evaluated with combinatorial expansion, i.e. no matrix
multiplication.  This is the strongest baseline the paper compares MMJoin
against (labelled ``Non-MMJoin`` in every figure).

For practical purposes the combinatorial algorithm is: for every x value,
merge the inverted lists of its y neighbours and deduplicate.  The degree
threshold only changes *how* the dedup is performed (counter array vs sort),
which :class:`~repro.joins.project.Deduplicator` already handles, so the
implementation here is a tight loop over x values with an output-sensitive
amount of work per value.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.joins.leapfrog import leapfrog_intersection
from repro.joins.project import Deduplicator

Pair = Tuple[int, int]


def combinatorial_two_path(
    left: Relation,
    right: Relation,
    dedup_strategy: str = "auto",
    with_counts: bool = False,
) -> Set[Pair] | Dict[Pair, int]:
    """Output-sensitive combinatorial evaluation of ``pi_{x,z}(R |><| S)``.

    For each x value of ``left``, the inverted lists ``L[b]`` of ``right`` for
    every neighbour ``b`` are merged and deduplicated.  Work per x value is
    proportional to the number of (y, z) expansions, which is exactly the
    quantity the paper's ``sum``/``cdfx`` indexes estimate.

    Parameters
    ----------
    dedup_strategy:
        Passed to :class:`Deduplicator` (``hash``, ``sort``, ``counter`` or
        ``auto``).
    with_counts:
        When true, return ``{(x, z): #witnesses}`` instead of a plain set.
    """
    if len(left) == 0 or len(right) == 0:
        return {} if with_counts else set()
    left_index = left.index_x()
    right_index = right.index_y()
    if with_counts:
        counts: Dict[Pair, int] = {}
        for x, ys in left_index.items():
            local: Dict[int, int] = {}
            for y in ys:
                partners = right_index.get(int(y))
                if partners is None:
                    continue
                for z in partners:
                    zi = int(z)
                    local[zi] = local.get(zi, 0) + 1
            for z, c in local.items():
                counts[(int(x), z)] = c
        return counts

    z_domain = int(right.x_values().max()) + 1 if len(right) else 0
    dedup = Deduplicator(domain_size=z_domain, strategy=dedup_strategy)
    output: Set[Pair] = set()
    for x, ys in left_index.items():
        chunks: List[np.ndarray] = []
        for y in ys:
            partners = right_index.get(int(y))
            if partners is not None:
                chunks.append(partners)
        if not chunks:
            continue
        xi = int(x)
        for z in dedup.dedup(chunks):
            output.add((xi, int(z)))
    return output


def combinatorial_star(
    relations: Sequence[Relation],
    with_counts: bool = False,
) -> Set[Tuple[int, ...]] | Dict[Tuple[int, ...], int]:
    """Output-sensitive combinatorial evaluation of the projected star query.

    Enumerates shared ``y`` values (worst-case optimal choice of the first
    variable) and expands the cartesian product of neighbour lists, with
    on-the-fly dedup of head tuples.  The running time matches Lemma 2's
    ``O(|D| * |OUT|^{1 - 1/k})`` shape on skew-free inputs.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return {} if with_counts else set()
    y_domains = [r.y_values() for r in relations]
    shared_ys = leapfrog_intersection(y_domains)
    indexes = [r.index_y() for r in relations]
    if with_counts:
        counts: Dict[Tuple[int, ...], int] = {}
        for y in shared_ys:
            lists = [idx[int(y)] for idx in indexes]
            for head in _product(lists):
                counts[head] = counts.get(head, 0) + 1
        return counts
    output: Set[Tuple[int, ...]] = set()
    for y in shared_ys:
        lists = [idx[int(y)] for idx in indexes]
        output.update(_product(lists))
    return output


def combinatorial_two_path_filtered(
    left: Relation,
    right: Relation,
    candidates: Iterable[Pair],
) -> Set[Pair]:
    """Combinatorial join-project restricted to candidate pairs.

    Used by the boolean-set-intersection baseline, where a batch relation
    ``T(x, z)`` filters the output.
    """
    wanted = set((int(a), int(b)) for a, b in candidates)
    if not wanted:
        return set()
    left_index = left.index_x()
    right_index = right.index_x()
    result: Set[Pair] = set()
    for a, b in wanted:
        ys_a = left_index.get(a)
        ys_b = right_index.get(b)
        if ys_a is None or ys_b is None:
            continue
        if leapfrog_intersection([ys_a, ys_b]).size:
            result.add((a, b))
    return result


def _product(lists: List[np.ndarray]) -> Iterable[Tuple[int, ...]]:
    """Cartesian product of numpy arrays as python int tuples."""
    if not lists:
        return [()]
    if len(lists) == 1:
        return [(int(v),) for v in lists[0]]
    if len(lists) == 2:
        return [(int(a), int(b)) for a in lists[0] for b in lists[1]]
    head, *tail = lists
    rest = list(_product(tail))
    return [(int(a),) + r for a in head for r in rest]
