"""Join algorithms: the worst-case-optimal substrate and combinatorial baselines."""

from repro.joins.hash_join import hash_join, hash_join_project
from repro.joins.sort_merge import sort_merge_join, sort_merge_join_project
from repro.joins.leapfrog import intersect_sorted, leapfrog_intersection, star_full_join
from repro.joins.generic_join import generic_star_join, generic_star_join_project
from repro.joins.project import (
    Deduplicator,
    dedup_pairs,
    dedup_tuples,
    project_join_counts,
)
from repro.joins.baseline import combinatorial_two_path, combinatorial_star

__all__ = [
    "hash_join",
    "hash_join_project",
    "sort_merge_join",
    "sort_merge_join_project",
    "intersect_sorted",
    "leapfrog_intersection",
    "star_full_join",
    "generic_star_join",
    "generic_star_join_project",
    "Deduplicator",
    "dedup_pairs",
    "dedup_tuples",
    "project_join_counts",
    "combinatorial_two_path",
    "combinatorial_star",
]
