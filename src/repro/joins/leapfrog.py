"""Leapfrog-Triejoin-style multiway sorted intersection.

Worst-case optimal join algorithms (Leapfrog Triejoin, NPRR / Generic Join)
reduce the star query to repeated intersections of sorted lists.  This module
provides the sorted-intersection primitives — pairwise galloping ("leapfrog")
search and k-way intersection — plus the full-join enumerator for star
queries that Generic Join builds on.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.relation import Relation


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted integer arrays.

    Uses galloping (binary) search from the smaller array into the larger
    one, which is the leapfrog primitive and costs
    ``O(min * log(max / min))``.
    """
    if a.size == 0 or b.size == 0:
        return _EMPTY
    small, large = (a, b) if a.size <= b.size else (b, a)
    positions = np.searchsorted(large, small)
    valid = positions < large.size
    hits = np.zeros(small.size, dtype=bool)
    hits[valid] = large[positions[valid]] == small[valid]
    return small[hits]


def leapfrog_intersection(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect k sorted arrays, smallest first (leapfrog order)."""
    non_empty = [np.asarray(lst, dtype=np.int64) for lst in lists]
    if not non_empty:
        return _EMPTY
    if any(lst.size == 0 for lst in non_empty):
        return _EMPTY
    ordered = sorted(non_empty, key=lambda lst: lst.size)
    result = ordered[0]
    for lst in ordered[1:]:
        result = intersect_sorted(result, lst)
        if result.size == 0:
            break
    return result


def intersection_size(lists: Sequence[np.ndarray]) -> int:
    """Size of the k-way intersection without materialising tuples."""
    return int(leapfrog_intersection(lists).size)


def star_full_join(relations: Sequence[Relation]) -> Iterator[Tuple[int, ...]]:
    """Enumerate the *full* star join ``R1(x1,y), ..., Rk(xk,y)``.

    Tuples are emitted as ``(y, x1, x2, ..., xk)``.  The enumeration is
    worst-case optimal for the star query: for every shared ``y`` value the
    cartesian product of the per-relation neighbour lists is produced, and
    ``y`` values missing from any relation are skipped via the k-way
    intersection of the y-domains.
    """
    if not relations or any(len(r) == 0 for r in relations):
        return
    y_domains = [r.y_values() for r in relations]
    shared_ys = leapfrog_intersection(y_domains)
    indexes = [r.index_y() for r in relations]
    for y in shared_ys:
        neighbour_lists = [idx[int(y)] for idx in indexes]
        yield from _cartesian_with_prefix((int(y),), neighbour_lists)


def _cartesian_with_prefix(
    prefix: Tuple[int, ...], lists: List[np.ndarray]
) -> Iterator[Tuple[int, ...]]:
    """Yield ``prefix + combination`` for every combination of the lists."""
    if not lists:
        yield prefix
        return
    head, *tail = lists
    for value in head:
        yield from _cartesian_with_prefix(prefix + (int(value),), tail)


def star_full_join_size(relations: Sequence[Relation]) -> int:
    """Size of the full star join, computed from per-``y`` degree products."""
    if not relations or any(len(r) == 0 for r in relations):
        return 0
    y_domains = [r.y_values() for r in relations]
    shared_ys = leapfrog_intersection(y_domains)
    degree_maps = [r.degrees_y() for r in relations]
    total = 0
    for y in shared_ys:
        product = 1
        for degrees in degree_maps:
            product *= degrees.get(int(y), 0)
        total += product
    return total


_EMPTY = np.empty(0, dtype=np.int64)
