"""Classic hash join on the shared variable ``y``.

This is the plan a conventional DBMS (the paper's Postgres / MySQL / System X
baselines) picks for the two-path query: build a hash table on ``y`` for one
relation, probe with the other, emit the full join, and deduplicate the
projection afterwards.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.data.relation import Relation

FullTuple = Tuple[int, int, int]  # (x, y, z)
Pair = Tuple[int, int]


def hash_join(left: Relation, right: Relation) -> Iterator[FullTuple]:
    """Yield the full join ``left(x, y) |><| right(z, y)`` as (x, y, z) tuples.

    The smaller relation (by tuple count) is used as the build side.
    """
    if len(left) == 0 or len(right) == 0:
        return
    build_left = len(left) <= len(right)
    build_rel = left if build_left else right
    probe_rel = right if build_left else left
    build_index = build_rel.index_y()
    for probe_x, probe_y in zip(probe_rel.xs, probe_rel.ys):
        matches = build_index.get(int(probe_y))
        if matches is None:
            continue
        if build_left:
            for build_x in matches:
                yield int(build_x), int(probe_y), int(probe_x)
        else:
            for build_x in matches:
                yield int(probe_x), int(probe_y), int(build_x)


def hash_join_project(left: Relation, right: Relation) -> Set[Pair]:
    """Compute the join-project ``pi_{x,z}(left |><| right)`` via full join + dedup.

    This is the baseline evaluation strategy: materialise every witness and
    deduplicate with a hash set.
    """
    output: Set[Pair] = set()
    for x, _y, z in hash_join(left, right):
        output.add((x, z))
    return output


def hash_join_count(left: Relation, right: Relation) -> int:
    """Return the size of the full join without materialising it.

    Uses per-``y`` degree products, i.e. the same quantity a DBMS cardinality
    estimator would compute exactly from histograms.
    """
    return left.full_join_size(right)


def hash_join_project_counts(left: Relation, right: Relation) -> Dict[Pair, int]:
    """Join-project with witness counts: ``{(x, z): #common y}``.

    Needed by the set-similarity application, where the count is the overlap.
    """
    counts: Dict[Pair, int] = {}
    for x, _y, z in hash_join(left, right):
        key = (x, z)
        counts[key] = counts.get(key, 0) + 1
    return counts


def hash_join_materialized(left: Relation, right: Relation) -> List[FullTuple]:
    """Materialise the full join as a list (used by tests and the SQL engine)."""
    return list(hash_join(left, right))


def batched_hash_join_project(
    left: Relation, right: Relation, filter_pairs: Iterable[Pair]
) -> Set[Pair]:
    """Join-project restricted to candidate (x, z) pairs.

    Used by the boolean-set-intersection baseline: given a batch ``T(x, z)``
    of candidate pairs, return the subset with a non-empty intersection.
    """
    wanted = set((int(a), int(b)) for a, b in filter_pairs)
    if not wanted:
        return set()
    left_index = left.index_x()
    right_index = right.index_x()
    result: Set[Pair] = set()
    for a, b in wanted:
        ys_a = left_index.get(a)
        ys_b = right_index.get(b)
        if ys_a is None or ys_b is None:
            continue
        if _sorted_arrays_intersect(ys_a, ys_b):
            result.add((a, b))
    return result


def _sorted_arrays_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    """True if two sorted integer arrays share at least one value."""
    if a.size == 0 or b.size == 0:
        return False
    # Gallop through the smaller array probing the larger one.
    small, large = (a, b) if a.size <= b.size else (b, a)
    positions = np.searchsorted(large, small)
    positions = np.clip(positions, 0, large.size - 1)
    return bool(np.any(large[positions] == small))
