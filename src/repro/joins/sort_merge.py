"""Sort-merge join on the shared variable ``y``.

The second plan a conventional DBMS picks for the two-path query.  Both
relations are sorted by ``y`` (our :class:`~repro.data.relation.Relation`
indexes already provide this) and matching runs are combined.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.data.relation import Relation

FullTuple = Tuple[int, int, int]
Pair = Tuple[int, int]


def _runs_by_y(relation: Relation) -> List[Tuple[int, np.ndarray]]:
    """Return ``[(y, xs)]`` sorted by y — the merge input."""
    index = relation.index_y()
    return [(y, index[y]) for y in sorted(index)]


def sort_merge_join(left: Relation, right: Relation) -> Iterator[FullTuple]:
    """Yield the full join (x, y, z) by merging the two y-sorted runs."""
    if len(left) == 0 or len(right) == 0:
        return
    left_runs = _runs_by_y(left)
    right_runs = _runs_by_y(right)
    i, j = 0, 0
    while i < len(left_runs) and j < len(right_runs):
        ly, lxs = left_runs[i]
        ry, rzs = right_runs[j]
        if ly < ry:
            i += 1
        elif ly > ry:
            j += 1
        else:
            for x in lxs:
                for z in rzs:
                    yield int(x), int(ly), int(z)
            i += 1
            j += 1


def sort_merge_join_project(left: Relation, right: Relation) -> Set[Pair]:
    """Join-project via sort-merge full join followed by hash dedup."""
    output: Set[Pair] = set()
    for x, _y, z in sort_merge_join(left, right):
        output.add((x, z))
    return output


def sort_merge_join_project_sorted_dedup(left: Relation, right: Relation) -> List[Pair]:
    """Join-project where dedup is done by sorting the materialised output.

    This mirrors the "sort the full join result" strategy the paper discusses
    as the main cost of the conventional plans; it is deliberately
    materialisation-heavy.
    """
    materialised: List[Pair] = [(x, z) for x, _y, z in sort_merge_join(left, right)]
    if not materialised:
        return []
    arr = np.asarray(materialised, dtype=np.int64)
    deduped = np.unique(arr, axis=0)
    return [(int(a), int(b)) for a, b in deduped]


def sort_merge_join_counts(left: Relation, right: Relation) -> Dict[Pair, int]:
    """Join-project with witness counts via sort-merge."""
    counts: Dict[Pair, int] = {}
    for x, _y, z in sort_merge_join(left, right):
        key = (x, z)
        counts[key] = counts.get(key, 0) + 1
    return counts
