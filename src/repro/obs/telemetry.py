"""The telemetry facade a :class:`QuerySession` owns.

``QuerySession(telemetry=...)`` accepts ``True``/``False``/``None``, a
:class:`TelemetryConfig`, or a prebuilt :class:`Telemetry` (so several
sessions can share one registry); :meth:`Telemetry.coerce` normalises all
of them.  The facade bundles the three tentpole pieces:

* :meth:`start` mints a :class:`~repro.obs.trace.Trace` per served call
  (``None`` when disabled — callers skip straight to the untraced body);
* ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry`, or the
  shared :class:`~repro.obs.metrics.NullMetrics` when disabled, so
  instrumentation records unconditionally;
* :meth:`observe_query` / :meth:`observe_write` fold one finished call into
  the registry (latency by kind × path, extraction peak bytes, per-shard
  subplan seconds and skew, write absorption outcomes) and park slow
  queries in the :class:`~repro.obs.slowlog.SlowQueryLog` ring buffer —
  explain text is rendered *only* for queries crossing the threshold.

Query folding is *deferred*, like span materialisation: the serving hot
path appends one pending record per query, and the registry/slow-log work
(series lookups, histogram bisects, the extraction-peak scan over operator
details, warm/cold classification) runs on first read — the ``metrics`` and
``slow_log`` properties flush before returning — or when the pending buffer
hits its cap.  A burst of warm queries nobody is watching pays one list
append each; the scrape that eventually looks folds them all at once.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Optional, Union

from .metrics import BYTES_BUCKETS, MetricsRegistry, NullMetrics
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import Trace

# Shared no-op registry for every disabled Telemetry instance.
_NULL_METRICS = NullMetrics()

# Deferred-fold buffer cap: a flush triggers once this many queries are
# pending, bounding both memory (pending records keep their explanations
# alive) and the latency spike any single flush can cause.
_PENDING_CAP = 256


def serving_path(explanation: Any) -> str:
    """Label a fresh execution ``warm`` (all operator caches hit) or ``cold``."""
    if explanation is None:
        return "cold"
    stats = explanation.session_stats
    hits = int(stats.get("operator_cache_hits", 0))
    misses = int(stats.get("operator_cache_misses", 0))
    return "warm" if hits > 0 and misses == 0 else "cold"


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for a session's telemetry.

    ``slow_query_seconds`` is the slow-log threshold (0 records every
    query — handy for forensics demos); ``slow_log_capacity`` bounds the
    ring buffer.
    """

    enabled: bool = True
    slow_query_seconds: float = 0.25
    slow_log_capacity: int = 128


class Telemetry:
    """Per-session trace minting, metrics registry, and slow-query log."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        if self.config.enabled:
            self._metrics: Any = MetricsRegistry()
            self._slow_log = SlowQueryLog(self.config.slow_log_capacity)
        else:
            self._metrics = _NULL_METRICS
            self._slow_log = SlowQueryLog(1)
        self._ids = itertools.count(1)
        # Resolved series handles for query folding: label-tuple sorting and
        # registry locking happen once per (kind, path), not once per folded
        # query.  Racy inserts are harmless — the registry hands both
        # threads the same underlying series.
        self._query_series: dict = {}
        self._peak_series: dict = {}
        # Deferred query folding: the serving hot path appends records here;
        # the ``metrics``/``slow_log`` properties (or the cap) flush them.
        self._pending: list = []
        self._flush_lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def metrics(self) -> Any:
        """The registry, with every pending query folded in first."""
        if self._pending:
            self._flush()
        return self._metrics

    @property
    def registry(self) -> Any:
        """The raw registry — no pending-query fold.

        For per-query hot-path increments (admission decisions): reading
        :attr:`metrics` there would pay the deferred query fold inside the
        serving window, which is exactly the cost the deferral moves out
        of it.  Direct increments are visible to any later snapshot — the
        fold only *adds* queued query records, it never rewrites counters.
        """
        return self._metrics

    @property
    def slow_log(self) -> SlowQueryLog:
        """The slow-query ring, with every pending query folded in first."""
        if self._pending:
            self._flush()
        return self._slow_log

    @classmethod
    def coerce(cls, value: Union["Telemetry", TelemetryConfig, bool, None]) -> "Telemetry":
        """Normalise the ``QuerySession(telemetry=...)`` knob."""
        if isinstance(value, Telemetry):
            return value
        if isinstance(value, TelemetryConfig):
            return cls(value)
        if value is None or value is True:
            return cls()
        if value is False:
            return DISABLED
        raise TypeError(
            f"telemetry must be a Telemetry, TelemetryConfig or bool, "
            f"got {type(value).__name__}"
        )

    # ------------------------------------------------------------------ #
    # Tracing
    # ------------------------------------------------------------------ #
    def start(self, kind: str) -> Optional[Trace]:
        """A fresh trace for one served call, or ``None`` when disabled."""
        if not self.config.enabled:
            return None
        return Trace(f"t{next(self._ids):06d}", kind, metrics=self._metrics)

    # ------------------------------------------------------------------ #
    # Per-call accounting (deferred: the hot path appends one record)
    # ------------------------------------------------------------------ #
    def observe_query(self, trace: Optional[Trace], kind: str,
                      path: Optional[str], seconds: float,
                      explanation: Any = None) -> None:
        """Queue one finished query for folding into the registry.

        ``path=None`` defers the warm/cold classification too — the flush
        resolves it from the explanation.  The actual folding (series
        lookups, histograms, the slow-log threshold check) happens in
        :meth:`_flush`, triggered by the next ``metrics``/``slow_log`` read
        or by the pending buffer hitting its cap.
        """
        if not self.config.enabled:
            return
        pending = self._pending
        pending.append((trace, kind, path, seconds, explanation))
        if len(pending) >= _PENDING_CAP:
            self._flush()

    def _flush(self) -> None:
        """Fold every pending query record (idempotent, thread-safe)."""
        with self._flush_lock:
            pending, self._pending = self._pending, []
            for record in pending:
                self._fold_query(*record)

    def _fold_query(self, trace: Optional[Trace], kind: str,
                    path: Optional[str], seconds: float,
                    explanation: Any = None) -> None:
        """Fold one finished query into the registry and maybe the slow log."""
        if path is None:
            path = serving_path(explanation)
        metrics = self._metrics
        handles = self._query_series.get((kind, path))
        if handles is None:
            handles = (
                metrics.counter("repro_queries_total", kind=kind, path=path),
                metrics.histogram("repro_query_seconds", kind=kind, path=path),
            )
            self._query_series[(kind, path)] = handles
        handles[0].inc()
        handles[1].observe(seconds)
        if explanation is not None:
            peak = 0
            for op in getattr(explanation, "operators", ()):
                raw = op.detail.get("memory_extract_peak_bytes")
                if raw:
                    peak = max(peak, int(raw))
            if peak:
                peak_hist = self._peak_series.get(kind)
                if peak_hist is None:
                    peak_hist = metrics.histogram(
                        "repro_extract_peak_bytes", buckets=BYTES_BUCKETS,
                        kind=kind,
                    )
                    self._peak_series[kind] = peak_hist
                peak_hist.observe(float(peak))
            reports = getattr(explanation, "shard_reports", None)
            if reports:
                shard_seconds = []
                for row in reports:
                    row_seconds = float(row.get("seconds", 0.0))
                    shard_seconds.append(row_seconds)
                    metrics.observe("repro_shard_subplan_seconds", row_seconds,
                                    shard=row.get("shard", "?"))
                if len(shard_seconds) > 1:
                    mean = sum(shard_seconds) / len(shard_seconds)
                    skew = (max(shard_seconds) / mean) if mean > 0 else 1.0
                    metrics.set_gauge("repro_shard_skew", skew, kind=kind)
        if trace is not None and seconds >= self.config.slow_query_seconds:
            explain_text = ""
            if explanation is not None:
                try:
                    explain_text = explanation.format()
                except Exception:
                    explain_text = ""
            self._slow_log.record(
                SlowQueryEntry(trace, kind, path, seconds, explain_text)
            )

    def observe_write(self, trace: Optional[Trace], op: str, outcome: str,
                      seconds: float, rows: int = 0) -> None:
        """Fold one finished write (append/delete) into the registry.

        Writes fold eagerly (they are orders of magnitude rarer than warm
        reads), flushing pending queries first so the slow log stays
        time-ordered.
        """
        if not self.config.enabled:
            return
        if self._pending:
            self._flush()
        metrics = self._metrics
        metrics.inc("repro_writes_total", op=op, outcome=outcome)
        if rows:
            metrics.inc("repro_write_rows_total", rows, op=op)
        metrics.observe("repro_write_seconds", seconds, op=op)
        if trace is not None and seconds >= self.config.slow_query_seconds:
            self._slow_log.record(SlowQueryEntry(trace, op, outcome, seconds))


# Shared instance for ``telemetry=False`` sessions: everything no-ops, so
# sharing across sessions is safe and keeps the disabled path allocation-free.
DISABLED = Telemetry(TelemetryConfig(enabled=False))
