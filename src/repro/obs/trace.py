"""Structured tracing: per-query span trees with near-zero disabled cost.

Every served call (``evaluate`` / ``submit_batch`` / ``asubmit`` / a write)
gets a :class:`Trace` — an ID plus a tree of timed :class:`Span` nodes —
and the instrumentation hooks threaded through the planner, the physical
operators, the shard executor, the extraction kernels and the parallel
executor attach their spans to whichever trace is *active* on the current
thread.  The design keeps the hot path honest:

* the module-level :func:`span` hook is the only thing instrumented code
  calls; when no trace is active it returns one shared no-op context
  manager — a thread-local read and nothing else, so always-on
  instrumentation costs nanoseconds when telemetry is disabled;
* spans time themselves with ``perf_counter`` and defer all string work
  (tree rendering, attribute formatting) to :meth:`Span.format`, which only
  runs for slow-query forensics and CLI display;
* each trace keeps a *per-thread* span stack, so concurrently served
  queries never interleave their trees, and :meth:`Trace.worker` seeds a
  pool worker's stack with the caller's current span — worker spans (e.g.
  per-shard subplans fanned out by the shard executor) ship back attached
  under the span that submitted them.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed node of a trace tree.

    A span is its own context manager: :meth:`Trace.span` primes it with the
    calling thread's span stack, ``__enter__`` attaches it under the stack
    top and starts the clock, ``__exit__`` stops it and pops.  Folding the
    context manager into the node halves the per-span allocations on the
    warm serving path, where span overhead is the bulk of the telemetry
    budget.
    """

    __slots__ = ("name", "start", "end", "attrs", "children", "_stack", "_defer")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.attrs = attrs
        self.children: List["Span"] = []
        self._stack: Optional[List["Span"]] = None
        self._defer: Any = None

    def __enter__(self) -> "Span":
        stack = self._stack
        # list.append is atomic under the GIL, so worker threads can attach
        # children to a shared parent without locking.
        stack[-1].children.append(self)
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end = perf_counter()
        stack = self._stack
        self._stack = None
        if stack and stack[-1] is self:
            stack.pop()
        return False

    @property
    def seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (lazy dict: most spans carry none)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    # -- deferred subtree construction -------------------------------------- #
    def defer(self, builder: Any) -> None:
        """Register a callable fleshing out this span's subtree lazily.

        The hot path records only the raw facts (a builder object holding
        timestamps and statuses); ``builder(span)`` runs once, the first
        time the tree is introspected — slow-query rendering, the CLI
        ``trace`` command, test assertions — so a served query that nobody
        looks at never pays for materialising its per-operator spans.
        """
        self._defer = builder

    def _realize(self) -> None:
        # Move-then-call so a re-entrant introspection (the builder itself
        # walks ``children``) cannot run the builder twice.
        builder, self._defer = self._defer, None
        if builder is not None:
            builder(self)

    # -- introspection (off the hot path) ---------------------------------- #
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        if self._defer is not None:
            self._realize()
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able tree (exporters and the slow-query log)."""
        if self._defer is not None:
            self._realize()
        out: Dict[str, Any] = {"name": self.name, "seconds": round(self.seconds, 9)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def format(self, indent: int = 0) -> str:
        """Human-readable tree rendering (CLI ``trace`` command)."""
        if self._defer is not None:
            self._realize()
        attrs = ""
        if self.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(self.attrs.items())
            )
        lines = [f"{'  ' * indent}{self.name} ({self.seconds * 1e3:.3f} ms){attrs}"]
        lines.extend(child.format(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, {len(self.children)} children)"


class _WorkerContext:
    """Seeds a pool worker thread's span stack with the caller's span.

    Also installs the trace as the worker thread's *active* one, so the
    module-level :func:`span` hooks inside instrumented layers (planner,
    extraction) attach their spans under ``parent`` instead of silently
    no-oping on the pool thread.
    """

    __slots__ = ("_trace", "_parent", "_saved")

    def __init__(self, trace: "Trace", parent: Span) -> None:
        self._trace = trace
        self._parent = parent
        self._saved: Any = None

    def __enter__(self) -> Span:
        local = self._trace._ensure_local()
        self._saved = (
            getattr(local, "stack", None),
            getattr(_ACTIVE, "trace", None),
            getattr(_ACTIVE, "stack", None),
        )
        stack = [self._parent]
        local.stack = stack
        _ACTIVE.trace = self._trace
        _ACTIVE.stack = stack
        return self._parent

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        # Restore whatever the (reused, persistent) pool thread had, so a
        # later task of a different trace never sees a stale stack.
        prior_stack, prior_trace, prior_active = self._saved
        self._trace._ensure_local().stack = prior_stack
        _ACTIVE.trace = prior_trace
        _ACTIVE.stack = prior_active
        return False


class Trace:
    """One served call's span tree, rooted at ``root``.

    ``metrics`` optionally carries the owning telemetry's metrics registry so
    deep instrumentation (e.g. the parallel executor's queue-wait histogram)
    can record without a back-reference to the session.

    The per-thread span stacks live in two places: the serving hot path
    (:func:`activate` + module-level :func:`span`) keeps this thread's stack
    in the ``_ACTIVE`` thread-local only, so minting a trace allocates no
    ``threading.local`` (and no cyclic garbage for the GC); direct
    ``trace.span(...)`` use without activation falls back to a lazily
    created per-trace local.
    """

    __slots__ = ("trace_id", "kind", "root", "metrics", "_local")

    def __init__(self, trace_id: str, kind: str, metrics: Any = None) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.root = Span(kind)
        self.root.start = perf_counter()
        self.metrics = metrics
        self._local: Optional[threading.local] = None

    def _ensure_local(self) -> threading.local:
        local = self._local
        if local is None:
            with _LOCAL_INIT_LOCK:
                local = self._local
                if local is None:
                    local = threading.local()
                    self._local = local
        return local

    def _stack(self) -> List[Span]:
        # Fast path: this trace is the thread's active one, its stack is
        # cached in the activation thread-local.
        if getattr(_ACTIVE, "trace", None) is self:
            return _ACTIVE.stack
        local = self._ensure_local()
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = [self.root]
            local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """A child span of the current thread's innermost open span."""
        child = Span(name, attrs or None)
        child._stack = self._stack()
        return child

    def current_span(self) -> Span:
        return self._stack()[-1]

    def worker(self, parent: Span) -> _WorkerContext:
        """Context manager rooting this thread's spans under ``parent``."""
        return _WorkerContext(self, parent)

    def finish(self) -> None:
        self.root.end = perf_counter()

    # -- introspection ------------------------------------------------------ #
    @property
    def seconds(self) -> float:
        return self.root.seconds

    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def span_names(self) -> List[str]:
        """Every span name in depth-first order (test assertions)."""
        return [node.name for node in self.root.walk()]

    def format(self) -> str:
        return f"trace {self.trace_id} ({self.kind})\n{self.root.format(indent=1)}"


class _NullSpan:
    """Shared no-op span/context-manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

# Guards lazy creation of a trace's fallback threading.local (direct
# trace.span() use and pool-worker seeding; the activation path never
# creates one).
_LOCAL_INIT_LOCK = threading.Lock()

# The active trace is per-thread: concurrently served queries (submit_batch
# fan-out, asubmit pool) each activate their own trace on their own thread.
# ``_ACTIVE.stack`` caches the active trace's span stack for this thread so
# the module-level hooks are a single thread-local read.
_ACTIVE = threading.local()


def current_trace() -> Optional[Trace]:
    """The trace active on this thread (``None`` when telemetry is off)."""
    return getattr(_ACTIVE, "trace", None)


class _Activation:
    """Context manager installing a trace as this thread's active one.

    Caches the trace's span stack for this thread in ``_ACTIVE`` alongside
    the trace itself, so the module-level :func:`span` fast path is a single
    thread-local read instead of a trace → local → stack chain.
    """

    __slots__ = ("_trace", "_prev")

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._prev: Any = None

    def __enter__(self) -> Trace:
        self._prev = install(self._trace)
        return self._trace

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        restore(self._prev)
        return False


def activate(trace: Trace) -> _Activation:
    """Install ``trace`` as the active trace for the dynamic extent."""
    return _Activation(trace)


def install(trace: Trace) -> Any:
    """Plain-function activation: install ``trace``, return a restore token.

    The serving wrapper uses :func:`install` / :func:`restore` inside its
    own ``try/finally`` instead of :func:`activate`, skipping the context
    manager allocation and protocol dispatch on the per-query hot path.
    """
    prev = (getattr(_ACTIVE, "trace", None), getattr(_ACTIVE, "stack", None))
    # Adopt a stack this thread already opened via direct trace.span()
    # use; otherwise start fresh from the root — WITHOUT creating the
    # per-trace local (the serving hot path never needs it).
    local = trace._local
    stack = getattr(local, "stack", None) if local is not None else None
    if stack is None:
        stack = [trace.root]
    _ACTIVE.trace = trace
    _ACTIVE.stack = stack
    return prev


def restore(token: Any) -> None:
    """Undo a matching :func:`install`."""
    _ACTIVE.trace, _ACTIVE.stack = token


def span(name: str, **attrs: Any):
    """A span under the active trace, or the shared no-op when inactive.

    This is the hook every instrumented layer calls.  The disabled cost is
    one thread-local read plus returning a shared object — no allocation,
    no timing, no string work.  The enabled cost is that same read (the
    activation pre-resolved this thread's span stack) plus one ``Span``
    allocation.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        return NULL_SPAN
    child = Span(name, attrs or None)
    child._stack = stack
    return child


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span of the active trace.

    The cheap sibling of :func:`span` for hot-path facts that need no
    timing of their own — cache probe outcomes, chosen modes.  One
    thread-local read and a dict update; a no-op when telemetry is off.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        return
    top = stack[-1]
    if top.attrs is None:
        top.attrs = attrs
    else:
        top.attrs.update(attrs)
