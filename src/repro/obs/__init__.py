"""Observability substrate: structured tracing, metrics, slow-query log.

Three pieces, designed to be always-on with bounded overhead:

* :mod:`repro.obs.trace` — per-call span trees; instrumented layers call
  the module-level :func:`span` hook, which degrades to a shared no-op
  when no trace is active on the thread;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with snapshot + delta APIs and JSON / Prometheus-text exporters;
* :mod:`repro.obs.slowlog` — a ring buffer of full span trees (+ explain)
  for queries over a configurable threshold.

:class:`Telemetry` bundles them per session; ``QuerySession(telemetry=...)``
is the user-facing knob.
"""

from .metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
)
from .slowlog import SlowQueryEntry, SlowQueryLog
from .telemetry import DISABLED, Telemetry, TelemetryConfig
from .trace import NULL_SPAN, Span, Trace, activate, annotate, current_trace, span

__all__ = [
    "BYTES_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
    "SlowQueryEntry",
    "SlowQueryLog",
    "DISABLED",
    "Telemetry",
    "TelemetryConfig",
    "NULL_SPAN",
    "Span",
    "Trace",
    "activate",
    "annotate",
    "current_trace",
    "span",
]
