"""Metrics registry: counters, gauges, fixed-bucket histograms, exporters.

The registry is deliberately small and allocation-light.  Series are keyed
by ``(metric name, sorted label tuple)``; the hot-path operations
(``Counter.inc``, ``Histogram.observe``) take one per-series lock and touch
a handful of ints.  Heavier work — label sorting for *new* series, snapshot
assembly, JSON / Prometheus rendering — happens only on the pull path
(``session.metrics()`` / exporters).

Two snapshot layers sit on top:

* :meth:`MetricsRegistry.snapshot` freezes every series into a plain-dict
  :class:`MetricsSnapshot`;
* :meth:`MetricsSnapshot.delta` subtracts an earlier snapshot (counters and
  histogram buckets subtract; gauges keep the later value), which is what
  tests and capacity dashboards want: "what did this batch of queries do".

:class:`NullMetrics` mirrors the registry API with shared no-op objects so
disabled-telemetry code paths can call ``metrics.inc(...)`` unconditionally.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelTuple = Tuple[Tuple[str, str], ...]

# Default bucket ladders: query latency (seconds) and byte sizes.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
BYTES_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << p) for p in (10, 12, 14, 16, 18, 20, 22, 24, 26, 28)
)


def _label_tuple(labels: Dict[str, Any]) -> LabelTuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (float assignment is atomic)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``counts[i]`` holds observations with ``value <= bounds[i]``;
    ``counts[-1]`` is the +Inf overflow bucket.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


_KIND_COUNTER = "counter"
_KIND_GAUGE = "gauge"
_KIND_HISTOGRAM = "histogram"


class MetricsRegistry:
    """Named families of labelled counter/gauge/histogram series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, help, {label_tuple: series})
        self._families: Dict[str, Tuple[str, str, Dict[LabelTuple, Any]]] = {}

    # -- series access ------------------------------------------------------ #
    def _series(self, name: str, kind: str, help_text: str,
                labels: Dict[str, Any], factory) -> Any:
        key = _label_tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}, not {kind}"
                )
            series = family[2].get(key)
            if series is None:
                series = factory()
                family[2][key] = series
            return series

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        return self._series(name, _KIND_COUNTER, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        return self._series(name, _KIND_GAUGE, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._series(name, _KIND_HISTOGRAM, help_text, labels,
                            lambda: Histogram(buckets))

    # -- hot-path conveniences ---------------------------------------------- #
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Iterable[float] = LATENCY_BUCKETS, **labels: Any) -> None:
        self.histogram(name, buckets=buckets, **labels).observe(value)

    # -- snapshotting -------------------------------------------------------- #
    def snapshot(self) -> "MetricsSnapshot":
        families: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            items = [
                (name, kind, help_text, dict(series))
                for name, (kind, help_text, series) in self._families.items()
            ]
        for name, kind, help_text, series_map in items:
            series_out: Dict[LabelTuple, Any] = {}
            for key, series in series_map.items():
                if kind == _KIND_COUNTER:
                    series_out[key] = series.value
                elif kind == _KIND_GAUGE:
                    series_out[key] = series.value
                else:
                    with series._lock:
                        series_out[key] = {
                            "bounds": series.bounds,
                            "counts": list(series.counts),
                            "sum": series.sum,
                            "count": series.count,
                        }
            families[name] = {"kind": kind, "help": help_text, "series": series_out}
        return MetricsSnapshot(families)


class MetricsSnapshot:
    """A frozen copy of every series, with delta arithmetic and exporters."""

    def __init__(self, families: Dict[str, Dict[str, Any]]) -> None:
        self.families = families

    # -- reading ------------------------------------------------------------ #
    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Counter/gauge value for one series (histograms: use ``histogram``)."""
        family = self.families.get(name)
        if family is None:
            return default
        got = family["series"].get(_label_tuple(labels))
        if got is None or isinstance(got, dict):
            return default
        return got

    def histogram(self, name: str, **labels: Any) -> Optional[Dict[str, Any]]:
        family = self.families.get(name)
        if family is None:
            return None
        got = family["series"].get(_label_tuple(labels))
        return got if isinstance(got, dict) else None

    def names(self) -> List[str]:
        return sorted(self.families)

    # -- delta --------------------------------------------------------------- #
    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus ``earlier`` (gauges keep this snapshot's value)."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, family in self.families.items():
            prev_family = earlier.families.get(name)
            prev_series = prev_family["series"] if prev_family else {}
            series_out: Dict[LabelTuple, Any] = {}
            for key, value in family["series"].items():
                prev = prev_series.get(key)
                if family["kind"] == _KIND_GAUGE or prev is None:
                    series_out[key] = value
                elif isinstance(value, dict):
                    series_out[key] = {
                        "bounds": value["bounds"],
                        "counts": [a - b for a, b in
                                   zip(value["counts"], prev["counts"])],
                        "sum": value["sum"] - prev["sum"],
                        "count": value["count"] - prev["count"],
                    }
                else:
                    series_out[key] = value - prev
            out[name] = {"kind": family["kind"], "help": family["help"],
                         "series": series_out}
        return MetricsSnapshot(out)

    # -- exporters ------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON structure (labels flattened to ``k=v,...`` strings)."""
        out: Dict[str, Any] = {}
        for name in sorted(self.families):
            family = self.families[name]
            series_out: Dict[str, Any] = {}
            for key in sorted(family["series"]):
                label_str = ",".join(f"{k}={v}" for k, v in key)
                value = family["series"][key]
                if isinstance(value, dict):
                    series_out[label_str] = {
                        "buckets": {str(b): c for b, c in
                                    zip(value["bounds"], value["counts"])},
                        "overflow": value["counts"][-1],
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                else:
                    series_out[label_str] = value
            out[name] = {"kind": family["kind"], "series": series_out}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for name in sorted(self.families):
            family = self.families[name]
            kind = family["kind"]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(family["series"]):
                value = family["series"][key]
                if kind == _KIND_HISTOGRAM:
                    cumulative = 0
                    for bound, count in zip(value["bounds"], value["counts"]):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket{{{_prom_labels(key, le=_prom_float(bound))}}}"
                            f" {cumulative}"
                        )
                    cumulative += value["counts"][-1]
                    lines.append(
                        f"{name}_bucket{{{_prom_labels(key, le='+Inf')}}} {cumulative}"
                    )
                    suffix = _prom_labels(key)
                    braces = f"{{{suffix}}}" if suffix else ""
                    lines.append(f"{name}_sum{braces} {_prom_float(value['sum'])}")
                    lines.append(f"{name}_count{braces} {value['count']}")
                else:
                    suffix = _prom_labels(key)
                    braces = f"{{{suffix}}}" if suffix else ""
                    lines.append(f"{name}{braces} {_prom_float(value)}")
        return "\n".join(lines) + "\n"


def _prom_float(value: float) -> str:
    """Render a float the way Prometheus likes (ints without trailing .0)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(key: LabelTuple, **extra: str) -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in key]
    parts.extend(f'{k}="{_prom_escape(v)}"' for k, v in extra.items())
    return ",".join(parts)


class _NullMetric:
    """Shared object absorbing every counter/gauge/histogram call."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()
_EMPTY_SNAPSHOT = MetricsSnapshot({})


class NullMetrics:
    """Registry stand-in for disabled telemetry: every call is a no-op."""

    __slots__ = ()

    def counter(self, name: str, help_text: str = "", **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS,
                  **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float,
                buckets: Iterable[float] = LATENCY_BUCKETS, **labels: Any) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        return _EMPTY_SNAPSHOT
