"""Slow-query forensics: a bounded ring buffer of full span trees.

Queries whose wall time crosses the configured threshold get their complete
trace (span tree, attributes, explain text) parked here; ``repro-cli trace
<id>`` and the serve loop's ``trace`` command replay them.  The buffer is a
``deque(maxlen=...)`` — old entries fall off, memory stays bounded no matter
how long the session runs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from .trace import Trace


class SlowQueryEntry:
    """One recorded slow query: the trace plus context captured at record time."""

    __slots__ = ("trace", "kind", "path", "seconds", "explain_text", "detail")

    def __init__(self, trace: Trace, kind: str, path: str, seconds: float,
                 explain_text: str = "", detail: Optional[Dict[str, Any]] = None) -> None:
        self.trace = trace
        self.kind = kind
        self.path = path
        self.seconds = seconds
        self.explain_text = explain_text
        self.detail = detail or {}

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace.trace_id,
            "kind": self.kind,
            "path": self.path,
            "seconds": round(self.seconds, 9),
            "spans": self.trace.root.to_dict(),
            "explain": self.explain_text,
            "detail": dict(self.detail),
        }

    def format(self) -> str:
        header = (f"slow query {self.trace.trace_id}: kind={self.kind} "
                  f"path={self.path} seconds={self.seconds:.6f}")
        body = self.trace.root.format(indent=1)
        parts = [header, body]
        if self.explain_text:
            parts.append("explain:")
            parts.extend("  " + line for line in self.explain_text.splitlines())
        return "\n".join(parts)


class SlowQueryLog:
    """Thread-safe ring buffer of :class:`SlowQueryEntry` records."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = int(capacity)
        self._entries: "deque[SlowQueryEntry]" = deque(maxlen=max(self.capacity, 1))
        self._lock = threading.Lock()

    def record(self, entry: SlowQueryEntry) -> None:
        with self._lock:
            self._entries.append(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[SlowQueryEntry]:
        """Newest last."""
        with self._lock:
            return list(self._entries)

    def get(self, trace_id: str) -> Optional[SlowQueryEntry]:
        with self._lock:
            for entry in reversed(self._entries):
                if entry.trace.trace_id == trace_id:
                    return entry
        return None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
