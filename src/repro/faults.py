"""Deterministic fault injection, and the retry policy that answers it.

The serving path is instrumented with *named fault sites* — single calls to
:func:`fault_site` at the places real failures originate:

* ``pool.task`` — inside each parallel-executor pool task (worker crashes,
  slow/hung workers);
* ``shard.subplan`` — at the top of each shard subplan evaluation;
* ``extract.alloc`` — before the extraction kernels allocate their
  boolean/coordinate temporaries (allocation failures);
* ``backend.matmul`` — before a matmul backend multiplies (backend errors).

A :class:`FaultPlan` is a seeded, bounded schedule of failures against those
sites: each :class:`FaultRule` names a site, a fault kind (``crash`` /
``slow`` / ``alloc`` / ``error``), how many times it fires and with what
probability (drawn from the plan's own RNG, so a given seed replays the
exact same failure sequence).  :func:`inject` installs a plan process-wide
for a ``with`` block — pool worker threads must see it too, so the hook is a
module global, not a thread-local — and the plan's :attr:`FaultPlan.fired`
log records every injection for test assertions.

:class:`RetryPolicy` is the recovery half: bounded attempts with jittered
exponential backoff, deterministic under a seed.  :func:`run_with_retry`
drives a callable through a policy with an injectable sleep/RNG (unit tests
use a fake clock and assert the exact backoff schedule).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Type

from repro.errors import WorkerCrashError

# Instrumented site names (kept in one place so tests and instrumentation
# cannot drift apart on spelling).
SITE_POOL_TASK = "pool.task"
SITE_SHARD_SUBPLAN = "shard.subplan"
SITE_EXTRACT_ALLOC = "extract.alloc"
SITE_BACKEND_MATMUL = "backend.matmul"


@dataclass(frozen=True)
class FaultRule:
    """One scheduled failure mode at a named site.

    ``count`` bounds how many times the rule fires (``crash`` rules with
    ``count=1`` model a single worker death; a huge count models an
    unrecoverable fault).  ``probability`` < 1 makes firing a seeded coin
    flip per matching call.  ``delay_ms`` only applies to ``slow`` faults.
    """

    site: str
    kind: str  # "crash" | "slow" | "alloc" | "error"
    count: int = 1
    probability: float = 1.0
    delay_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "slow", "alloc", "error"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )


class FaultPlan:
    """A seeded, bounded schedule of injected failures.

    One RNG seeded at construction drives every probabilistic decision, so
    the same plan (seed + rules) replays the identical failure sequence —
    the chaos axis of the differential harness depends on that.  ``sleep``
    is injectable so slow-task faults can run against a fake clock.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.rules = list(rules)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._remaining = [rule.count for rule in self.rules]
        self._sleep = sleep
        self.fired: List[Tuple[str, str]] = []

    @property
    def exhausted(self) -> bool:
        """Whether every rule has fired its full count."""
        return all(left == 0 for left in self._remaining)

    def maybe(self, site: str) -> None:
        """Fire the first armed rule matching ``site`` (if its coin lands).

        ``crash`` raises :class:`~repro.errors.WorkerCrashError`, ``alloc``
        raises ``MemoryError``, ``error`` raises ``RuntimeError`` (a stand-in
        for an arbitrary backend exception), ``slow`` sleeps ``delay_ms``.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site or self._remaining[index] == 0:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._remaining[index] -= 1
            self.fired.append((site, rule.kind))
            if rule.kind == "crash":
                raise WorkerCrashError(f"injected worker crash at {site!r}")
            if rule.kind == "alloc":
                raise MemoryError(f"injected allocation failure at {site!r}")
            if rule.kind == "error":
                raise RuntimeError(f"injected backend error at {site!r}")
            self._sleep(rule.delay_ms / 1000.0)
            return


# The active plan is a module global (NOT a thread-local): injected faults
# must fire inside pool worker threads, which never see the installing
# thread's locals.  ``None`` is the permanent production state; the hook
# below reads one global and compares against ``None``.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def fault_site(site: str) -> None:
    """The injection hook instrumented code calls at each named site."""
    plan = _ACTIVE_PLAN
    if plan is not None:
        plan.maybe(site)


class _Injection:
    """Context manager installing a fault plan process-wide."""

    __slots__ = ("_plan", "_prev")

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._prev: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE_PLAN
        self._prev = _ACTIVE_PLAN
        _ACTIVE_PLAN = self._plan
        return self._plan

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        global _ACTIVE_PLAN
        _ACTIVE_PLAN = self._prev
        return False


def inject(plan: FaultPlan) -> _Injection:
    """Install ``plan`` for the dynamic extent of a ``with`` block."""
    return _Injection(plan)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff.

    ``max_attempts`` counts the first try: 3 means one try plus at most two
    retries.  The ``attempt``-th retry (1-based) backs off
    ``base_delay_ms * 2**(attempt-1)`` capped at ``max_delay_ms``, with a
    uniform jitter of ±``jitter`` (as a fraction of the delay) drawn from a
    seeded RNG — deterministic given the seed, decorrelated across retries.
    """

    max_attempts: int = 3
    base_delay_ms: float = 5.0
    max_delay_ms: float = 100.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Delay before the ``attempt``-th retry (1-based), in seconds."""
        delay_ms = min(self.base_delay_ms * (2.0 ** (attempt - 1)),
                       self.max_delay_ms)
        if self.jitter > 0.0:
            delay_ms *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay_ms, 0.0) / 1000.0


DEFAULT_RETRY_POLICY = RetryPolicy()


def run_with_retry(
    func: Callable[[], Any],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    retryable: Tuple[Type[BaseException], ...] = (WorkerCrashError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> Any:
    """Call ``func`` under ``policy``, retrying on ``retryable`` errors.

    ``sleep`` is injectable for fake-clock tests; ``on_retry(attempt, exc)``
    fires before each backoff (metrics hooks).  The last error propagates
    unchanged once attempts are exhausted.
    """
    rng = policy.rng()
    attempt = 0
    while True:
        try:
            return func()
        except retryable as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.backoff_seconds(attempt, rng)
            if delay > 0.0:
                sleep(delay)
