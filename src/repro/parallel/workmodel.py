"""Deterministic parallel work model.

The multi-core figures of the paper (4d-4g, 5d/5g/5h, 7a-7d and 3b) plot
running time against core count on a 20-core Xeon.  Real thread-level
speedups in a Python reproduction are noisy and bounded by the GIL for the
non-matrix phases, so the bench harness reports *both* the measured times
(where meaningful) and the projection of a deterministic work model:

* each algorithm is described by its *parallel fraction* — the share of its
  single-core work that partitions coordination-free (the matrix product and
  per-x probing for MMJoin, the heavy join for SizeAware, per-partition work
  for PIEJoin);
* per-core times follow Amdahl's law with an optional per-core efficiency
  factor.

This keeps the per-core series reproducible in CI while preserving the
paper's qualitative message: methods with a larger coordination-free
fraction (MMJoin, SizeAware++) scale better than those with a serial
bottleneck (SizeAware's light phase, PIEJoin's skewed partitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


def amdahl_speedup(cores: int, parallel_fraction: float, efficiency: float = 1.0) -> float:
    """Amdahl's-law speedup with a per-core efficiency discount.

    ``speedup = 1 / ((1 - f) + f / (1 + eff * (cores - 1)))``.
    """
    cores = max(int(cores), 1)
    fraction = min(max(parallel_fraction, 0.0), 1.0)
    effective_cores = 1.0 + max(efficiency, 0.0) * (cores - 1)
    return 1.0 / ((1.0 - fraction) + fraction / effective_cores)


@dataclass(frozen=True)
class ParallelWorkModel:
    """Projects a measured single-core time onto a core-count sweep."""

    parallel_fraction: float
    efficiency: float = 0.9

    def time_at(self, single_core_seconds: float, cores: int) -> float:
        """Projected running time on ``cores`` cores."""
        return single_core_seconds / amdahl_speedup(cores, self.parallel_fraction, self.efficiency)

    def series(
        self, single_core_seconds: float, core_counts: Iterable[int]
    ) -> List[Tuple[int, float]]:
        """Projected (cores, seconds) series for a sweep of core counts."""
        return [(int(c), self.time_at(single_core_seconds, int(c))) for c in core_counts]


# Parallel fractions used by the benchmarks.  They encode which share of each
# algorithm's work is coordination-free, per the discussion in Sections 4 & 6.
ALGORITHM_PARALLEL_FRACTIONS: Dict[str, float] = {
    "mmjoin": 0.95,          # matrix product + per-x probing partition freely
    "non-mmjoin": 0.80,      # per-x probing partitions, dedup structures contend
    "sizeaware": 0.55,       # light-set subset generation needs coordination
    "sizeaware++": 0.90,     # both phases delegated to matrix / partitioned work
    "piejoin": 0.70,         # partitions are independent but skewed
    "pretti": 0.75,
    "limit": 0.75,
    "matrix_multiply": 0.97,
    "matrix_construction": 0.85,
}


def model_for(algorithm: str, efficiency: float = 0.9) -> ParallelWorkModel:
    """The work model registered for an algorithm name (defaults to 0.8)."""
    fraction = ALGORITHM_PARALLEL_FRACTIONS.get(algorithm, 0.8)
    return ParallelWorkModel(parallel_fraction=fraction, efficiency=efficiency)
