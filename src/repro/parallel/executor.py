"""Coordination-free parallel execution of the MMJoin phases (Section 6).

The paper's key parallelisation argument is that both phases of MMJoin
partition trivially:

* the matrix product splits by row blocks of the left operand — each worker
  multiplies its block against the full right operand with no interaction;
* the light probing splits by x value — each worker owns a slice of the
  x domain and produces its output pairs independently.

Because numpy's BLAS kernels release the GIL, a thread pool achieves real
parallel speedups for the matrix part; the light probing is a vectorized
NumPy gather (see :func:`repro.joins.baseline.probe_pairs_block`), which
also releases the GIL for the bulk of its work.

:func:`parallel_two_path` is a thin wrapper over the shared planner
pipeline: with ``cores > 1`` the ``combinatorial_light`` operator probes in
per-core chunks — every worker returns a columnar
:class:`~repro.data.pairblock.PairBlock`, and the merge is one array
concatenation plus a single packed-key ``np.unique`` instead of per-worker
set unions — and the dense backend row-partitions the heavy product via
:func:`parallel_matmul`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.data.relation import Relation
from repro.errors import (
    QueryTimeoutError,
    WorkerCrashError,
    current_deadline,
    install_deadline,
    restore_deadline,
)
from repro.faults import DEFAULT_RETRY_POLICY, SITE_POOL_TASK, RetryPolicy, fault_site
from repro.matmul.dense import accumulation_dtype
from repro.obs.trace import current_trace

T = TypeVar("T")
R = TypeVar("R")
Pair = Tuple[int, int]


def _traced_task(trace, func: Callable[[T], R]) -> Callable[[T], R]:
    """Carry the caller's trace (and queue-wait accounting) into pool workers."""
    parent = trace.current_span()
    metrics = trace.metrics
    submitted = time.perf_counter()

    def run(item: T) -> R:
        if metrics is not None:
            metrics.observe("repro_pool_wait_seconds",
                            time.perf_counter() - submitted, pool="parallel")
        with trace.worker(parent):
            return func(item)

    return run


def _pool_task(func: Callable[[T], R], deadline: Any) -> Callable[[T], R]:
    """Carry the caller's deadline into pool workers; fire the fault site.

    Installed around every pool task so (a) cooperative-cancellation
    checkpoints inside the task see the submitting query's deadline and
    (b) the ``pool.task`` fault-injection site covers real worker execution.
    """

    def run(item: T) -> R:
        token = install_deadline(deadline)
        try:
            fault_site(SITE_POOL_TASK)
            return func(item)
        finally:
            restore_deadline(token)

    return run


@dataclass
class ParallelExecutor:
    """A small thread-pool wrapper with chunking helpers and crash recovery.

    With ``persistent=True`` the executor keeps one thread pool alive across
    ``map`` calls instead of spinning a fresh pool up per call — the serving
    layer (:class:`~repro.serve.session.QuerySession`) hands every operator
    the same persistent executor so repeated queries skip pool start-up.

    ``map`` is resilient: a task that raises
    :class:`~repro.errors.WorkerCrashError` (or a broken pool) is retried
    under ``retry_policy`` — rebuilding the persistent pool first when the
    worker *hung* (``hang_timeout`` seconds without returning) or the pool
    broke — and once retries are exhausted the item degrades to inline
    execution on the caller thread.  Sibling tasks' results are never
    discarded by one task's failure.
    """

    cores: int = 1
    persistent: bool = False
    retry_policy: Optional[RetryPolicy] = None
    hang_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        self.cores = max(int(self.cores), 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """Whether the pool was abandoned as unrecoverable (inline mode)."""
        return self._degraded

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item, in parallel when cores > 1."""
        if self.cores == 1 or len(items) <= 1 or self._degraded:
            return [func(item) for item in items]
        # Pool workers run on their own threads, where the caller's active
        # trace (and deadline) is invisible; wrap the task so each worker
        # (a) reports its queue wait, (b) roots its spans under the
        # submitting span — worker spans ship back with the results — and
        # (c) sees the submitting query's deadline at its checkpoints.
        trace = current_trace()
        task = _pool_task(func, current_deadline())
        if trace is not None:
            task = _traced_task(trace, task)
        metrics = trace.metrics if trace is not None else None
        if self.persistent:
            return self._map_resilient(self._ensure_pool(), task, func,
                                       items, metrics)
        with ThreadPoolExecutor(max_workers=self.cores) as pool:
            return self._map_resilient(pool, task, func, items, metrics)

    def _map_resilient(
        self,
        pool: ThreadPoolExecutor,
        task: Callable[[T], R],
        func: Callable[[T], R],
        items: Sequence[T],
        metrics: Any,
    ) -> List[R]:
        deadline = current_deadline()
        try:
            futures = [pool.submit(task, item) for item in items]
        except RuntimeError:
            # Broken pool (or racing close()): this call runs inline; the
            # recovery machinery below only engages for per-task failures.
            self._note_degraded(metrics)
            return [func(item) for item in items]
        results: List[R] = []
        for index, future in enumerate(futures):
            try:
                results.append(self._await(future, deadline))
            except QueryTimeoutError:
                for later in futures[index + 1:]:
                    later.cancel()
                raise
            except (WorkerCrashError, BrokenExecutor) as exc:
                results.append(
                    self._recover(task, func, items[index], exc, metrics,
                                  deadline)
                )
        return results

    def _await(self, future: Any, deadline: Any) -> Any:
        """One future's result, watching the deadline and the hang timeout."""
        hang = self.hang_timeout
        if deadline is None and hang is None:
            return future.result()
        waited = 0.0
        while True:
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    future.cancel()
                    deadline.check("pool.await")
                timeout = remaining if hang is None else min(remaining,
                                                             hang - waited)
            else:
                timeout = hang - waited
            try:
                return future.result(timeout=max(timeout, 1e-3))
            except FuturesTimeout:
                waited += max(timeout, 1e-3)
                if hang is not None and waited >= hang:
                    future.cancel()
                    raise WorkerCrashError(
                        f"pool worker hung past {hang:g}s", hung=True
                    ) from None

    def _recover(
        self,
        task: Callable[[T], R],
        func: Callable[[T], R],
        item: T,
        first_exc: BaseException,
        metrics: Any,
        deadline: Any,
    ) -> R:
        """Retry one failed task under the policy; degrade inline at the end."""
        policy = self.retry_policy or DEFAULT_RETRY_POLICY
        rng = policy.rng()
        exc = first_exc
        for attempt in range(1, policy.max_attempts):
            if metrics is not None:
                metrics.inc("repro_retries_total", scope="pool")
            delay = policy.backoff_seconds(attempt, rng)
            if deadline is not None:
                delay = min(delay, max(deadline.remaining(), 0.0))
            if delay > 0.0:
                time.sleep(delay)
            try:
                if self.persistent:
                    # A hung worker's thread is lost capacity and a broken
                    # pool accepts no work: rebuild before resubmitting.
                    if isinstance(exc, BrokenExecutor) or getattr(exc, "hung", False):
                        self._rebuild_pool(metrics)
                    future = self._ensure_pool().submit(task, item)
                    return self._await(future, deadline)
                return task(item)
            except (WorkerCrashError, BrokenExecutor) as retry_exc:
                exc = retry_exc
        # Retries exhausted: run the raw function inline on the caller
        # thread (bypassing the pool and its task instrumentation).  Pool-
        # level failures additionally mark the executor degraded so later
        # ``map`` calls skip the doomed pool entirely.
        if isinstance(exc, BrokenExecutor) or getattr(exc, "hung", False):
            self._degraded = True
        if metrics is not None:
            metrics.inc("repro_degraded_total", scope="pool")
        return func(item)

    def _note_degraded(self, metrics: Any) -> None:
        self._degraded = True
        if metrics is not None:
            metrics.inc("repro_degraded_total", scope="pool")

    def _rebuild_pool(self, metrics: Any = None) -> ThreadPoolExecutor:
        """Abandon the current persistent pool and start a fresh one.

        ``shutdown(wait=False)`` lets already-queued sibling tasks finish on
        the old pool (their futures stay valid) without blocking recovery on
        a thread that may never return.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        if metrics is not None:
            metrics.inc("repro_pool_rebuilds_total")
        return self._ensure_pool()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Locked: concurrent first calls racing here would each build a pool
        # and leak whichever one loses the assignment.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.cores, thread_name_prefix="repro-parallel"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (no-op for per-call pools)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def chunks(self, items: Sequence[T]) -> List[Sequence[T]]:
        """Split a sequence into one contiguous chunk per core."""
        n = len(items)
        if n == 0:
            return []
        per_chunk = max((n + self.cores - 1) // self.cores, 1)
        return [items[i : i + per_chunk] for i in range(0, n, per_chunk)]

    def chunk_ranges(self, total: int) -> List[Tuple[int, int]]:
        """Split ``range(total)`` into per-core (start, stop) ranges."""
        if total <= 0:
            return []
        per_chunk = max((total + self.cores - 1) // self.cores, 1)
        return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def parallel_matmul(
    left: np.ndarray,
    right: np.ndarray,
    cores: int = 1,
) -> np.ndarray:
    """Row-partitioned parallel matrix product.

    The left operand is split into one row block per core and each block is
    multiplied against the full right operand in its own thread.  BLAS
    releases the GIL so the blocks genuinely run concurrently.
    """
    # Same overflow guard as count_matmul: counts are bounded by the inner
    # dimension, so past float32's exact-integer range widen to float64.
    a = np.asarray(left)
    b = np.asarray(right)
    dtype = accumulation_dtype(a.shape[1] if a.ndim == 2 else 0)
    a = np.ascontiguousarray(a, dtype=dtype)
    b = np.ascontiguousarray(b, dtype=dtype)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    executor = ParallelExecutor(cores=cores)
    ranges = executor.chunk_ranges(a.shape[0])
    if len(ranges) <= 1:
        return a @ b
    out = np.empty((a.shape[0], b.shape[1]), dtype=dtype)

    def multiply_block(block: Tuple[int, int]) -> Tuple[int, int]:
        lo, hi = block
        out[lo:hi] = a[lo:hi] @ b
        return block

    executor.map(multiply_block, ranges)
    return out


@dataclass
class ParallelJoinResult:
    """Output and timing of a parallel two-path evaluation."""

    pairs: Set[Pair]
    seconds: float
    cores: int
    light_seconds: float = 0.0
    matrix_seconds: float = 0.0


def parallel_two_path(
    left: Relation,
    right: Relation,
    delta1: int,
    delta2: int,
    cores: int = 1,
    config: MMJoinConfig = DEFAULT_CONFIG,
    session=None,
) -> ParallelJoinResult:
    """Evaluate the 2-path MMJoin with explicit thresholds across ``cores`` workers.

    Used by the multi-core benchmarks (Figures 4d-4g).  The evaluation goes
    through the shared planner pipeline; the explicit thresholds pin the
    strategy to mmjoin and ``cores`` drives both the chunked light probing
    and the row-partitioned heavy product.

    ``session`` attaches a :class:`~repro.serve.session.QuerySession`: the
    evaluation then reuses the session's cached layouts/partitions and its
    persistent worker pool instead of spinning fresh ones up per call.
    """
    # Imported lazily: the planner pipeline's operators use this module's
    # chunking helpers, so a module-level import would be circular.
    from repro.plan.planner import Planner
    from repro.plan.query import TwoPathQuery

    start = time.perf_counter()
    run_config = config.with_thresholds(delta1, delta2).with_cores(cores)
    if session is not None:
        served = session.evaluate(
            TwoPathQuery(left=left, right=right), use_memo=False, config=run_config
        )
        if served.plan is None:
            # The session routed the query shard-wise (no single plan); the
            # phase timings live in the rolled-up explanation instead.
            return ParallelJoinResult(
                pairs=served.pairs,
                seconds=time.perf_counter() - start,
                cores=max(int(cores), 1),
            )
        plan = served.plan
    else:
        planner = Planner(config=run_config)
        plan = planner.execute(TwoPathQuery(left=left, right=right))
    state = plan.state
    assert state is not None
    return ParallelJoinResult(
        pairs=state.pairs,  # columnar result → Python set, once, at this boundary
        seconds=time.perf_counter() - start,
        cores=max(int(cores), 1),
        light_seconds=state.timings.get("light", 0.0),
        matrix_seconds=state.timings.get("matrix_build", 0.0)
        + state.timings.get("matrix_multiply", 0.0),
    )


def split_relation(relation: Relation, parts: int) -> List[Relation]:
    """Split a relation into row chunks (one per worker)."""
    if len(relation) == 0:
        return []
    if parts <= 1:
        return [relation]
    data = relation.data
    chunk_size = max((len(relation) + parts - 1) // parts, 1)
    chunks: List[Relation] = []
    for lo in range(0, len(relation), chunk_size):
        chunks.append(
            Relation(np.array(data[lo : lo + chunk_size]), name=relation.name, sorted_dedup=True)
        )
    return chunks


# Backwards-compatible alias (pre-registry name).
_split_relation = split_relation
