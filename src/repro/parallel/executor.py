"""Coordination-free parallel execution of the MMJoin phases (Section 6).

The paper's key parallelisation argument is that both phases of MMJoin
partition trivially:

* the matrix product splits by row blocks of the left operand — each worker
  multiplies its block against the full right operand with no interaction;
* the light probing splits by x value — each worker owns a slice of the
  x domain and produces its output pairs independently.

Because numpy's BLAS kernels release the GIL, a thread pool achieves real
parallel speedups for the matrix part; the light probing is pure Python so
its thread-level speedup is limited, which is faithful to the paper's
observation that the matrix part is the more scalable one.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.partitioning import partition_two_path
from repro.data.relation import Relation
from repro.matmul import dense as dense_mm

T = TypeVar("T")
R = TypeVar("R")
Pair = Tuple[int, int]


@dataclass
class ParallelExecutor:
    """A small thread-pool wrapper with chunking helpers."""

    cores: int = 1

    def __post_init__(self) -> None:
        self.cores = max(int(self.cores), 1)

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item, in parallel when cores > 1."""
        if self.cores == 1 or len(items) <= 1:
            return [func(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.cores) as pool:
            return list(pool.map(func, items))

    def chunks(self, items: Sequence[T]) -> List[Sequence[T]]:
        """Split a sequence into one contiguous chunk per core."""
        n = len(items)
        if n == 0:
            return []
        per_chunk = max((n + self.cores - 1) // self.cores, 1)
        return [items[i : i + per_chunk] for i in range(0, n, per_chunk)]

    def chunk_ranges(self, total: int) -> List[Tuple[int, int]]:
        """Split ``range(total)`` into per-core (start, stop) ranges."""
        if total <= 0:
            return []
        per_chunk = max((total + self.cores - 1) // self.cores, 1)
        return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def parallel_matmul(
    left: np.ndarray,
    right: np.ndarray,
    cores: int = 1,
) -> np.ndarray:
    """Row-partitioned parallel matrix product.

    The left operand is split into one row block per core and each block is
    multiplied against the full right operand in its own thread.  BLAS
    releases the GIL so the blocks genuinely run concurrently.
    """
    a = np.ascontiguousarray(left, dtype=np.float32)
    b = np.ascontiguousarray(right, dtype=np.float32)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    executor = ParallelExecutor(cores=cores)
    ranges = executor.chunk_ranges(a.shape[0])
    if len(ranges) <= 1:
        return a @ b
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.float32)

    def multiply_block(block: Tuple[int, int]) -> Tuple[int, int]:
        lo, hi = block
        out[lo:hi] = a[lo:hi] @ b
        return block

    executor.map(multiply_block, ranges)
    return out


@dataclass
class ParallelJoinResult:
    """Output and timing of a parallel two-path evaluation."""

    pairs: Set[Pair]
    seconds: float
    cores: int
    light_seconds: float = 0.0
    matrix_seconds: float = 0.0


def parallel_two_path(
    left: Relation,
    right: Relation,
    delta1: int,
    delta2: int,
    cores: int = 1,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> ParallelJoinResult:
    """Evaluate the 2-path MMJoin with explicit thresholds across ``cores`` workers.

    Used by the multi-core benchmarks (Figures 4d-4g): the light probing is
    partitioned by x value and the heavy matrix product by row block.
    """
    start = time.perf_counter()
    executor = ParallelExecutor(cores=cores)
    partition = partition_two_path(left, right, delta1, delta2)

    # Light phase: partition the probing side by x value.
    light_start = time.perf_counter()
    right_index = right.index_y()
    left_index = left.index_y()

    def probe_chunk(args: Tuple[Relation, Dict[int, np.ndarray], bool]) -> Set[Pair]:
        relation, other_index, flip = args
        local: Set[Pair] = set()
        for x, y in zip(relation.xs, relation.ys):
            partners = other_index.get(int(y))
            if partners is None:
                continue
            xi = int(x)
            for z in partners:
                local.add((int(z), xi) if flip else (xi, int(z)))
        return local

    tasks: List[Tuple[Relation, Dict[int, np.ndarray], bool]] = []
    for chunk in _split_relation(partition.r_light, executor.cores):
        tasks.append((chunk, right_index, False))
    for chunk in _split_relation(partition.s_light, executor.cores):
        tasks.append((chunk, left_index, True))
    light_sets = executor.map(probe_chunk, tasks) if tasks else []
    light_output: Set[Pair] = set()
    for s in light_sets:
        light_output |= s
    light_seconds = time.perf_counter() - light_start

    # Heavy phase: row-partitioned matrix product.
    matrix_start = time.perf_counter()
    heavy_output: Set[Pair] = set()
    rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
    if rows.size and mids.size and cols.size:
        m1 = dense_mm.build_adjacency(partition.r_heavy, rows, mids)
        m2 = dense_mm.build_adjacency(partition.s_heavy, cols, mids).T
        product = parallel_matmul(m1, m2, cores=cores)
        heavy_output = set(dense_mm.nonzero_pairs(product, rows, cols))
    matrix_seconds = time.perf_counter() - matrix_start

    return ParallelJoinResult(
        pairs=light_output | heavy_output,
        seconds=time.perf_counter() - start,
        cores=executor.cores,
        light_seconds=light_seconds,
        matrix_seconds=matrix_seconds,
    )


def _split_relation(relation: Relation, parts: int) -> List[Relation]:
    """Split a relation into row chunks (one per worker)."""
    if len(relation) == 0:
        return []
    if parts <= 1:
        return [relation]
    data = relation.data
    chunk_size = max((len(relation) + parts - 1) // parts, 1)
    chunks: List[Relation] = []
    for lo in range(0, len(relation), chunk_size):
        chunks.append(
            Relation(np.array(data[lo : lo + chunk_size]), name=relation.name, sorted_dedup=True)
        )
    return chunks
