"""Coordination-free parallel execution of the MMJoin phases (Section 6).

The paper's key parallelisation argument is that both phases of MMJoin
partition trivially:

* the matrix product splits by row blocks of the left operand — each worker
  multiplies its block against the full right operand with no interaction;
* the light probing splits by x value — each worker owns a slice of the
  x domain and produces its output pairs independently.

Because numpy's BLAS kernels release the GIL, a thread pool achieves real
parallel speedups for the matrix part; the light probing is a vectorized
NumPy gather (see :func:`repro.joins.baseline.probe_pairs_block`), which
also releases the GIL for the bulk of its work.

:func:`parallel_two_path` is a thin wrapper over the shared planner
pipeline: with ``cores > 1`` the ``combinatorial_light`` operator probes in
per-core chunks — every worker returns a columnar
:class:`~repro.data.pairblock.PairBlock`, and the merge is one array
concatenation plus a single packed-key ``np.unique`` instead of per-worker
set unions — and the dense backend row-partitions the heavy product via
:func:`parallel_matmul`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.data.relation import Relation
from repro.matmul.dense import accumulation_dtype
from repro.obs.trace import current_trace

T = TypeVar("T")
R = TypeVar("R")
Pair = Tuple[int, int]


def _traced_task(trace, func: Callable[[T], R]) -> Callable[[T], R]:
    """Carry the caller's trace (and queue-wait accounting) into pool workers."""
    parent = trace.current_span()
    metrics = trace.metrics
    submitted = time.perf_counter()

    def run(item: T) -> R:
        if metrics is not None:
            metrics.observe("repro_pool_wait_seconds",
                            time.perf_counter() - submitted, pool="parallel")
        with trace.worker(parent):
            return func(item)

    return run


@dataclass
class ParallelExecutor:
    """A small thread-pool wrapper with chunking helpers.

    With ``persistent=True`` the executor keeps one thread pool alive across
    ``map`` calls instead of spinning a fresh pool up per call — the serving
    layer (:class:`~repro.serve.session.QuerySession`) hands every operator
    the same persistent executor so repeated queries skip pool start-up.
    """

    cores: int = 1
    persistent: bool = False

    def __post_init__(self) -> None:
        self.cores = max(int(self.cores), 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item, in parallel when cores > 1."""
        if self.cores == 1 or len(items) <= 1:
            return [func(item) for item in items]
        # Pool workers run on their own threads, where the caller's active
        # trace is invisible; wrap the task so each worker (a) reports its
        # queue wait and (b) roots its spans under the submitting span —
        # worker spans ship back with the results.
        trace = current_trace()
        if trace is not None:
            func = _traced_task(trace, func)
        if self.persistent:
            return list(self._ensure_pool().map(func, items))
        with ThreadPoolExecutor(max_workers=self.cores) as pool:
            return list(pool.map(func, items))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Locked: concurrent first calls racing here would each build a pool
        # and leak whichever one loses the assignment.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.cores, thread_name_prefix="repro-parallel"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (no-op for per-call pools)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def chunks(self, items: Sequence[T]) -> List[Sequence[T]]:
        """Split a sequence into one contiguous chunk per core."""
        n = len(items)
        if n == 0:
            return []
        per_chunk = max((n + self.cores - 1) // self.cores, 1)
        return [items[i : i + per_chunk] for i in range(0, n, per_chunk)]

    def chunk_ranges(self, total: int) -> List[Tuple[int, int]]:
        """Split ``range(total)`` into per-core (start, stop) ranges."""
        if total <= 0:
            return []
        per_chunk = max((total + self.cores - 1) // self.cores, 1)
        return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def parallel_matmul(
    left: np.ndarray,
    right: np.ndarray,
    cores: int = 1,
) -> np.ndarray:
    """Row-partitioned parallel matrix product.

    The left operand is split into one row block per core and each block is
    multiplied against the full right operand in its own thread.  BLAS
    releases the GIL so the blocks genuinely run concurrently.
    """
    # Same overflow guard as count_matmul: counts are bounded by the inner
    # dimension, so past float32's exact-integer range widen to float64.
    a = np.asarray(left)
    b = np.asarray(right)
    dtype = accumulation_dtype(a.shape[1] if a.ndim == 2 else 0)
    a = np.ascontiguousarray(a, dtype=dtype)
    b = np.ascontiguousarray(b, dtype=dtype)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    executor = ParallelExecutor(cores=cores)
    ranges = executor.chunk_ranges(a.shape[0])
    if len(ranges) <= 1:
        return a @ b
    out = np.empty((a.shape[0], b.shape[1]), dtype=dtype)

    def multiply_block(block: Tuple[int, int]) -> Tuple[int, int]:
        lo, hi = block
        out[lo:hi] = a[lo:hi] @ b
        return block

    executor.map(multiply_block, ranges)
    return out


@dataclass
class ParallelJoinResult:
    """Output and timing of a parallel two-path evaluation."""

    pairs: Set[Pair]
    seconds: float
    cores: int
    light_seconds: float = 0.0
    matrix_seconds: float = 0.0


def parallel_two_path(
    left: Relation,
    right: Relation,
    delta1: int,
    delta2: int,
    cores: int = 1,
    config: MMJoinConfig = DEFAULT_CONFIG,
    session=None,
) -> ParallelJoinResult:
    """Evaluate the 2-path MMJoin with explicit thresholds across ``cores`` workers.

    Used by the multi-core benchmarks (Figures 4d-4g).  The evaluation goes
    through the shared planner pipeline; the explicit thresholds pin the
    strategy to mmjoin and ``cores`` drives both the chunked light probing
    and the row-partitioned heavy product.

    ``session`` attaches a :class:`~repro.serve.session.QuerySession`: the
    evaluation then reuses the session's cached layouts/partitions and its
    persistent worker pool instead of spinning fresh ones up per call.
    """
    # Imported lazily: the planner pipeline's operators use this module's
    # chunking helpers, so a module-level import would be circular.
    from repro.plan.planner import Planner
    from repro.plan.query import TwoPathQuery

    start = time.perf_counter()
    run_config = config.with_thresholds(delta1, delta2).with_cores(cores)
    if session is not None:
        served = session.evaluate(
            TwoPathQuery(left=left, right=right), use_memo=False, config=run_config
        )
        if served.plan is None:
            # The session routed the query shard-wise (no single plan); the
            # phase timings live in the rolled-up explanation instead.
            return ParallelJoinResult(
                pairs=served.pairs,
                seconds=time.perf_counter() - start,
                cores=max(int(cores), 1),
            )
        plan = served.plan
    else:
        planner = Planner(config=run_config)
        plan = planner.execute(TwoPathQuery(left=left, right=right))
    state = plan.state
    assert state is not None
    return ParallelJoinResult(
        pairs=state.pairs,  # columnar result → Python set, once, at this boundary
        seconds=time.perf_counter() - start,
        cores=max(int(cores), 1),
        light_seconds=state.timings.get("light", 0.0),
        matrix_seconds=state.timings.get("matrix_build", 0.0)
        + state.timings.get("matrix_multiply", 0.0),
    )


def split_relation(relation: Relation, parts: int) -> List[Relation]:
    """Split a relation into row chunks (one per worker)."""
    if len(relation) == 0:
        return []
    if parts <= 1:
        return [relation]
    data = relation.data
    chunk_size = max((len(relation) + parts - 1) // parts, 1)
    chunks: List[Relation] = []
    for lo in range(0, len(relation), chunk_size):
        chunks.append(
            Relation(np.array(data[lo : lo + chunk_size]), name=relation.name, sorted_dedup=True)
        )
    return chunks


# Backwards-compatible alias (pre-registry name).
_split_relation = split_relation
