"""Parallel execution: coordination-free partitioned evaluation and a work model."""

from repro.parallel.executor import ParallelExecutor, parallel_two_path, parallel_matmul
from repro.parallel.workmodel import ParallelWorkModel, amdahl_speedup

__all__ = [
    "ParallelExecutor",
    "parallel_two_path",
    "parallel_matmul",
    "ParallelWorkModel",
    "amdahl_speedup",
]
