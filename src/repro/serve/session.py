"""QuerySession: the serving layer over the plan/operator pipeline.

One-shot evaluation (``two_path_join`` and friends) pays full preprocessing
on every call: semijoin reduction, y-sorted probe layouts, degree statistics,
light/heavy partitioning and matmul operand construction are all rebuilt even
when the same relations are queried again.  A :class:`QuerySession` owns that
state across calls:

* a **catalog** of registered relations / set families with per-name version
  counters — re-registering a name bumps the version and invalidates every
  artifact derived from it;
* an **artifact cache** (:class:`~repro.serve.artifacts.ArtifactCache`) of
  derived state keyed by relation tokens ``("rel", name, version)``:
  semijoin-reduced relation lists (which keep their lazy ``sorted_by_y`` /
  index layouts warm), light/heavy partitions with their optimizer
  decisions, and matmul operand matrices;
* a **plan/result memo** (LRU, byte-budgeted) short-circuiting repeated
  queries entirely;
* a **batched / async API** — :meth:`QuerySession.submit_batch` groups
  compatible queries so semijoin-reduce and partition work is shared, then
  fans the rest out through the persistent parallel executor;
  :meth:`QuerySession.asubmit` serves the same evaluation from an asyncio
  event loop;
* a **cost feedback loop** (:class:`~repro.serve.feedback.CostFeedback`)
  folding each plan's estimated-vs-actual operator costs back into the
  session's shared :class:`~repro.matmul.cost_model.MatMulCostModel`, which
  both the optimizer and the backend registry consult;
* a **sharded execution layer** (``QuerySession(shards=K)`` +
  ``register(..., sharded=True)``): relations are hash-partitioned on the
  join attribute under one frozen skew-aware
  :class:`~repro.shard.spec.ShardingSpec`, queries route through per-shard
  subplans (merged by one concat + packed-key dedup), artifacts are keyed by
  per-shard tokens, and :meth:`QuerySession.update_shard` mutates one shard
  while sibling shards' cached artifacts stay warm.

The legacy one-shot functions are thin wrappers over a throwaway session,
so there is exactly one evaluation path in the repository.
"""

from __future__ import annotations

import asyncio
import atexit
import itertools
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.estimation import detect_heavy_join_keys
from repro.core.optimizer import CostBasedOptimizer
from repro.data.catalog import Catalog
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation
from repro.data.setfamily import SetFamily
from repro.errors import (
    AdmissionRejected,
    Deadline,
    QueryTimeoutError,
    StrictDeleteError,
    UnknownRelationError,
    install_deadline,
    restore_deadline,
)
from repro.faults import RetryPolicy
from repro.matmul.cost_model import MatMulCostModel
from repro.matmul.registry import BackendRegistry, make_default_registry
from repro.matmul.tiling import choose_tile_rows
from repro.obs.metrics import MetricsSnapshot
from repro.obs.telemetry import Telemetry, serving_path
from repro.obs.trace import activate as trace_activate
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import install as trace_install
from repro.obs.trace import restore as trace_restore
from repro.obs.trace import span as obs_span
from repro.parallel.executor import ParallelExecutor
from repro.plan.explain import PlanExplanation
from repro.plan.planner import Planner
from repro.plan.query import (
    ContainmentJoinQuery,
    JoinProjectQuery,
    SimilarityJoinQuery,
    StarQuery,
    TwoPathQuery,
)
from repro.serve.artifacts import (
    ArtifactCache,
    token_mentions,
    token_mentions_any_shard,
    token_mentions_shard_update,
    token_mentions_write,
)
from repro.serve.feedback import CostFeedback
from repro.shard.executor import execute_sharded
from repro.shard.router import ShardRouter
from repro.shard.sharded import ShardedRelation
from repro.shard.spec import ShardingSpec

HeadTuple = Tuple[int, ...]

# Bound on the delta-lineage map (see SessionContext.record_delta_parent):
# evicted entries only cost a full (still correct) re-merge on the next read.
_DELTA_PARENT_CAP = 1024


def config_signature(config: MMJoinConfig) -> Tuple[Any, ...]:
    """The config fields that can change a plan or its artifacts.

    Partition, operand and memo cache keys embed this tuple so that, e.g.,
    evaluating with explicit thresholds never reuses a partition cached for
    the optimizer-driven path.  (Alias of
    :meth:`~repro.core.config.MMJoinConfig.cache_signature`, which the
    physical operators use directly to avoid importing the serving layer.)
    """
    return config.cache_signature()


class SessionContext:
    """The session state the physical operators see.

    Operators duck-type against this object through ``state.session``: they
    ask for cache keys (``None`` when a relation is not session-tracked, in
    which case they fall back to stateless evaluation), consult
    :attr:`artifacts`, and borrow the persistent parallel executor.  Derived
    relations (e.g. the semijoin-reduced inputs) are *adopted* with derived
    tokens so artifacts computed from them remain keyable.
    """

    def __init__(self, artifacts: ArtifactCache,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.artifacts = artifacts
        self.retry_policy = retry_policy
        self._tokens: Dict[int, Tuple[Any, Relation]] = {}
        self._executors: Dict[int, ParallelExecutor] = {}
        self._delta_parents: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # -- token bookkeeping -------------------------------------------------
    def bind(self, relation: Relation, token: Any) -> None:
        """Associate a relation object with a cache-key token."""
        with self._lock:
            self._tokens[id(relation)] = (token, relation)

    def adopt_derived(self, relations: Sequence[Relation], kind: str,
                      parent_tokens: Sequence[Any], extra: Any = None) -> None:
        """Bind derived relations under a token naming their derivation."""
        for position, relation in enumerate(relations):
            self.bind(relation, ("drv", kind, tuple(parent_tokens), extra, position))

    def token_for(self, relation: Relation) -> Optional[Any]:
        entry = self._tokens.get(id(relation))
        return entry[0] if entry is not None else None

    def tokens_for(self, relations: Iterable[Relation]) -> Optional[Tuple[Any, ...]]:
        """Tokens for every relation, or ``None`` if any is untracked."""
        tokens = []
        for relation in relations:
            token = self.token_for(relation)
            if token is None:
                return None
            tokens.append(token)
        return tuple(tokens)

    def key(self, kind: str, relations: Sequence[Relation], *extra: Any) -> Optional[Any]:
        """A structured cache key, or ``None`` when not session-keyable."""
        tokens = self.tokens_for(relations)
        if tokens is None:
            return None
        return (kind, tokens) + tuple(extra)

    def unbind_relation(self, name: str) -> None:
        """Forget tokens (base and derived) referencing relation ``name``."""
        self.unbind_where(lambda token: token_mentions(token, name))

    def unbind_where(self, predicate: Callable[[Any], bool]) -> None:
        """Forget every binding whose token satisfies ``predicate``."""
        with self._lock:
            doomed = [obj_id for obj_id, (token, _) in self._tokens.items()
                      if predicate(token)]
            for obj_id in doomed:
                del self._tokens[obj_id]

    # -- delta lineage -----------------------------------------------------
    def record_delta_parent(self, child: Any, parent: Any) -> None:
        """Remember that shard token ``child`` is ``parent`` plus appended rows.

        The sharded executor walks this lineage backwards to *patch* a
        cached merged result instead of re-merging every shard: appends are
        monotone under set semantics, so the parent generation's merged
        block unioned with the touched shards' fresh blocks is exactly the
        child generation's result.  Only appends record lineage — deletes
        break monotonicity and take the per-shard rebuild path.  Versioned
        tokens are immutable snapshots, so an entry can never turn wrong;
        the map is bounded FIFO purely to cap memory.
        """
        with self._lock:
            self._delta_parents[child] = parent
            while len(self._delta_parents) > _DELTA_PARENT_CAP:
                self._delta_parents.popitem(last=False)

    def delta_parent(self, token: Any) -> Optional[Any]:
        """The recorded pre-append token for ``token`` (``None`` = no lineage)."""
        with self._lock:
            return self._delta_parents.get(token)

    # -- shared execution resources ---------------------------------------
    def executor(self, cores: int) -> ParallelExecutor:
        """A persistent (pool-reusing) executor for ``cores`` workers."""
        cores = max(int(cores), 1)
        with self._lock:
            executor = self._executors.get(cores)
            if executor is None:
                executor = ParallelExecutor(cores=cores, persistent=True,
                                            retry_policy=self.retry_policy)
                self._executors[cores] = executor
            return executor

    def close(self) -> None:
        with self._lock:
            for executor in self._executors.values():
                executor.close()
            self._executors.clear()


@dataclass
class SessionResult:
    """One served query: columnar result plus execution metadata.

    ``pairs`` / ``counts`` materialise Python sets/dicts lazily — the session
    keeps everything columnar so memo entries and batch fan-out never pay the
    tuple-conversion cost unless a consumer asks for it.
    """

    query_kind: str
    result_block: Optional[PairBlock]
    result_counted: Optional[CountedPairBlock]
    explanation: Optional[PlanExplanation]
    seconds: float
    from_memo: bool = False
    plan: Optional[Any] = None  # PhysicalPlan when freshly executed
    # Telemetry: the id of the trace recorded for this call (None when the
    # session's telemetry is disabled).  Feeds `repro-cli trace <id>`.
    trace_id: Optional[str] = None
    _pairs_cache: Optional[Set[HeadTuple]] = field(default=None, repr=False)
    _counts_cache: Optional[Dict[HeadTuple, int]] = field(default=None, repr=False)

    @property
    def output_size(self) -> int:
        return len(self.result_block) if self.result_block is not None else 0

    def __len__(self) -> int:
        return self.output_size

    @property
    def pairs(self) -> Set[HeadTuple]:
        if self._pairs_cache is None:
            block = self.result_block
            self._pairs_cache = block.to_set() if block is not None else set()
        return self._pairs_cache

    @property
    def counts(self) -> Optional[Dict[HeadTuple, int]]:
        if self.result_counted is None:
            return None
        if self._counts_cache is None:
            self._counts_cache = self.result_counted.to_dict()
        return self._counts_cache

    @property
    def partial(self) -> bool:
        """True when failed shards were skipped (``partial_results=True``)."""
        explanation = self.explanation
        return bool(explanation is not None
                    and explanation.session_stats.get("partial"))

    @property
    def strategy(self) -> str:
        return self.explanation.strategy if self.explanation is not None else "unknown"

    @property
    def backend(self) -> str:
        return self.explanation.backend if self.explanation is not None else "unknown"

    def explain(self) -> str:
        """Human-readable plan explanation (memo hits keep the original's)."""
        if self.explanation is None:
            return "no plan explanation available"
        text = self.explanation.format()
        if self.from_memo:
            text = "result served from session memo (original execution below)\n" + text
        return text


def _delta_rows(rows: Any) -> np.ndarray:
    """Normalise a write's rows to an ``(n, 2)`` int64 array."""
    if isinstance(rows, Relation):
        return np.asarray(rows.data)
    if not isinstance(rows, np.ndarray):
        rows = np.asarray(list(rows), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return arr.reshape(-1, 2)


def _blocks_nbytes(value: Tuple[Optional[PairBlock], Optional[CountedPairBlock], Any]) -> int:
    block, counted, _ = value
    total = 0
    if block is not None:
        total += block.nbytes
    if counted is not None:
        total += counted.nbytes
    return total


class QuerySession:
    """A long-lived serving session over registered relations.

    Parameters
    ----------
    config:
        Default evaluation knobs; per-call overrides go through the query
        methods' keyword arguments.
    registry / cost_model:
        Shared matmul state.  By default the session builds its **own**
        cost model and registry so in-session feedback calibration never
        leaks into other sessions or the process-wide defaults.
    artifact_bytes / memo_bytes:
        LRU byte budgets of the derived-artifact cache and the plan/result
        memo (``None`` = unbounded).
    feedback:
        When True (default), every executed plan's estimated-vs-actual costs
        are recorded and measured heavy products calibrate the cost model.
    shards:
        Number of hash shards for relations registered with
        ``sharded=True``.  With ``shards > 1`` the session freezes one
        skew-aware :class:`~repro.shard.spec.ShardingSpec` (heavy-hitter
        join keys get dedicated shards on top of the hash shards), routes
        queries over sharded relations through per-shard subplans, and
        supports :meth:`update_shard` — single-shard mutation that leaves
        sibling shards' cached artifacts warm.  ``shards=1`` (default)
        disables routing; ``sharded=True`` registrations then behave like
        ordinary ones.
    heavy_key_factor:
        A join key is isolated into a dedicated heavy shard when its degree
        exceeds ``heavy_key_factor * N / shards`` (see
        :func:`~repro.core.estimation.detect_heavy_join_keys`).  Lower it
        for workloads whose head-domain bound caps per-key degrees well
        below a fair shard's share.
    shard_result_cache:
        When True (default), every shard subquery's merged block is cached
        in the artifact cache under its slices' shard tokens, so warm
        sharded serving pays only the cross-shard merge and
        :meth:`update_shard` recomputes exactly the mutated shard's block.
        Disable to force every subquery through its per-shard pipeline.
    lazy_merge_rows:
        Write-absorption threshold of the streaming path: an
        :meth:`append` / :meth:`delete` delta whose target shard's total
        pending rows stay within this bound is buffered on the shard as a
        pending delta block and folded on the next read (or when a later
        write trips the threshold).  ``0`` folds every write eagerly.
    telemetry:
        Observability knob: ``True`` (default) gives the session its own
        trace/metrics/slow-log substrate, ``False`` degrades every hook to
        a no-op, and a :class:`~repro.obs.telemetry.TelemetryConfig` or a
        prebuilt :class:`~repro.obs.telemetry.Telemetry` customises the
        slow-query threshold / shares one registry across sessions.  See
        :meth:`metrics` and :attr:`Telemetry.slow_log`.
    memory_budget_bytes:
        Admission-control budget for one query's extraction transient
        (``None`` = admit everything).  Queries whose estimated dense
        temporary exceeds it are forced onto tiled extraction when a band
        fits, and rejected with :class:`~repro.errors.AdmissionRejected`
        otherwise.  See :meth:`submit`.
    retry_policy:
        Retry schedule for crashed/hung pool workers and failing shard
        subplans (``None`` = the default bounded jittered-exponential
        policy, :data:`~repro.faults.DEFAULT_RETRY_POLICY`).
    """

    def __init__(
        self,
        config: MMJoinConfig = DEFAULT_CONFIG,
        registry: Optional[BackendRegistry] = None,
        cost_model: Optional[MatMulCostModel] = None,
        artifact_bytes: Optional[int] = 256 << 20,
        memo_bytes: Optional[int] = 64 << 20,
        feedback: bool = True,
        shards: int = 1,
        heavy_key_factor: float = 0.5,
        shard_result_cache: bool = True,
        lazy_merge_rows: int = 4096,
        telemetry: Any = True,
        memory_budget_bytes: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.config = config
        self.telemetry = Telemetry.coerce(telemetry)
        self.memory_budget_bytes = (
            int(memory_budget_bytes) if memory_budget_bytes is not None else None
        )
        self.retry_policy = retry_policy
        if registry is not None:
            self.registry = registry
            self.cost_model = cost_model if cost_model is not None else registry.cost_model
        else:
            self.cost_model = cost_model if cost_model is not None else MatMulCostModel()
            self.registry = make_default_registry(cost_model=self.cost_model)
        self.catalog = Catalog()
        self.artifacts = ArtifactCache(artifact_bytes, name="artifacts")
        self.memo = ArtifactCache(memo_bytes, name="memo")
        self.context = SessionContext(self.artifacts, retry_policy=retry_policy)
        self.feedback = CostFeedback(cost_model=self.cost_model if feedback else None)
        self._feedback_enabled = bool(feedback)
        self._versions: Dict[str, int] = {}
        self._families: Dict[str, SetFamily] = {}
        self._planners: Dict[Tuple[Any, ...], Planner] = {}
        self._anon_ids = itertools.count(1)
        # Ad-hoc relations auto-register so their artifacts are keyable, but
        # a long-lived session must not pin every relation it ever served:
        # anonymous registrations are evicted FIFO beyond this bound.
        self.max_anon_relations = 256
        self._anon_names: "deque[str]" = deque()
        self._async_pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.RLock()
        self.queries_served = 0
        # Sharded execution state (active when shards > 1 and at least one
        # relation registered with sharded=True).
        self.shards = max(int(shards), 1)
        self.heavy_key_factor = float(heavy_key_factor)
        self.shard_result_cache = bool(shard_result_cache)
        self.lazy_merge_rows = max(int(lazy_merge_rows), 0)
        self._sharded_names: Set[str] = set()
        self._sharded: Dict[str, ShardedRelation] = {}
        self._shard_versions: Dict[Tuple[str, int], int] = {}
        self._sharding_spec: Optional[ShardingSpec] = None
        self._router = ShardRouter(self._resolve_sharded)
        self._shard_counters: Dict[int, Dict[str, int]] = {}
        # The persistent pools must not outlive the interpreter even when a
        # caller forgets close(): close() is idempotent and atexit-backed
        # (and unregisters itself once run).
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # Catalog management
    # ------------------------------------------------------------------ #
    def register(self, relation: Relation, name: Optional[str] = None,
                 sharded: bool = False) -> str:
        """Register (or re-register) a relation; returns its catalog name.

        Re-registering an existing name is the mutation path: the version is
        bumped and every cached artifact or memoized result derived from the
        old data is invalidated — for a sharded name that includes **all**
        shard tokens (use :meth:`update_shard` for shard-scoped mutation).

        ``sharded=True`` (with a ``shards > 1`` session) partitions the
        relation on the join attribute under the session's skew-aware spec;
        queries touching only sharded relations then run as per-shard
        subplans.
        """
        key = name or relation.name
        with self._lock:
            version = self._versions.get(key, -1) + 1
            self._versions[key] = version
            if version > 0:
                self._invalidate(key)
            self.catalog.add(relation, name=key)
            self.context.bind(relation, ("rel", key, version))
            if sharded:
                # A shards=1 session still builds the (single-shard)
                # container so update_shard works uniformly; the router
                # falls back to unsharded evaluation for such specs.
                self._sharded_names.add(key)
                self._rebuild_sharding(new_name=key)
            else:
                self._drop_sharding(key)
        return key

    def register_family(self, family: SetFamily, name: Optional[str] = None,
                        sharded: bool = False) -> str:
        """Register a set family (its backing relation joins the catalog)."""
        key = self.register(family.relation, name=name, sharded=sharded)
        with self._lock:
            self._families[key] = family
        return key

    def update(self, name: str, relation: Relation) -> str:
        """Replace the data under an existing name (bumps the version).

        A sharded name stays sharded: the new data is re-partitioned and
        every shard token is invalidated along with the base artifacts.
        """
        if name not in self.catalog:
            raise UnknownRelationError(
                f"cannot update unregistered relation {name!r}"
            )
        with self._lock:
            self._families.pop(name, None)
            return self.register(relation, name=name,
                                 sharded=name in self._sharded_names)

    def remove(self, name: str) -> None:
        """Drop a relation and everything derived from it."""
        with self._lock:
            self.catalog.remove(name)
            self._families.pop(name, None)
            self._versions.pop(name, None)
            self._drop_sharding(name)
            self._invalidate(name)

    def _invalidate(self, name: str) -> None:
        self.artifacts.invalidate_relation(name)
        self.memo.invalidate_relation(name)
        self.context.unbind_relation(name)

    # ------------------------------------------------------------------ #
    # Sharding management
    # ------------------------------------------------------------------ #
    @property
    def sharding_spec(self) -> Optional[ShardingSpec]:
        """The session's frozen key -> shard assignment (None until built)."""
        return self._sharding_spec

    def sharded(self, name: str) -> ShardedRelation:
        """The sharded container of a sharded-registered relation."""
        with self._lock:
            container = self._sharded.get(name)
            if container is None:
                raise UnknownRelationError(
                    f"relation {name!r} is not registered sharded"
                )
            return container

    def _drop_sharding(self, name: str) -> None:
        with self._lock:
            self._sharded_names.discard(name)
            if self._sharded.pop(name, None) is not None:
                doomed = [k for k in self._shard_versions if k[0] == name]
                for k in doomed:
                    del self._shard_versions[k]

    def _rebuild_sharding(self, new_name: Optional[str] = None) -> None:
        """(Re)compute the spec and partition whatever it newly covers.

        The spec's heavy keys are the union of every sharded relation's
        heavy hitters (capped at ``shards`` extra shards, keeping the
        highest-degree keys).  If the spec changes — a registration brought
        new heavy keys — every sharded relation is re-partitioned so all of
        them keep agreeing on key placement; otherwise only the new name is
        partitioned.
        """
        with self._lock:
            heavy: Dict[int, int] = {}
            for name in sorted(self._sharded_names):
                for key, degree in detect_heavy_join_keys(
                    self.catalog.get(name), self.shards,
                    balance_factor=self.heavy_key_factor,
                ).items():
                    if degree > heavy.get(key, -1):
                        heavy[key] = degree
            if len(heavy) > self.shards:
                heavy = dict(sorted(
                    heavy.items(), key=lambda kv: (-kv[1], kv[0])
                )[: self.shards])
            spec = ShardingSpec(self.shards, sorted(heavy))
            if self._sharding_spec is not None and spec == self._sharding_spec:
                targets = [new_name] if new_name else []
            else:
                self._sharding_spec = spec
                targets = sorted(self._sharded_names)
            for name in targets:
                if name in self._sharded and name != new_name:
                    # Re-partitioning does not change the data, so memo
                    # entries (keyed on base tokens) stay valid; only the
                    # now-unreachable shard artifacts are dropped — and the
                    # old shard Relation objects unbound, so the context
                    # does not pin one generation of data copies per respec.
                    self.artifacts.invalidate_shards(name)
                    self.memo.invalidate_shards(name)
                    self.context.unbind_where(
                        lambda token: token_mentions_any_shard(token, name)
                    )
                self._partition_name(name)

    def _partition_name(self, name: str) -> None:
        """Partition one relation under the frozen spec and bind shard tokens."""
        assert self._sharding_spec is not None
        container = ShardedRelation.partition(
            self.catalog.get(name), self._sharding_spec, name=name
        )
        self._sharded[name] = container
        for shard, shard_rel in enumerate(container.shards):
            version = self._shard_versions.get((name, shard), -1) + 1
            self._shard_versions[(name, shard)] = version
            self.context.bind(shard_rel, ("shard", name, shard, version))

    def update_shard(self, name: str, shard: int, rows: Any) -> str:
        """Replace one shard's tuples; sibling shards' artifacts stay warm.

        ``rows`` is a :class:`Relation` or an iterable of ``(x, y)`` pairs
        whose join keys must all map to ``shard`` under the session's spec
        (a shard-local update never moves tuples between shards).  The
        relation's version is bumped — memoized results and whole-relation
        artifacts are stale — but only the mutated shard's token changes, so
        every sibling shard re-serves its cached semijoin/partition/operand
        artifacts on the next query.  This is the incremental-update path:
        re-serving a previously-warm query costs one shard's pipeline plus
        the cross-shard merge.
        """
        with self._lock:
            container = self.sharded(name)  # raises KeyError when unsharded
            shard = int(shard)
            if isinstance(rows, Relation):
                relation = rows
            else:
                # Keep array inputs columnar (no per-row Python objects);
                # the constructor sorts/dedups either way.
                relation = Relation(_delta_rows(rows), name=name)
            if len(relation) == 0 and len(container.shard(shard)) == 0:
                # Replacing an empty shard with no rows mutates nothing:
                # skip the version bumps and the invalidation sweep.
                return name
            stored = container.replace_shard(shard, relation)  # validates keys
            # Shard-scoped invalidation: the mutated shard's artifacts and
            # anything keyed on the whole relation (memo, unsharded
            # artifacts); sibling-shard entries survive.
            self.artifacts.invalidate_shard(name, shard)
            self.memo.invalidate_shard(name, shard)
            self.context.unbind_where(
                lambda token: token_mentions_shard_update(token, name, shard)
            )
            version = self._versions[name] + 1
            self._versions[name] = version
            shard_version = self._shard_versions.get((name, shard), -1) + 1
            self._shard_versions[(name, shard)] = shard_version
            base = container.combined()
            self.catalog.add(base, name=name)
            self.context.bind(base, ("rel", name, version))
            self.context.bind(stored, ("shard", name, shard, shard_version))
            self._families.pop(name, None)
        return name

    def append(self, name: str, rows: Any) -> str:
        """Append ``rows`` to a registered relation as a routed delta.

        ``rows`` is a :class:`Relation`, an ``(n, 2)`` array or an iterable
        of ``(x, y)`` pairs.  For a sharded registration the delta is
        hash-routed to its owning shards under the frozen spec: each
        touched shard absorbs its slice as a pending delta block (folded
        lazily within ``lazy_merge_rows``), only the touched shards'
        tokens and artifacts are invalidated, and append lineage is
        recorded so the next read can *patch* the cached merged result —
        union the old merged block with the touched shards' fresh blocks —
        instead of re-merging every shard.  Unsharded names fold the delta
        into the base data and take the full-replace mutation path.  Empty
        deltas short-circuit: no version bump, no invalidation.
        """
        return self._apply_write(name, rows, "+")

    def delete(self, name: str, rows: Any, strict: bool = False) -> str:
        """Delete ``rows`` from a registered relation as a routed delta.

        Routing, shard-scoped invalidation and the empty-delta
        short-circuit mirror :meth:`append`; deletes record no append
        lineage (removals are not monotone), so the next read rebuilds
        touched shards' blocks and re-merges.  Rows not present are
        silently ignored by default — the delta algebra's difference makes
        the delete idempotent; ``strict=True`` instead raises ``ValueError``
        listing missing rows, before anything mutates (this check reads the
        combined data, folding any pending deltas first).
        """
        return self._apply_write(name, rows, "-", strict=strict)

    def _apply_write(self, name: str, rows: Any, op: str,
                     strict: bool = False) -> str:
        kind = "append" if op == "+" else "delete"
        trace = self.telemetry.start(kind)
        if trace is None:
            return self._apply_write_inner(name, rows, op, strict)[0]
        start = time.perf_counter()
        with trace_activate(trace):
            try:
                name_out, outcome, n_rows = self._apply_write_inner(
                    name, rows, op, strict
                )
            finally:
                trace.finish()
        self.telemetry.observe_write(
            trace, kind, outcome, time.perf_counter() - start, rows=n_rows
        )
        return name_out

    def _apply_write_inner(self, name: str, rows: Any, op: str,
                           strict: bool = False) -> Tuple[str, str, int]:
        """``(name, outcome, rows)`` — outcome is the absorption verdict.

        ``absorbed``: every touched shard buffered its slice as a pending
        delta; ``folded``: at least one shard (or the unsharded base)
        materialised; ``noop``: empty delta.
        """
        delta = _delta_rows(rows)
        with self._lock:
            if name not in self.catalog:
                raise UnknownRelationError(
                    f"cannot write to unregistered relation {name!r}"
                )
            if delta.shape[0] == 0:
                return name, "noop", 0  # no version bump, no invalidation
            if op == "-" and strict:
                current = PairBlock.from_array(
                    np.asarray(self.catalog.get(name).data), deduped=True
                )
                missing = PairBlock.from_array(delta).difference(current)
                if len(missing):
                    raise StrictDeleteError(
                        f"delete from {name!r}: {len(missing)} rows not "
                        f"present, e.g. {missing.as_array()[:5].tolist()}"
                    )
            container = self._sharded.get(name)
            if container is None:
                return (self._write_unsharded(name, delta, op), "folded",
                        int(delta.shape[0]))
            owners = container.spec.shard_of_keys(
                np.ascontiguousarray(delta[:, 1])
            )
            touched = frozenset(int(s) for s in np.unique(owners))
            if op == "-":
                # Every cache key embeds versioned tokens, so old-generation
                # entries can never serve a new query — invalidation is
                # memory hygiene.  Deletes sweep eagerly (their old entries
                # are dead weight); appends deliberately keep the previous
                # generation so the next read can patch the cached merged
                # result through the recorded lineage, and let the LRU byte
                # budget age retired generations out.
                self.artifacts.invalidate_write(name, touched)
                self.memo.invalidate_write(name, touched)
            # Unbind BEFORE binding the new generation: the write predicate
            # matches every version of a touched shard.
            self.context.unbind_where(
                lambda token: token_mentions_write(token, name, touched)
            )
            folded_shards = 0
            for shard in sorted(touched):
                with obs_span("delta_apply", shard=shard) as sp:
                    stored = container.apply_delta(
                        shard, delta[owners == shard], op,
                        lazy_rows=self.lazy_merge_rows,
                    )
                # An absorbed delta leaves the stored relation lazily
                # combined (pending blocks not yet folded into the base).
                absorbed = not getattr(stored, "materialized", True)
                sp.set("outcome", "absorbed" if absorbed else "folded")
                if not absorbed:
                    folded_shards += 1
                shard_version = self._shard_versions.get((name, shard), -1) + 1
                self._shard_versions[(name, shard)] = shard_version
                self.context.bind(stored, ("shard", name, shard, shard_version))
                if op == "+":
                    self.context.record_delta_parent(
                        ("shard", name, shard, shard_version),
                        ("shard", name, shard, shard_version - 1),
                    )
            version = self._versions[name] + 1
            self._versions[name] = version
            base = container.combined()
            self.catalog.add(base, name=name)
            self.context.bind(base, ("rel", name, version))
            self._families.pop(name, None)
            if folded_shards == 0:
                outcome = "absorbed"
            elif folded_shards == len(touched):
                outcome = "folded"
            else:
                outcome = "mixed"
        return name, outcome, int(delta.shape[0])

    def _write_unsharded(self, name: str, delta: np.ndarray, op: str) -> str:
        # No shard routing to exploit: fold the delta into the base data
        # with the PairBlock algebra and take the ordinary full-replace
        # mutation path (version bump + whole-relation invalidation).
        current = PairBlock.from_array(
            np.asarray(self.catalog.get(name).data), deduped=True
        )
        patch = PairBlock.from_array(delta)
        block = current.union(patch) if op == "+" else current.difference(patch)
        updated = Relation(block.as_array(), name=name, sorted_dedup=True)
        return self.update(name, updated)

    def _resolve_sharded(self, relation: Any) -> Optional[Tuple[str, ShardedRelation]]:
        """Router callback: the sharded container behind a relation object.

        Only the *current* base object of a sharded registration resolves —
        stale objects (pre-mutation) and ad-hoc relations fall back to
        unsharded evaluation.
        """
        token = self.context.token_for(relation)
        if not (isinstance(token, tuple) and len(token) == 3 and token[0] == "rel"):
            return None
        name = token[1]
        with self._lock:
            container = self._sharded.get(name)
            if container is None or self._versions.get(name) != token[2]:
                return None
            return name, container

    def relation(self, name: str) -> Relation:
        return self.catalog.get(name)

    def family(self, name: str) -> SetFamily:
        """The set-family view of a registered relation (built on demand)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = SetFamily.from_relation(self.catalog.get(name))
                self._families[name] = family
            return family

    def version(self, name: str) -> int:
        return self._versions[name]

    def names(self) -> List[str]:
        return self.catalog.names()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _config_with(self, overrides: Dict[str, Any]) -> MMJoinConfig:
        if not overrides:
            return self.config
        from dataclasses import replace

        return replace(self.config, **overrides)

    def planner_for(self, config: MMJoinConfig) -> Planner:
        """One planner per config signature, all sharing the session state.

        Exposed for session-aware adapters (e.g.
        :class:`~repro.engines.registry.MMJoinEngine`) that need a planner
        wired to this session's caches, registry and calibrated cost model.
        """
        signature = config_signature(config)
        with self._lock:
            planner = self._planners.get(signature)
            if planner is None:
                planner = Planner(
                    config=config,
                    registry=self.registry,
                    optimizer=CostBasedOptimizer(
                        config=config, matmul_model=self.cost_model
                    ),
                    session=self.context,
                )
                self._planners[signature] = planner
            return planner

    def _ensure_registered(self, query: JoinProjectQuery) -> None:
        """Auto-register ad-hoc relations so their artifacts are keyable.

        Anonymous names are bounded: past ``max_anon_relations`` the oldest
        ad-hoc registration is dropped (tokens, artifacts and memo entries
        with it), so serving a stream of fresh relations cannot grow the
        session without bound.
        """
        for relation in query.join_relations():
            if self.context.token_for(relation) is None:
                name = f"~{relation.name}/{next(self._anon_ids)}"
                self.register(relation, name=name)
                with self._lock:
                    self._anon_names.append(name)
                    while len(self._anon_names) > self.max_anon_relations:
                        self.remove(self._anon_names.popleft())

    def _memo_query(self, query: JoinProjectQuery) -> JoinProjectQuery:
        # Similarity/containment lower to the same counting two-path; memoize
        # the lowered query so different overlap thresholds share one entry.
        if isinstance(query, (SimilarityJoinQuery, ContainmentJoinQuery)):
            return query.lower()
        return query

    def _memo_key(self, query: JoinProjectQuery, config: MMJoinConfig) -> Optional[Any]:
        memo_query = self._memo_query(query)
        tokens = self.context.tokens_for(memo_query.join_relations())
        if tokens is None:
            return None
        return (
            "memo",
            tokens,
            memo_query.kind,
            memo_query.with_counts,
            config_signature(config),
        )

    def _admit(self, query: JoinProjectQuery,
               config: MMJoinConfig) -> MMJoinConfig:
        """Memory admission control: meter the extraction transient.

        The dominating transient of the heavy path is the dense boolean
        candidate scan over ``dom(x) × dom(z)`` (one byte per cell).  When
        that estimate exceeds :attr:`memory_budget_bytes`, the query is
        *forced onto tiled extraction* if one band fits the budget —
        trading one allocation for ``ceil(u / tile_rows)`` bounded ones —
        and rejected with :class:`~repro.errors.AdmissionRejected`
        otherwise (including when the caller pinned ``extract_mode="full"``,
        which forbids the downgrade).  The estimate is an upper bound for
        sharded execution, whose per-shard transients are smaller.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return config
        relations = query.join_relations()
        if not relations:
            return config
        u = int(relations[0].x_values().size)
        w = int(relations[-1].y_values().size)
        estimate = u * w
        # Raw registry, NOT the folding `metrics` property: admission runs
        # once per served query, and folding pending query records here
        # would drag the deferred accounting cost into the serving window.
        metrics = self.telemetry.registry
        if estimate <= budget:
            metrics.inc("repro_admission_total", decision="admit")
            return config
        # Band height: the density-aware default, shrunk until one band
        # fits the budget (a band is `tile_rows x w` bool cells).
        tile_rows = min(choose_tile_rows(u, w, 1), max(int(budget // w), 1)) \
            if w else 1
        band_bytes = tile_rows * w
        if config.extract_mode != "full" and band_bytes <= budget:
            metrics.inc("repro_admission_total", decision="tiled")
            obs_annotate(admission="forced_tiled",
                         admission_estimate_bytes=estimate)
            return dc_replace(config, extract_mode="tiled",
                              extract_tile_rows=tile_rows)
        metrics.inc("repro_admission_total", decision="reject")
        reason = (
            "extract_mode='full' pins the one-shot scan"
            if config.extract_mode == "full"
            else f"even one {band_bytes} B tiled band exceeds it"
        )
        raise AdmissionRejected(
            f"estimated extraction transient {estimate} B "
            f"({u} x {w} candidate cells) exceeds the session memory "
            f"budget {budget} B, and {reason}",
            estimate_bytes=estimate, budget_bytes=budget,
        )

    def submit(
        self,
        query: JoinProjectQuery,
        *,
        timeout_ms: Optional[float] = None,
        partial_results: bool = False,
        use_memo: bool = True,
        config: Optional[MMJoinConfig] = None,
    ) -> SessionResult:
        """Serve one query under the session's fault-tolerance controls.

        ``timeout_ms`` installs a :class:`~repro.errors.Deadline` for the
        call: the planner's operator loop, the expansion-chunk loops and the
        extraction-band loops all checkpoint against it (pool workers
        inherit it), so an overrunning query raises
        :class:`~repro.errors.QueryTimeoutError` within one checkpoint
        interval of the budget — carrying the partial span tree for
        forensics.

        ``partial_results=True`` (set semantics only) keeps completed
        shards when a sibling shard subplan exhausts its retries: the
        result is the completed shards' union, flagged via
        :attr:`SessionResult.partial` and ``partial: True`` in
        ``explain()``.  Counting queries reject the flag — a partial sum
        of witness counts is wrong, not approximate.

        :meth:`evaluate` remains the uncontrolled entry point (no deadline,
        whole-query failure).
        """
        if partial_results and query.with_counts:
            raise ValueError(
                "partial_results=True requires set semantics; a counting "
                "query's partial witness sums would be wrong, not partial"
            )
        if timeout_ms is None:
            return self.evaluate(query, use_memo=use_memo, config=config,
                                 partial_results=partial_results)
        deadline = Deadline(float(timeout_ms))
        token = install_deadline(deadline)
        try:
            return self.evaluate(query, use_memo=use_memo, config=config,
                                 partial_results=partial_results)
        except QueryTimeoutError:
            self.telemetry.registry.inc(
                "repro_deadline_exceeded_total", kind=query.kind
            )
            raise
        finally:
            restore_deadline(token)

    def evaluate(
        self,
        query: JoinProjectQuery,
        use_memo: bool = True,
        config: Optional[MMJoinConfig] = None,
        partial_results: bool = False,
    ) -> SessionResult:
        """Serve one logical query through the session-aware pipeline.

        With telemetry enabled the call gets a trace (span tree rooted at
        the query kind), its latency lands in the metrics registry labelled
        by kind × serving path (``memo`` / ``warm`` / ``cold``), and calls
        over the slow-query threshold are parked in the slow log.
        """
        trace = self.telemetry.start(query.kind)
        if trace is None:  # disabled: skip straight to the untraced body
            return self._evaluate(query, use_memo, config, partial_results)
        token = trace_install(trace)
        try:
            result = self._evaluate(query, use_memo, config, partial_results)
        except QueryTimeoutError as exc:
            if exc.trace is None:
                # Attach the partial span tree: forensics see exactly
                # where the budget went before the checkpoint fired.
                exc.trace = trace
            raise
        finally:
            trace_restore(token)
            trace.finish()
        result.trace_id = trace.trace_id
        # path=None defers the warm/cold classification to the metrics flush.
        path = "memo" if result.from_memo else None
        self.telemetry.observe_query(
            trace, query.kind, path, result.seconds, result.explanation
        )
        return result

    @staticmethod
    def _serving_path(explanation: Optional[PlanExplanation]) -> str:
        """Label a fresh execution ``warm`` (all operator caches hit) or ``cold``."""
        return serving_path(explanation)

    def _evaluate(
        self,
        query: JoinProjectQuery,
        use_memo: bool = True,
        config: Optional[MMJoinConfig] = None,
        partial_results: bool = False,
    ) -> SessionResult:
        run_config = config if config is not None else self.config
        start = time.perf_counter()
        self._ensure_registered(query)
        key = self._memo_key(query, run_config) if use_memo else None
        if key is not None:
            found, value = self.memo.lookup(key)
            if found:
                obs_annotate(memo="hit")
                block, counted, explanation = value
                return SessionResult(
                    query_kind=query.kind,
                    result_block=block,
                    result_counted=counted,
                    explanation=explanation,
                    seconds=time.perf_counter() - start,
                    from_memo=True,
                )
        # Memo misses pay for real execution — that is what admission
        # control meters (memo hits allocate nothing worth metering).
        run_config = self._admit(query, run_config)
        routed = None
        if self._sharded and self.shards > 1:
            routed = self._router.route(query)
        if routed is not None:
            sharded = execute_sharded(
                routed,
                planner_for=self.planner_for,
                config=run_config,
                executor=(
                    self.context.executor(run_config.cores)
                    if run_config.cores > 1 else None
                ),
                context=self.context,
                result_cache=self.shard_result_cache,
                partial_results=partial_results,
                retry_policy=self.retry_policy,
            )
            explanation = sharded.explanation
            # The router lowers similarity/containment to the counting
            # two-path; report the original kind, as the unsharded path does.
            explanation.query_kind = query.kind
            explanation.session_stats.update(
                {f"artifacts.{k}": v for k, v in self.artifacts.stats().items()}
            )
            if self._feedback_enabled:
                # Per-shard explanations carry the real matrix products; the
                # rollup only aggregates, so feed the sub-plans to the model.
                for sub_explanation in sharded.shard_explanations:
                    self.feedback.record(sub_explanation, cores=1)
            self._record_shard_counters(explanation)
            with self._lock:
                self.queries_served += 1
            if key is not None and not explanation.session_stats.get("partial"):
                # A partial union must never be memoized: the next serve
                # re-attempts the failed shards instead of replaying them.
                value = (sharded.result_block, sharded.result_counted, explanation)
                self.memo.put(key, value, _blocks_nbytes(value))
            return SessionResult(
                query_kind=query.kind,
                result_block=sharded.result_block,
                result_counted=sharded.result_counted,
                explanation=explanation,
                seconds=time.perf_counter() - start,
                from_memo=False,
            )
        plan = self.planner_for(run_config).execute(query)
        state = plan.state
        explanation = plan.explain()
        if self._feedback_enabled:
            self.feedback.record(explanation, cores=run_config.cores)
        with self._lock:
            self.queries_served += 1
        if key is not None:  # same key as the lookup: tokens already existed
            value = (state.result_block, state.result_counted, explanation)
            self.memo.put(key, value, _blocks_nbytes(value))
        return SessionResult(
            query_kind=query.kind,
            result_block=state.result_block,
            result_counted=state.result_counted,
            explanation=explanation,
            seconds=time.perf_counter() - start,
            from_memo=False,
            plan=plan,
        )

    # -- query-by-name convenience API -------------------------------------
    def two_path(self, left: str, right: Optional[str] = None, counting: bool = False,
                 use_memo: bool = True, **overrides: Any) -> SessionResult:
        """Serve ``pi_{x,z}(left |><| right)`` over registered relations."""
        left_rel = self.catalog.get(left)
        right_rel = self.catalog.get(right) if right is not None else left_rel
        query = TwoPathQuery(left=left_rel, right=right_rel, counting=counting)
        return self.evaluate(query, use_memo=use_memo, config=self._config_with(overrides))

    def star(self, names: Sequence[str], use_memo: bool = True,
             **overrides: Any) -> SessionResult:
        """Serve the projected star join over registered relations."""
        query = StarQuery([self.catalog.get(name) for name in names])
        return self.evaluate(query, use_memo=use_memo, config=self._config_with(overrides))

    def similarity(self, name: str, c: int = 1, other: Optional[str] = None,
                   use_memo: bool = True, **overrides: Any):
        """Set similarity join over a registered family; returns ``SSJResult``.

        The underlying counting two-path is memoized independently of ``c``,
        so sweeping thresholds over the same family re-uses one evaluation.
        """
        from repro.setops.ssj import ssj_from_counted

        family = self.family(name)
        other_family = self.family(other) if other is not None else None
        query = SimilarityJoinQuery(family=family, other=other_family, overlap=c)
        result = self.evaluate(query, use_memo=use_memo, config=self._config_with(overrides))
        assert result.result_counted is not None
        return ssj_from_counted(
            result.result_counted, c, self_join=other_family is None,
            seconds=result.seconds,
        )

    def containment(self, name: str, other: Optional[str] = None,
                    use_memo: bool = True, **overrides: Any):
        """Set containment join over a registered family; returns ``SCJResult``."""
        from repro.setops.scj import scj_from_counted

        family = self.family(name)
        other_family = self.family(other) if other is not None else None
        query = ContainmentJoinQuery(family=family, other=other_family)
        result = self.evaluate(query, use_memo=use_memo, config=self._config_with(overrides))
        assert result.result_counted is not None
        return scj_from_counted(
            result.result_counted, family.sizes(), self_join=other_family is None,
            seconds=result.seconds,
        )

    # ------------------------------------------------------------------ #
    # Batched / async serving
    # ------------------------------------------------------------------ #
    @staticmethod
    def _work_signature(query: JoinProjectQuery) -> Tuple[Any, ...]:
        """Queries with equal signatures share semijoin/partition work."""
        kind = "star" if isinstance(query, StarQuery) else "binary"
        return (kind, tuple(id(rel) for rel in query.join_relations()))

    def submit_batch(
        self,
        queries: Sequence[JoinProjectQuery],
        use_memo: bool = True,
    ) -> List[SessionResult]:
        """Serve a batch, sharing preparation work and fanning out the rest.

        Queries are grouped by the relations they touch: the first member of
        each group runs synchronously, warming the semijoin-reduce and
        partition caches every other member will hit; the remaining queries
        then fan out across the session's serving pool.  Results come back
        in submission order.

        The fan-out runs on the dedicated serving pool (the same one
        :meth:`asubmit` uses), never on the operator-level
        :meth:`SessionContext.executor` pools — a follower's own parallel
        light join borrows those, and sharing one pool between the outer
        evaluations and their inner ``map`` calls would deadlock (every
        worker blocked waiting for inner tasks that can never be scheduled).
        """
        queries = list(queries)
        if not queries:
            return []
        # The batch itself is a traced call ("batch" kind): its tree records
        # the leader/follower structure, while each member query still gets
        # its own per-query trace inside.
        trace = self.telemetry.start("batch")
        start = time.perf_counter()
        if trace is None:
            return self._submit_batch(queries, use_memo)
        with trace_activate(trace):
            try:
                results = self._submit_batch(queries, use_memo)
            finally:
                trace.finish()
        metrics = self.telemetry.metrics
        metrics.inc("repro_batches_total")
        metrics.observe("repro_batch_seconds", time.perf_counter() - start)
        return results

    def _submit_batch(
        self,
        queries: List[JoinProjectQuery],
        use_memo: bool,
    ) -> List[SessionResult]:
        for query in queries:
            self._ensure_registered(query)
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        for index, query in enumerate(queries):
            groups.setdefault(self._work_signature(query), []).append(index)
        results: List[Optional[SessionResult]] = [None] * len(queries)
        followers: List[int] = []
        for members in groups.values():
            leader = members[0]
            with obs_span("batch_leader", index=leader):
                results[leader] = self.evaluate(queries[leader], use_memo=use_memo)
            followers.extend(members[1:])
        if followers:
            pool = self._async_executor()
            metrics = self.telemetry.metrics
            submitted = time.perf_counter()

            def run_follower(i: int) -> SessionResult:
                metrics.observe("repro_pool_wait_seconds",
                                time.perf_counter() - submitted, pool="serving")
                return self.evaluate(queries[i], use_memo=use_memo)

            for index, result in zip(followers, pool.map(run_follower, followers)):
                results[index] = result
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    async def asubmit(
        self,
        query: JoinProjectQuery,
        use_memo: bool = True,
        config: Optional[MMJoinConfig] = None,
    ) -> SessionResult:
        """Serve one query without blocking the calling event loop."""
        loop = asyncio.get_running_loop()
        metrics = self.telemetry.metrics
        submitted = time.perf_counter()

        def run() -> SessionResult:
            metrics.observe("repro_pool_wait_seconds",
                            time.perf_counter() - submitted, pool="serving")
            return self.evaluate(query, use_memo=use_memo, config=config)

        return await loop.run_in_executor(self._async_executor(), run)

    def _async_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._async_pool is None:
                self._async_pool = ThreadPoolExecutor(
                    max_workers=max(int(self.config.cores), 2),
                    thread_name_prefix="repro-session",
                )
            return self._async_pool

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def _record_shard_counters(self, explanation: PlanExplanation) -> None:
        """Fold one sharded execution's per-shard cache counters in."""
        with self._lock:
            for row in explanation.shard_reports:
                counters = self._shard_counters.setdefault(
                    int(row["shard"]),
                    {"queries": 0, "cache_hits": 0, "cache_misses": 0},
                )
                counters["queries"] += 1
                counters["cache_hits"] += int(row.get("cache_hits", 0))
                counters["cache_misses"] += int(row.get("cache_misses", 0))

    def _stats_snapshot(self) -> Dict[str, Any]:
        """The one place hit-rate accounting is assembled.

        ``cache_stats()``, ``shard_stats()`` and the metrics-registry gauges
        are all views over this snapshot, so the three surfaces can never
        drift from each other.
        """
        with self._lock:
            spec = self._sharding_spec
            per_shard: Dict[int, Dict[str, Any]] = {}
            for shard, counters in sorted(self._shard_counters.items()):
                lookups = counters["cache_hits"] + counters["cache_misses"]
                per_shard[shard] = {
                    **counters,
                    "hit_rate": (
                        round(counters["cache_hits"] / lookups, 4) if lookups else 0.0
                    ),
                }
            shard: Dict[str, Any] = {
                "shards": spec.num_shards if spec is not None else 0,
                "hash_shards": spec.hash_shards if spec is not None else 0,
                "heavy_keys": (
                    spec.heavy_keys.tolist() if spec is not None else []
                ),
                "relations": {
                    name: {
                        "shard_sizes": container.sizes(),
                        "tuples": len(container),
                    }
                    for name, container in sorted(self._sharded.items())
                },
                "per_shard": per_shard,
                "router": {
                    "routed": self._router.routed,
                    "fallbacks": self._router.fallbacks,
                    "last_fallback": self._router.last_fallback,
                },
            }
            cache: Dict[str, Any] = {
                "artifacts": self.artifacts.stats(),
                "memo": self.memo.stats(),
                "queries_served": self.queries_served,
                "feedback_observations": self.feedback.observations,
                "cost_model_points": len(self.cost_model.table()),
            }
            if self._sharded:
                cache["shards"] = shard
            return {"cache": cache, "shard": shard}

    def shard_stats(self) -> Dict[str, Any]:
        """Sharding layout and cumulative per-shard cache behaviour.

        Feeds the ``repro-cli shard`` report: the frozen spec (hash vs
        heavy shards and their keys), every sharded relation's shard sizes,
        and per-shard operator-cache hit rates accumulated over the
        session's sharded executions.  (A view over the unified
        :meth:`_stats_snapshot` accounting.)
        """
        return self._stats_snapshot()["shard"]

    def cache_stats(self) -> Dict[str, Any]:
        """Counters for both caches plus serving totals (CLI report).

        A view over the unified :meth:`_stats_snapshot` accounting — the
        same numbers the metrics registry exports as gauges.
        """
        return self._stats_snapshot()["cache"]

    def metrics(self) -> MetricsSnapshot:
        """A frozen snapshot of the session's metrics registry.

        Pull-model gauges (cache hit ratios per artifact kind, cache bytes,
        per-shard counters, cost-feedback calibration ratios) are refreshed
        from :meth:`_stats_snapshot` first, then every series — including
        the push-model query/write counters and latency histograms — is
        copied out.  Use :meth:`MetricsSnapshot.delta` against an earlier
        snapshot for interval readings, and :meth:`MetricsSnapshot.to_json`
        / :meth:`MetricsSnapshot.to_prometheus` to export.
        """
        self._refresh_gauges()
        return self.telemetry.metrics.snapshot()

    def _refresh_gauges(self) -> None:
        """Flatten the unified stats snapshot into registry gauges."""
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        snapshot = self._stats_snapshot()
        cache = snapshot["cache"]
        for cache_name in ("artifacts", "memo"):
            counters = cache[cache_name]
            lookups = counters["hits"] + counters["misses"]
            metrics.set_gauge("repro_cache_hit_ratio",
                              counters["hits"] / lookups if lookups else 0.0,
                              cache=cache_name, kind="all")
            metrics.set_gauge("repro_cache_bytes", counters["bytes"],
                              cache=cache_name)
            metrics.set_gauge("repro_cache_entries", counters["entries"],
                              cache=cache_name)
            metrics.set_gauge("repro_cache_evictions", counters["evictions"],
                              cache=cache_name)
        # Per-artifact-kind hit ratios (semijoin / partition / operands /
        # memo / shard_result / shard_merged / ...), from the cache's own
        # per-kind accounting.
        for cache_name, store in (("artifacts", self.artifacts), ("memo", self.memo)):
            for kind, row in store.kind_stats().items():
                lookups = row["hits"] + row["misses"]
                metrics.set_gauge("repro_cache_hit_ratio",
                                  row["hits"] / lookups if lookups else 0.0,
                                  cache=cache_name, kind=kind)
        metrics.set_gauge("repro_session_queries_served", cache["queries_served"])
        metrics.set_gauge("repro_feedback_observations",
                          cache["feedback_observations"])
        shard = snapshot["shard"]
        for shard_id, counters in shard["per_shard"].items():
            metrics.set_gauge("repro_shard_queries", counters["queries"],
                              shard=shard_id)
            metrics.set_gauge("repro_shard_cache_hit_ratio", counters["hit_rate"],
                              shard=shard_id)
        router = shard["router"]
        metrics.set_gauge("repro_router_routed", router["routed"])
        metrics.set_gauge("repro_router_fallbacks", router["fallbacks"])
        # Cost-feedback calibration: estimated-vs-actual ratios per operator
        # and per matmul backend, plus per-extraction-mode observed rates.
        for labels, value in self.feedback.gauges():
            metrics.set_gauge("repro_cost_ratio" if "mode" not in labels
                              else "repro_extract_seconds_per_cell",
                              value, **labels)

    def close(self) -> None:
        """Shut down the session's thread pools (caches just drop with it).

        Idempotent; also registered via ``atexit`` so sessions abandoned
        without ``close()`` (or killed mid-serve by KeyboardInterrupt)
        still tear their persistent pools down at interpreter exit.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        atexit.unregister(self.close)
        self.context.close()
        with self._lock:
            if self._async_pool is not None:
                self._async_pool.shutdown(wait=True)
                self._async_pool = None

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
