"""Estimated-vs-actual cost feedback for in-session calibration.

Every executed plan reports, per physical operator, the optimizer's
estimated cost (seconds) and the measured wall-clock seconds.  The serving
layer closes the loop: :class:`CostFeedback` records those pairs and feeds
the heavy operator's measured matrix products back into the session's
:class:`~repro.matmul.cost_model.MatMulCostModel`, so the optimizer's
threshold search and the registry's ``auto`` backend choice sharpen as the
session serves traffic — the DIM³-style reuse of density/cost state across
join-project calls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.matmul.cost_model import MatMulCostModel
from repro.plan.explain import PlanExplanation

# A long-lived session records feedback forever; keep a bounded window of
# recent per-operator rows (the calibration itself folds into the cost
# model's table, which is bounded by distinct cube sizes).
MAX_FEEDBACK_ROWS = 2048


@dataclass
class FeedbackRow:
    """One operator observation: estimate vs. measurement."""

    operator: str
    estimated_seconds: float
    actual_seconds: float
    # The matmul backend that ran (None for non-matmul operators) — lets the
    # gauges split the heavy operator's calibration error per backend.
    backend: Optional[str] = None

    @property
    def ratio(self) -> Optional[float]:
        """``actual / estimated`` (None when the estimate is zero)."""
        if self.estimated_seconds <= 0.0:
            return None
        return self.actual_seconds / self.estimated_seconds


@dataclass
class CostFeedback:
    """Records per-operator estimate/measurement pairs and calibrates.

    Parameters
    ----------
    cost_model:
        The session's shared model.  Measured heavy matrix products are fed
        into :meth:`MatMulCostModel.observe` so later estimates (and hence
        threshold/backend choices) reflect the hardware actually serving the
        session rather than the static flops fallback.
    """

    cost_model: Optional[MatMulCostModel] = None
    rows: Deque[FeedbackRow] = field(
        default_factory=lambda: deque(maxlen=MAX_FEEDBACK_ROWS)
    )
    observations: int = 0
    extraction_observations: int = 0
    # Observed per-extraction-mode rates (seconds per product cell), blended
    # as an EMA over every mode — including screened scans, which carry no
    # clean *calibration* signal but are still worth exposing as a gauge.
    extract_rates: Dict[str, float] = field(default_factory=dict)

    def record(self, explanation: PlanExplanation, cores: int = 1) -> None:
        """Fold one executed plan's explanation into the feedback state."""
        for report in explanation.operators:
            if report.status != "ran":
                continue
            self.rows.append(FeedbackRow(
                operator=report.operator,
                estimated_seconds=float(report.estimated_cost),
                actual_seconds=float(report.actual_seconds),
                backend=report.backend,
            ))
            if report.operator != "matmul_heavy":
                continue
            dims = report.detail.get("matrix_dims")
            multiply_seconds = float(report.detail.get("multiply_seconds", 0.0))
            if not dims or min(dims) <= 0 or multiply_seconds <= 0.0:
                continue
            u, v, w = (int(d) for d in dims)
            extract_mode = report.detail.get("extract_mode")
            extract_seconds = float(report.detail.get("extract_seconds", 0.0))
            if extract_mode and extract_seconds > 0.0:
                rate = extract_seconds / float(u * w)
                prev = self.extract_rates.get(str(extract_mode))
                self.extract_rates[str(extract_mode)] = (
                    rate if prev is None else 0.5 * prev + 0.5 * rate
                )
            if self.cost_model is None:
                continue
            self.cost_model.observe(u, v, w, cores=cores, seconds=multiply_seconds)
            self.observations += 1
            # Full-pass extraction scans calibrate the per-cell extraction
            # constant the per-mode estimates are built from; screened scans
            # skip unknown amounts of work and carry no clean signal.
            if extract_mode in ("full", "adaptive") and extract_seconds > 0.0:
                self.cost_model.observe_extraction(
                    u, w, extract_seconds, mode=str(extract_mode), cores=cores
                )
                self.extraction_observations += 1

    def gauges(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` rows for the metrics registry.

        Exposes the feedback loop's internal state as gauges: observed
        actual-vs-estimated cost ratios per operator and (for the heavy
        matmul operator) per backend, plus the per-extraction-mode observed
        seconds-per-cell rates.  Ratios aggregate the bounded recent-rows
        window, matching :meth:`summary`.
        """
        out: List[Tuple[Dict[str, str], float]] = []
        by_operator: Dict[str, Tuple[float, float]] = {}
        by_backend: Dict[str, Tuple[float, float]] = {}
        for row in self.rows:
            est, act = by_operator.get(row.operator, (0.0, 0.0))
            by_operator[row.operator] = (est + row.estimated_seconds,
                                         act + row.actual_seconds)
            if row.operator == "matmul_heavy" and row.backend:
                est, act = by_backend.get(row.backend, (0.0, 0.0))
                by_backend[row.backend] = (est + row.estimated_seconds,
                                           act + row.actual_seconds)
        for operator in sorted(by_operator):
            est, act = by_operator[operator]
            if est > 0.0:
                out.append(({"operator": operator}, act / est))
        for backend in sorted(by_backend):
            est, act = by_backend[backend]
            if est > 0.0:
                out.append(({"backend": backend}, act / est))
        for mode in sorted(self.extract_rates):
            out.append(({"mode": mode}, self.extract_rates[mode]))
        return out

    def summary(self) -> List[Dict[str, object]]:
        """Per-operator aggregate rows (printed by ``repro-cli session``)."""
        grouped: Dict[str, List[FeedbackRow]] = {}
        for row in self.rows:
            grouped.setdefault(row.operator, []).append(row)
        out: List[Dict[str, object]] = []
        for operator in sorted(grouped):
            rows = grouped[operator]
            est = sum(r.estimated_seconds for r in rows)
            act = sum(r.actual_seconds for r in rows)
            out.append({
                "operator": operator,
                "runs": len(rows),
                "estimated_seconds": round(est, 6),
                "actual_seconds": round(act, 6),
                "actual/estimated": round(act / est, 3) if est > 0 else float("nan"),
            })
        return out
