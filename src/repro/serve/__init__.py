"""Serving layer: long-lived query sessions with cached derived artifacts.

Public surface:

* :class:`~repro.serve.session.QuerySession` — register relations once,
  serve many queries; batched (:meth:`~repro.serve.session.QuerySession.submit_batch`)
  and async (:meth:`~repro.serve.session.QuerySession.asubmit`) entry points.
* :class:`~repro.serve.artifacts.ArtifactCache` — the byte-budgeted LRU
  underlying both the derived-artifact cache and the plan/result memo.
* :class:`~repro.serve.feedback.CostFeedback` — estimated-vs-actual operator
  costs, calibrating the session's matmul cost model.
* Telemetry (:mod:`repro.obs`, re-exported here) — per-query span traces,
  a metrics registry with JSON/Prometheus exporters, and a slow-query log;
  configured via ``QuerySession(telemetry=...)`` and read via
  :meth:`~repro.serve.session.QuerySession.metrics`.

The sharded execution layer (``QuerySession(shards=K)``,
``register(..., sharded=True)``, ``update_shard``) lives in
:mod:`repro.shard` and is surfaced entirely through the session.
"""

from repro.obs import MetricsSnapshot, Telemetry, TelemetryConfig
from repro.serve.artifacts import ArtifactCache
from repro.serve.feedback import CostFeedback, FeedbackRow
from repro.serve.session import (
    QuerySession,
    SessionContext,
    SessionResult,
    config_signature,
)

__all__ = [
    "ArtifactCache",
    "CostFeedback",
    "FeedbackRow",
    "MetricsSnapshot",
    "QuerySession",
    "SessionContext",
    "SessionResult",
    "Telemetry",
    "TelemetryConfig",
    "config_signature",
]
