"""Serving layer: long-lived query sessions with cached derived artifacts.

Public surface:

* :class:`~repro.serve.session.QuerySession` — register relations once,
  serve many queries; batched (:meth:`~repro.serve.session.QuerySession.submit_batch`)
  and async (:meth:`~repro.serve.session.QuerySession.asubmit`) entry points.
* :class:`~repro.serve.artifacts.ArtifactCache` — the byte-budgeted LRU
  underlying both the derived-artifact cache and the plan/result memo.
* :class:`~repro.serve.feedback.CostFeedback` — estimated-vs-actual operator
  costs, calibrating the session's matmul cost model.

The sharded execution layer (``QuerySession(shards=K)``,
``register(..., sharded=True)``, ``update_shard``) lives in
:mod:`repro.shard` and is surfaced entirely through the session.
"""

from repro.serve.artifacts import ArtifactCache
from repro.serve.feedback import CostFeedback, FeedbackRow
from repro.serve.session import (
    QuerySession,
    SessionContext,
    SessionResult,
    config_signature,
)

__all__ = [
    "ArtifactCache",
    "CostFeedback",
    "FeedbackRow",
    "QuerySession",
    "SessionContext",
    "SessionResult",
    "config_signature",
]
