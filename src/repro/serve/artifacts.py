"""LRU artifact cache with byte budgeting for the serving layer.

A :class:`QuerySession <repro.serve.session.QuerySession>` amortises query
preprocessing by caching *derived artifacts* — semijoin-reduced relation
lists (whose lazy layouts, ``sorted_by_y`` and the y-indexes, stay warm with
them), light/heavy partitions, matmul operand matrices, and memoized plan
results.  All of them live in instances of one structure:

* entries are keyed by structured tuples whose leaves embed
  ``("rel", name, version)`` tokens, so a data mutation invalidates exactly
  the artifacts derived from the mutated relation;
* every entry carries its byte size; inserts evict least-recently-used
  entries until the configured budget is met (single entries larger than the
  whole budget are refused rather than thrashing the cache);
* hits, misses, evictions and current bytes are counted — the counters feed
  ``explain()`` details and the ``repro-cli session`` report.

The cache is thread-safe: ``submit_batch`` fans query evaluation out across
a thread pool and every worker consults the same caches.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Collection, Dict, Optional, Tuple


def token_mentions(token: Any, name: str) -> bool:
    """Whether a (possibly nested) cache-key token references relation ``name``.

    Leaf tokens look like ``("rel", name, version)`` for whole relations and
    ``("shard", name, shard, shard_version)`` for one shard of a sharded
    registration; derived tokens nest their parents, e.g.
    ``("drv", "semijoin", (parent, parent), mode)``.
    """
    if isinstance(token, tuple):
        if len(token) == 3 and token[0] == "rel":
            return token[1] == name
        if len(token) == 4 and token[0] == "shard":
            return token[1] == name
        return any(token_mentions(part, name) for part in token)
    return False


def token_mentions_shard_update(token: Any, name: str, shard: int) -> bool:
    """Whether a token is stale after ``update_shard(name, shard)``.

    Matches artifacts derived from the mutated shard (``("shard", name,
    shard, v)`` leaves) *and* anything keyed on the whole relation
    (``("rel", name, v)`` leaves — the plan memo and unsharded artifacts,
    whose results change whenever any shard does).  Sibling-shard leaves do
    **not** match: their derived state stays warm.
    """
    if isinstance(token, tuple):
        if len(token) == 3 and token[0] == "rel":
            return token[1] == name
        if len(token) == 4 and token[0] == "shard":
            return token[1] == name and token[2] == shard
        return any(token_mentions_shard_update(part, name, shard) for part in token)
    return False


def token_mentions_write(token: Any, name: str, shards: Collection[int]) -> bool:
    """Whether a token is stale after a delta write touching ``shards``.

    The multi-shard generalisation of :func:`token_mentions_shard_update`:
    an append/delete batch hash-routes to several shards at once, and one
    invalidation pass must cover all of them.  Touched-shard leaves and
    whole-relation (``("rel", name, v)``) leaves match; sibling shards'
    derived state stays warm.
    """
    if isinstance(token, tuple):
        if len(token) == 3 and token[0] == "rel":
            return token[1] == name
        if len(token) == 4 and token[0] == "shard":
            return token[1] == name and token[2] in shards
        return any(token_mentions_write(part, name, shards) for part in token)
    return False


def token_mentions_any_shard(token: Any, name: str) -> bool:
    """Whether a token references *any* shard leaf of relation ``name``.

    Used when a relation is re-partitioned under a new spec: every shard
    artifact is stale, but entries keyed only on the whole relation (whose
    data did not change) survive.
    """
    if isinstance(token, tuple):
        if len(token) == 4 and token[0] == "shard":
            return token[1] == name
        if len(token) == 3 and token[0] == "rel":
            return False
        return any(token_mentions_any_shard(part, name) for part in token)
    return False


class ArtifactCache:
    """A byte-budgeted, thread-safe LRU mapping for session artifacts."""

    def __init__(self, max_bytes: Optional[int] = None, name: str = "artifacts") -> None:
        self.name = name
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.RLock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Per-artifact-kind hit/miss counts (kind = structured key's leading
        # tag, e.g. "semijoin" / "operands" / "shard_result").  Feeds the
        # metrics registry's per-kind hit-ratio gauges; the aggregate
        # stats() shape is unchanged.
        self._kind_hits: Dict[str, int] = {}
        self._kind_misses: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def lookup(self, key: Any) -> Tuple[bool, Any]:
        """``(found, value)``; counts a hit or a miss and refreshes LRU order."""
        kind = key[0] if type(key) is tuple and key else "other"
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
            return True, entry[0]

    def put(self, key: Any, value: Any, nbytes: int) -> None:
        """Insert (or replace) an entry, evicting LRU entries over budget."""
        nbytes = max(int(nbytes), 0)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1]
            if self.max_bytes is not None and nbytes > self.max_bytes:
                # One artifact larger than the whole budget would immediately
                # evict everything else and then itself; refuse instead.  The
                # old entry under this key must still go: the caller computed
                # a replacement, so the cached value is stale — leaving it
                # would keep serving outdated hits.
                if old is not None:
                    self.evictions += 1
                return
            self._entries[key] = (value, nbytes)
            self.current_bytes += nbytes
            if self.max_bytes is not None:
                while self.current_bytes > self.max_bytes and len(self._entries) > 1:
                    _, (_, evicted_bytes) = self._entries.popitem(last=False)
                    self.current_bytes -= evicted_bytes
                    self.evictions += 1

    def get_or_build(self, key: Any, builder: Callable[[], Any],
                     nbytes: Callable[[Any], int]) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — build and insert on miss."""
        found, value = self.lookup(key)
        if found:
            return value, True
        value = builder()
        self.put(key, value, nbytes(value))
        return value, False

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def invalidate_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                _, nbytes = self._entries.pop(key)
                self.current_bytes -= nbytes
            self.invalidations += len(doomed)
            return len(doomed)

    def invalidate_relation(self, name: str) -> int:
        """Drop every artifact derived from relation ``name`` (any version)."""
        return self.invalidate_where(lambda key: token_mentions(key, name))

    def invalidate_shard(self, name: str, shard: int) -> int:
        """Drop artifacts stale after a single-shard update of ``name``.

        Everything derived from the mutated shard or from the whole relation
        goes; sibling shards' artifacts stay warm — this is the shard-scoped
        invalidation that makes ``update_shard`` cheap.
        """
        return self.invalidate_where(
            lambda key: token_mentions_shard_update(key, name, shard)
        )

    def invalidate_write(self, name: str, shards: Collection[int]) -> int:
        """Drop artifacts stale after a delta write touching ``shards``.

        One pass over the cache covers every shard an append/delete batch
        routed rows to (plus whole-relation entries); untouched shards'
        artifacts survive, which is what keeps warm serving warm across
        small writes.
        """
        return self.invalidate_where(
            lambda key: token_mentions_write(key, name, shards)
        )

    def invalidate_shards(self, name: str) -> int:
        """Drop every shard-derived artifact of ``name`` (re-partitioning)."""
        return self.invalidate_where(lambda key: token_mentions_any_shard(key, name))

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self.current_bytes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counter snapshot (feeds explain() details and the CLI report)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def kind_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-artifact-kind ``{"hits": n, "misses": n}`` rows.

        Kept separate from :meth:`stats` so the aggregate dict's shape (which
        golden explains embed) never changes.
        """
        with self._lock:
            kinds = sorted(set(self._kind_hits) | set(self._kind_misses))
            return {
                kind: {
                    "hits": self._kind_hits.get(kind, 0),
                    "misses": self._kind_misses.get(kind, 0),
                }
                for kind in kinds
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"ArtifactCache({self.name!r}, entries={s['entries']}, "
                f"bytes={s['bytes']}, hits={s['hits']}, misses={s['misses']})")
