"""Command-line interface for the reproduction.

Ten subcommands cover the common workflows without writing any Python:

* ``repro-cli join <edge-list>`` — evaluate the 2-path join-project over an
  edge-list file (with ``--engine`` choosing any registered query engine,
  and ``--shards K`` serving through a sharded session) and report the
  output size, strategy and timings;
* ``repro-cli shard <edge-list> --shards K`` — inspect the skew-aware
  sharding: shard sizes, heavy-key shards, the per-shard plan breakdown and
  per-shard cache hit rates over repeated serving;
* ``repro-cli explain <edge-list>`` — run the planner pipeline and print the
  chosen plan: strategy, thresholds, matmul backend and per-operator
  estimated vs. actual cost;
* ``repro-cli session <edge-list>`` — serve the same query repeatedly from a
  :class:`~repro.serve.session.QuerySession` and report the cold-vs-warm
  timings, cache-hit counters and the estimated-vs-actual cost feedback;
* ``repro-cli serve <edge-list>`` — a long-lived serving loop reading query
  and write commands (``append`` / ``delete`` route as shard deltas under
  ``--shards K``) from stdin (or ``--script``) against one session; the loop
  also answers ``metrics`` / ``trace <id>`` and prints a one-line metrics
  summary on exit;
* ``repro-cli metrics <edge-list>`` — run a small cold/warm/memo workload and
  export the session's metrics registry (Prometheus text or JSON);
* ``repro-cli trace <edge-list>`` — run the same workload with every query
  recorded and print one query's span tree (slow-query forensics);
* ``repro-cli ssj <edge-list> --overlap C`` — run the set similarity join
  with a chosen method;
* ``repro-cli scj <edge-list>`` — run the set containment join;
* ``repro-cli datasets`` — regenerate the Table 2 dataset-statistics rows.

The CLI is intentionally thin: it parses arguments, calls the same public API
the examples use, and prints paper-style tables via :mod:`repro.bench.report`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.report import format_table
from repro.core.config import EXTRACT_MODES, MATRIX_BACKENDS, MMJoinConfig
from repro.core.star import star_join_detailed
from repro.core.two_path import two_path_join, two_path_join_detailed
from repro.data.loaders import load_edge_list
from repro.data.setfamily import SetFamily
from repro.engines.registry import available_engines, make_engine
from repro.setops.scj import SCJ_METHODS, set_containment_join
from repro.setops.ssj import SSJ_METHODS, set_similarity_join

BACKEND_CHOICES = list(MATRIX_BACKENDS)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Fast join-project query evaluation using matrix multiplication",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    join = sub.add_parser("join", help="evaluate the 2-path join-project over an edge list")
    _add_join_options(join)
    join.add_argument("--engine", choices=available_engines(), default="mmjoin",
                      help="query engine to evaluate with (default: mmjoin)")
    join.add_argument("--shards", type=int, default=1,
                      help="serve through a sharded session with this many hash "
                           "shards (mmjoin engine only; default: unsharded)")

    shard = sub.add_parser(
        "shard",
        help="inspect skew-aware sharding: shard sizes, heavy keys, cache hit rates",
    )
    _add_join_options(shard)
    shard.add_argument("--shards", type=int, default=4,
                       help="number of hash shards (heavy-key shards come on top)")
    shard.add_argument("--repeat", type=int, default=2,
                       help="number of warm re-evaluations after the cold run")

    explain = sub.add_parser(
        "explain",
        help="print the physical plan (operators, thresholds, backend, costs)",
    )
    _add_join_options(explain)
    explain.add_argument("--query", choices=["two-path", "star"], default="two-path",
                         help="logical query shape to plan")
    explain.add_argument("--k", type=int, default=3,
                         help="number of relations for --query star (self-join copies)")

    session = sub.add_parser(
        "session",
        help="serve a repeated query from a QuerySession (cold vs warm report)",
    )
    _add_join_options(session)
    session.add_argument("--repeat", type=int, default=3,
                         help="number of warm re-evaluations after the cold run")
    session.add_argument("--no-memo", action="store_true",
                         help="bypass the plan/result memo (exercise artifact caches only)")

    serve = sub.add_parser(
        "serve",
        help="serve query commands against one long-lived session",
    )
    _add_join_options(serve)
    serve.add_argument("--script", default=None,
                       help="file of serve commands (default: read stdin)")
    serve.add_argument("--shards", type=int, default=1,
                       help="serve from a sharded session with this many hash "
                            "shards; append/delete then route as shard deltas "
                            "(default: unsharded)")
    serve.add_argument("--lazy-merge", type=int, default=4096,
                       help="write-absorption threshold: appends/deletes below "
                            "this many pending rows per shard buffer until the "
                            "next read (default: 4096; 0 folds eagerly)")
    serve.add_argument("--slow-ms", type=float, default=0.0,
                       help="slow-query-log threshold in milliseconds "
                            "(default: 0 — record every query, so `trace <id>` "
                            "can replay any of them)")
    serve.add_argument("--timeout-ms", type=float, default=0.0,
                       help="per-command query deadline in milliseconds; an "
                            "overrunning query is cancelled cooperatively and "
                            "reported as a timeout (default: 0 — unbounded)")
    serve.add_argument("--memory-budget-mb", type=float, default=0.0,
                       help="admission-control budget for one query's "
                            "extraction transient, in MiB; over-budget queries "
                            "are forced onto tiled extraction or rejected "
                            "(default: 0 — admit everything)")

    metrics = sub.add_parser(
        "metrics",
        help="run a cold/warm/memo workload and export session metrics",
    )
    _add_join_options(metrics)
    metrics.add_argument("--shards", type=int, default=1,
                         help="serve from a sharded session with this many "
                              "hash shards (default: unsharded)")
    metrics.add_argument("--repeat", type=int, default=2,
                         help="number of warm re-evaluations after the cold run")
    metrics.add_argument("--format", choices=["prometheus", "json"],
                         default="prometheus",
                         help="exposition format (default: prometheus)")

    trace = sub.add_parser(
        "trace",
        help="run a traced workload and print one query's span tree",
    )
    _add_join_options(trace)
    trace.add_argument("--shards", type=int, default=1,
                       help="serve from a sharded session with this many "
                            "hash shards (default: unsharded)")
    trace.add_argument("--repeat", type=int, default=1,
                       help="number of warm re-evaluations after the cold run")
    trace.add_argument("--id", default=None,
                       help="trace id to print (default: the slowest recorded "
                            "query)")

    ssj = sub.add_parser("ssj", help="set similarity join over an edge list (set_id element)")
    ssj.add_argument("path")
    ssj.add_argument("--overlap", "-c", type=int, default=1)
    ssj.add_argument("--method", choices=list(SSJ_METHODS), default="mmjoin")

    scj = sub.add_parser("scj", help="set containment join over an edge list (set_id element)")
    scj.add_argument("path")
    scj.add_argument("--method", choices=list(SCJ_METHODS), default="mmjoin")

    datasets = sub.add_parser("datasets", help="print the Table 2 dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.12)

    return parser


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="edge-list file (x y per line)")
    parser.add_argument("--delta1", type=int, default=None, help="degree threshold for y")
    parser.add_argument("--delta2", type=int, default=None, help="degree threshold for x/z")
    parser.add_argument("--backend", choices=BACKEND_CHOICES, default="auto")
    parser.add_argument("--no-optimizer", action="store_true",
                        help="force the plain worst-case optimal join")
    parser.add_argument("--tile-rows", type=int, default=None,
                        help="row-band height of the tiled non-zero extraction "
                             "(default: density-aware auto; 0 = one-shot full scan)")
    parser.add_argument("--extract-mode", choices=EXTRACT_MODES, default="auto",
                        help="non-zero extraction strategy: auto (adaptive "
                             "bail-out), full, tiled, adaptive, or core "
                             "(DIM3 dense-core mapping)")


def _config_from_args(args: argparse.Namespace) -> MMJoinConfig:
    config = MMJoinConfig(matrix_backend=args.backend,
                          extract_tile_rows=getattr(args, "tile_rows", None),
                          extract_mode=getattr(args, "extract_mode", "auto"))
    if args.delta1 is not None and args.delta2 is not None:
        config = config.with_thresholds(args.delta1, args.delta2)
    if args.no_optimizer:
        config = config.without_optimizer()
    return config


def _run_join(args: argparse.Namespace) -> int:
    relation = load_edge_list(args.path)
    if args.engine == "mmjoin" and args.shards > 1:
        from repro.serve import QuerySession

        with QuerySession(config=_config_from_args(args), shards=args.shards) as session:
            session.register(relation, name="R", sharded=True)
            served = session.two_path("R", "R", use_memo=False)
            stats = served.explanation.session_stats if served.explanation else {}
            rows = [{
                "tuples": len(relation),
                "output_pairs": served.output_size,
                "strategy": served.strategy,
                "backend": served.backend,
                "shards": session.sharding_spec.num_shards,
                "shards_executed": stats.get("shards_executed", 0),
                "shards_skipped": stats.get("shards_skipped_empty", 0),
                "seconds": round(served.seconds, 6),
            }]
        print(format_table(rows, title=f"sharded 2-path join-project over {args.path}"))
        return 0
    if args.engine == "mmjoin":
        result = two_path_join(relation, relation, config=_config_from_args(args))
        rows = [{
            "tuples": len(relation),
            "output_pairs": len(result),
            "strategy": result.strategy,
            "delta1": result.delta1,
            "delta2": result.delta2,
            "matrix_dims": str(result.matrix_dims),
            "seconds": result.timings.get("total", 0.0),
        }]
    else:
        engine = make_engine(args.engine, config=_config_from_args(args))
        engine_result = engine.run_two_path(relation, relation)
        rows = [{
            "tuples": len(relation),
            "output_pairs": len(engine_result),
            "engine": args.engine,
            "seconds": engine_result.seconds,
        }]
    print(format_table(rows, title=f"2-path join-project over {args.path}"))
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    if args.query == "star":
        result = star_join_detailed([relation] * max(int(args.k), 1), config=config)
    else:
        result = two_path_join_detailed(relation, relation, config=config)
    print(f"plan for {args.query} join-project over {args.path}")
    print(result.explain())
    return 0


def _run_session(args: argparse.Namespace) -> int:
    from repro.serve import QuerySession

    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    rows = []
    with QuerySession(config=config) as session:
        session.register(relation, name="R")
        for run in range(max(int(args.repeat), 1) + 1):
            result = session.two_path("R", "R", use_memo=not args.no_memo)
            explanation = result.explanation
            hits = 0
            if explanation is not None:
                hits = explanation.session_stats.get("operator_cache_hits", 0)
            rows.append({
                "run": "cold" if run == 0 else f"warm{run}",
                "memo": "hit" if result.from_memo else "miss",
                "operator_cache_hits": hits,
                "output_pairs": result.output_size,
                "seconds": round(result.seconds, 6),
            })
        print(format_table(rows, title=f"session serving over {args.path}"))
        stats = session.cache_stats()
        artifacts, memo = stats["artifacts"], stats["memo"]
        print(f"artifact cache: {artifacts['hits']} hits / {artifacts['misses']} misses"
              f" / {artifacts['bytes']} bytes")
        print(f"memo cache:     {memo['hits']} hits / {memo['misses']} misses"
              f" / {memo['bytes']} bytes")
        print(f"feedback: {stats['feedback_observations']} matmul observations,"
              f" {stats['cost_model_points']} cost-model calibration points")
        feedback_rows = session.feedback.summary()
        if feedback_rows:
            print(format_table(feedback_rows, title="estimated vs actual operator cost"))
    return 0


def _run_shard(args: argparse.Namespace) -> int:
    from repro.serve import QuerySession

    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    with QuerySession(config=config, shards=max(int(args.shards), 1)) as session:
        session.register(relation, name="R", sharded=True)
        spec = session.sharding_spec
        container = session.sharded("R")
        sizes = container.sizes()
        layout_rows = []
        for row in spec.describe():
            layout_rows.append({**row, "tuples": sizes[row["shard"]]})
        print(format_table(
            layout_rows,
            title=f"shard layout for {args.path} "
                  f"({spec.hash_shards} hash + {spec.num_heavy} heavy shards)",
        ))
        result = session.two_path("R", "R", use_memo=False)
        for _ in range(max(int(args.repeat), 1)):
            result = session.two_path("R", "R", use_memo=False)
        if result.explanation is not None:
            print()
            print(result.explain())
        stats = session.shard_stats()
        rate_rows = [
            {"shard": shard, **counters}
            for shard, counters in stats["per_shard"].items()
        ]
        if rate_rows:
            print()
            print(format_table(rate_rows, title="per-shard operator cache hit rates"))
        print(f"router: {stats['router']['routed']} routed / "
              f"{stats['router']['fallbacks']} fallbacks")
    return 0


SERVE_COMMANDS = ("two-path [counts] | star K | ssj C | scj | "
                  "append x y [x y ...] | delete x y [x y ...] | "
                  "explain | stats | metrics [prom|json] | trace [id] | quit")


def _run_serve(args: argparse.Namespace) -> int:
    from repro.serve import QuerySession, TelemetryConfig

    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    if args.script is not None:
        with open(args.script, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin
    shards = max(int(getattr(args, "shards", 1)), 1)
    telemetry = TelemetryConfig(
        slow_query_seconds=max(float(getattr(args, "slow_ms", 0.0)), 0.0) / 1000.0
    )
    budget_mb = max(float(getattr(args, "memory_budget_mb", 0.0)), 0.0)
    timeout_ms = max(float(getattr(args, "timeout_ms", 0.0)), 0.0)
    with QuerySession(config=config, shards=shards,
                      lazy_merge_rows=max(int(getattr(args, "lazy_merge", 4096)), 0),
                      telemetry=telemetry,
                      memory_budget_bytes=(
                          int(budget_mb * (1 << 20)) if budget_mb else None
                      ),
                      ) as session:
        session.register(relation, name="R", sharded=shards > 1)
        print(f"serving R ({len(relation)} tuples) from {args.path}"
              + (f" across {session.sharding_spec.num_shards} shards"
                 if shards > 1 else ""))
        print(f"commands: {SERVE_COMMANDS}")
        try:
            for raw in lines:
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                if _serve_command(session, line,
                                  timeout_ms=timeout_ms or None) is False:
                    break
        except KeyboardInterrupt:
            # Clean break: the `with` still tears down the persistent
            # pools, and the metrics digest below still prints.
            print("\ninterrupted")
        print(_metrics_summary(session))
    return 0


def _metrics_summary(session) -> str:
    """One-line session metrics digest (printed when the serve loop exits)."""
    snapshot = session.metrics()
    queries = snapshot.families.get("repro_queries_total")
    total = 0
    by_path: dict = {}
    if queries is not None:
        for labels, value in queries["series"].items():
            total += int(value)
            path = dict(labels).get("path", "?")
            by_path[path] = by_path.get(path, 0) + int(value)
    latency = snapshot.families.get("repro_query_seconds")
    seconds = count = 0
    if latency is not None:
        for series in latency["series"].values():
            seconds += series["sum"]
            count += series["count"]
    writes = snapshot.families.get("repro_writes_total")
    n_writes = 0
    if writes is not None:
        n_writes = int(sum(writes["series"].values()))
    hit_ratio = snapshot.value("repro_cache_hit_ratio", cache="artifacts", kind="all")
    paths = "/".join(f"{path}:{by_path[path]}" for path in sorted(by_path)) or "none"
    mean_ms = (seconds / count * 1e3) if count else 0.0
    return (f"metrics: {total} queries ({paths}), mean {mean_ms:.3f} ms, "
            f"artifact hit ratio {hit_ratio:.2f}, {n_writes} writes, "
            f"{len(session.telemetry.slow_log)} slow-log entries")


def _serve_command(session, line: str,
                   timeout_ms: "float | None" = None) -> bool:
    """Execute one serve-loop command; returns False on quit.

    ``timeout_ms`` installs a cooperative deadline around the command, so
    any query it triggers (including through the convenience methods) is
    cancelled and reported instead of hanging the loop.
    """
    from repro.errors import (
        Deadline,
        QueryTimeoutError,
        ReproError,
        install_deadline,
        restore_deadline,
    )

    parts = line.split()
    command = parts[0].lower()
    deadline = Deadline(timeout_ms) if timeout_ms else None
    token = install_deadline(deadline) if deadline is not None else None
    try:
        if command in ("quit", "exit"):
            return False
        if command == "two-path":
            counting = len(parts) > 1 and parts[1] == "counts"
            result = session.two_path("R", "R", counting=counting)
            memo = "hit" if result.from_memo else "miss"
            print(f"two-path: {result.output_size} pairs in {result.seconds:.6f}s "
                  f"(memo {memo}, strategy {result.strategy}, backend {result.backend})")
        elif command == "star":
            k = int(parts[1]) if len(parts) > 1 else 3
            result = session.star(["R"] * max(k, 1))
            memo = "hit" if result.from_memo else "miss"
            print(f"star({k}): {result.output_size} tuples in {result.seconds:.6f}s "
                  f"(memo {memo})")
        elif command == "ssj":
            c = int(parts[1]) if len(parts) > 1 else 1
            result = session.similarity("R", c=c)
            print(f"ssj(c={c}): {len(result)} similar pairs in "
                  f"{result.timings.get('total', 0.0):.6f}s")
        elif command == "scj":
            result = session.containment("R")
            print(f"scj: {len(result)} containment pairs in "
                  f"{result.timings.get('total', 0.0):.6f}s")
        elif command in ("append", "delete"):
            values = [int(part) for part in parts[1:]]
            if not values or len(values) % 2:
                print(f"usage: {command} x y [x y ...]")
            else:
                pairs = list(zip(values[0::2], values[1::2]))
                getattr(session, command)("R", pairs)
                print(f"{command}: {len(pairs)} rows -> R "
                      f"(version {session.version('R')})")
        elif command == "explain":
            print(session.two_path("R", "R").explain())
        elif command == "stats":
            for key, value in session.cache_stats().items():
                print(f"{key}: {value}")
        elif command == "metrics":
            mode = parts[1].lower() if len(parts) > 1 else "summary"
            if mode in ("prom", "prometheus"):
                print(session.metrics().to_prometheus(), end="")
            elif mode == "json":
                print(session.metrics().to_json())
            else:
                print(_metrics_summary(session))
        elif command == "trace":
            log = session.telemetry.slow_log
            if len(parts) > 1:
                entry = log.get(parts[1])
            else:
                entries = log.entries()
                entry = entries[-1] if entries else None
            if entry is None:
                recorded = ", ".join(e.trace_id for e in log.entries()) or "none"
                print(f"no such trace (recorded: {recorded})")
            else:
                print(entry.format())
        else:
            print(f"unknown command: {line} (expected {SERVE_COMMANDS})")
    except QueryTimeoutError as exc:
        session.telemetry.metrics.inc("repro_deadline_exceeded_total",
                                      kind="cli")
        print(f"error[timeout]: {exc}")
    except ReproError as exc:  # typed serving-path errors keep their name
        print(f"error[{type(exc).__name__}]: {exc}")
    except Exception as exc:  # serving loop must survive bad commands
        print(f"error: {exc}")
    finally:
        if deadline is not None:
            restore_deadline(token)
    return True


def _serve_sample_workload(session, repeat: int) -> None:
    """Cold, warm and memo-served runs — populates every serving-path label."""
    session.two_path("R", "R", use_memo=False)           # cold
    for _ in range(max(int(repeat), 1)):
        session.two_path("R", "R", use_memo=False)       # warm (artifact hits)
    session.two_path("R", "R", use_memo=True)            # memo miss -> stored
    session.two_path("R", "R", use_memo=True)            # memo hit


def _run_metrics(args: argparse.Namespace) -> int:
    from repro.serve import QuerySession

    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    shards = max(int(args.shards), 1)
    with QuerySession(config=config, shards=shards) as session:
        session.register(relation, name="R", sharded=shards > 1)
        _serve_sample_workload(session, args.repeat)
        snapshot = session.metrics()
        if args.format == "json":
            print(snapshot.to_json())
        else:
            print(snapshot.to_prometheus(), end="")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    from repro.serve import QuerySession, TelemetryConfig

    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    shards = max(int(args.shards), 1)
    # Threshold 0: every query lands in the slow log, so any trace id from
    # the workload can be replayed.
    telemetry = TelemetryConfig(slow_query_seconds=0.0)
    with QuerySession(config=config, shards=shards, telemetry=telemetry) as session:
        session.register(relation, name="R", sharded=shards > 1)
        _serve_sample_workload(session, args.repeat)
        log = session.telemetry.slow_log
        entries = log.entries()
        if args.id is not None:
            entry = log.get(args.id)
            if entry is None:
                recorded = ", ".join(e.trace_id for e in entries) or "none"
                print(f"no such trace: {args.id} (recorded: {recorded})")
                return 1
        else:
            entry = max(entries, key=lambda e: e.seconds)
        others = ", ".join(e.trace_id for e in entries if e is not entry)
        print(entry.format())
        if others:
            print(f"(other recorded traces: {others})")
    return 0


def _run_ssj(args: argparse.Namespace) -> int:
    family = SetFamily.from_relation(load_edge_list(args.path))
    result = set_similarity_join(family, c=args.overlap, method=args.method)
    rows = [{
        "sets": family.num_sets(),
        "overlap_c": args.overlap,
        "method": args.method,
        "similar_pairs": len(result),
        "seconds": result.timings.get("total", 0.0),
    }]
    print(format_table(rows, title=f"set similarity join over {args.path}"))
    return 0


def _run_scj(args: argparse.Namespace) -> int:
    family = SetFamily.from_relation(load_edge_list(args.path))
    result = set_containment_join(family, method=args.method)
    rows = [{
        "sets": family.num_sets(),
        "method": args.method,
        "containment_pairs": len(result),
        "seconds": result.timings.get("total", 0.0),
    }]
    print(format_table(rows, title=f"set containment join over {args.path}"))
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    from repro.bench.datasets import table2_rows

    rows = table2_rows(scale=args.scale)
    print(format_table(rows, title=f"Table 2 dataset characteristics (scale={args.scale})"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "join": _run_join,
        "explain": _run_explain,
        "session": _run_session,
        "shard": _run_shard,
        "serve": _run_serve,
        "metrics": _run_metrics,
        "trace": _run_trace,
        "ssj": _run_ssj,
        "scj": _run_scj,
        "datasets": _run_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
