"""Command-line interface for the reproduction.

Five subcommands cover the common workflows without writing any Python:

* ``repro-cli join <edge-list>`` — evaluate the 2-path join-project over an
  edge-list file (with ``--engine`` choosing any registered query engine)
  and report the output size, strategy and timings;
* ``repro-cli explain <edge-list>`` — run the planner pipeline and print the
  chosen plan: strategy, thresholds, matmul backend and per-operator
  estimated vs. actual cost;
* ``repro-cli ssj <edge-list> --overlap C`` — run the set similarity join
  with a chosen method;
* ``repro-cli scj <edge-list>`` — run the set containment join;
* ``repro-cli datasets`` — regenerate the Table 2 dataset-statistics rows.

The CLI is intentionally thin: it parses arguments, calls the same public API
the examples use, and prints paper-style tables via :mod:`repro.bench.report`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.report import format_table
from repro.core.config import MATRIX_BACKENDS, MMJoinConfig
from repro.core.star import star_join_detailed
from repro.core.two_path import two_path_join, two_path_join_detailed
from repro.data.loaders import load_edge_list
from repro.data.setfamily import SetFamily
from repro.engines.registry import available_engines, make_engine
from repro.setops.scj import SCJ_METHODS, set_containment_join
from repro.setops.ssj import SSJ_METHODS, set_similarity_join

BACKEND_CHOICES = list(MATRIX_BACKENDS)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Fast join-project query evaluation using matrix multiplication",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    join = sub.add_parser("join", help="evaluate the 2-path join-project over an edge list")
    _add_join_options(join)
    join.add_argument("--engine", choices=available_engines(), default="mmjoin",
                      help="query engine to evaluate with (default: mmjoin)")

    explain = sub.add_parser(
        "explain",
        help="print the physical plan (operators, thresholds, backend, costs)",
    )
    _add_join_options(explain)
    explain.add_argument("--query", choices=["two-path", "star"], default="two-path",
                         help="logical query shape to plan")
    explain.add_argument("--k", type=int, default=3,
                         help="number of relations for --query star (self-join copies)")

    ssj = sub.add_parser("ssj", help="set similarity join over an edge list (set_id element)")
    ssj.add_argument("path")
    ssj.add_argument("--overlap", "-c", type=int, default=1)
    ssj.add_argument("--method", choices=list(SSJ_METHODS), default="mmjoin")

    scj = sub.add_parser("scj", help="set containment join over an edge list (set_id element)")
    scj.add_argument("path")
    scj.add_argument("--method", choices=list(SCJ_METHODS), default="mmjoin")

    datasets = sub.add_parser("datasets", help="print the Table 2 dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.12)

    return parser


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="edge-list file (x y per line)")
    parser.add_argument("--delta1", type=int, default=None, help="degree threshold for y")
    parser.add_argument("--delta2", type=int, default=None, help="degree threshold for x/z")
    parser.add_argument("--backend", choices=BACKEND_CHOICES, default="auto")
    parser.add_argument("--no-optimizer", action="store_true",
                        help="force the plain worst-case optimal join")


def _config_from_args(args: argparse.Namespace) -> MMJoinConfig:
    config = MMJoinConfig(matrix_backend=args.backend)
    if args.delta1 is not None and args.delta2 is not None:
        config = config.with_thresholds(args.delta1, args.delta2)
    if args.no_optimizer:
        config = config.without_optimizer()
    return config


def _run_join(args: argparse.Namespace) -> int:
    relation = load_edge_list(args.path)
    if args.engine == "mmjoin":
        result = two_path_join(relation, relation, config=_config_from_args(args))
        rows = [{
            "tuples": len(relation),
            "output_pairs": len(result),
            "strategy": result.strategy,
            "delta1": result.delta1,
            "delta2": result.delta2,
            "matrix_dims": str(result.matrix_dims),
            "seconds": result.timings.get("total", 0.0),
        }]
    else:
        engine = make_engine(args.engine, config=_config_from_args(args))
        engine_result = engine.run_two_path(relation, relation)
        rows = [{
            "tuples": len(relation),
            "output_pairs": len(engine_result),
            "engine": args.engine,
            "seconds": engine_result.seconds,
        }]
    print(format_table(rows, title=f"2-path join-project over {args.path}"))
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    relation = load_edge_list(args.path)
    config = _config_from_args(args)
    if args.query == "star":
        result = star_join_detailed([relation] * max(int(args.k), 1), config=config)
    else:
        result = two_path_join_detailed(relation, relation, config=config)
    print(f"plan for {args.query} join-project over {args.path}")
    print(result.explain())
    return 0


def _run_ssj(args: argparse.Namespace) -> int:
    family = SetFamily.from_relation(load_edge_list(args.path))
    result = set_similarity_join(family, c=args.overlap, method=args.method)
    rows = [{
        "sets": family.num_sets(),
        "overlap_c": args.overlap,
        "method": args.method,
        "similar_pairs": len(result),
        "seconds": result.timings.get("total", 0.0),
    }]
    print(format_table(rows, title=f"set similarity join over {args.path}"))
    return 0


def _run_scj(args: argparse.Namespace) -> int:
    family = SetFamily.from_relation(load_edge_list(args.path))
    result = set_containment_join(family, method=args.method)
    rows = [{
        "sets": family.num_sets(),
        "method": args.method,
        "containment_pairs": len(result),
        "seconds": result.timings.get("total", 0.0),
    }]
    print(format_table(rows, title=f"set containment join over {args.path}"))
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    from repro.bench.datasets import table2_rows

    rows = table2_rows(scale=args.scale)
    print(format_table(rows, title=f"Table 2 dataset characteristics (scale={args.scale})"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "join": _run_join,
        "explain": _run_explain,
        "ssj": _run_ssj,
        "scj": _run_scj,
        "datasets": _run_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
