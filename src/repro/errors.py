"""Typed error taxonomy and query deadlines for the serving path.

Every failure the serving layer can surface derives from :class:`ReproError`,
so callers (the CLI serve loop, the async API, user code) can catch one base
class instead of fishing bare ``ValueError`` / ``RuntimeError`` out of the
pipeline:

* :class:`QueryTimeoutError` — a query overran its deadline; carries the
  partial span tree so forensics see exactly where the budget went;
* :class:`WorkerCrashError` — a pool worker crashed (or hung past the hang
  timeout) while running a task; the parallel executor retries these;
* :class:`AdmissionRejected` — the cost model predicts the query would blow
  the session's memory budget even under tiled extraction;
* :class:`ShardFailure` — one shard subplan kept failing after its retries
  (``partial_results=True`` turns this into a skipped shard instead).

:class:`Deadline` is the cooperative-cancellation carrier.  It propagates the
same way traces do (see :mod:`repro.obs.trace`): :func:`install_deadline` /
:func:`restore_deadline` stash it in a thread-local around one served call,
the parallel executor re-installs it inside pool workers, and the
module-level :func:`check_deadline` hook is what long loops (expansion
chunks, extraction bands, the operator loop) call — one thread-local read
and a ``None`` check when no deadline is active, so always-on checkpoints
cost nanoseconds on the ordinary path.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Any, Callable, Optional


class ReproError(Exception):
    """Base class for every typed serving-path error."""


class QueryTimeoutError(ReproError):
    """A query overran its deadline.

    ``trace`` carries the partial span tree recorded up to the checkpoint
    that fired (``None`` when the session's telemetry is disabled);
    ``site`` names that checkpoint.
    """

    def __init__(self, message: str, *, site: str = "",
                 timeout_ms: float = 0.0, elapsed_ms: float = 0.0,
                 trace: Any = None) -> None:
        super().__init__(message)
        self.site = site
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms
        self.trace = trace


class WorkerCrashError(ReproError):
    """A pool worker crashed — or hung — while running a task.

    ``hung=True`` marks a worker that never returned (detected by the
    executor's hang timeout): the thread cannot be reclaimed, so recovery
    additionally rebuilds the pool before retrying.
    """

    def __init__(self, message: str, *, hung: bool = False) -> None:
        super().__init__(message)
        self.hung = hung


class AdmissionRejected(ReproError):
    """Admission control refused a query: predicted memory exceeds budget."""

    def __init__(self, message: str, *, estimate_bytes: int = 0,
                 budget_bytes: int = 0) -> None:
        super().__init__(message)
        self.estimate_bytes = int(estimate_bytes)
        self.budget_bytes = int(budget_bytes)


class ShardFailure(ReproError):
    """One shard subplan failed after exhausting its per-shard retries."""

    def __init__(self, message: str, *, shard: Any = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = int(attempts)


class UnknownRelationError(ReproError, KeyError):
    """A query or write referenced a relation the session never registered.

    Also a ``KeyError`` so pre-taxonomy callers keep working.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes the message
        return Exception.__str__(self)


class StrictDeleteError(ReproError, ValueError):
    """A strict delete referenced tuples absent from the relation.

    Also a ``ValueError`` so pre-taxonomy callers keep working.
    """


class Deadline:
    """An absolute time budget for one served call.

    ``clock`` is injectable (tests drive a fake clock); it must be a
    monotonic ``() -> seconds`` callable.  :meth:`check` is the cooperative
    cancellation point: cheap when not expired, raises a fully-described
    :class:`QueryTimeoutError` when past due.
    """

    __slots__ = ("timeout_ms", "_clock", "_expires_at")

    def __init__(self, timeout_ms: float,
                 clock: Callable[[], float] = monotonic) -> None:
        timeout_ms = float(timeout_ms)
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        self.timeout_ms = timeout_ms
        self._clock = clock
        self._expires_at = clock() + timeout_ms / 1000.0

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past due)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`QueryTimeoutError` when the budget is spent."""
        over = self._clock() - self._expires_at
        if over >= 0:
            elapsed_ms = self.timeout_ms + over * 1000.0
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout_ms:g} ms deadline "
                f"(elapsed {elapsed_ms:.1f} ms"
                + (f", checkpoint {site!r})" if site else ")"),
                site=site, timeout_ms=self.timeout_ms, elapsed_ms=elapsed_ms,
            )


# The active deadline is per-thread, exactly like the active trace: one
# served call installs its deadline on the serving thread, and the parallel
# executor re-installs it inside each pool worker for the task's duration.
_ACTIVE = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline active on this thread (``None`` when unbounded)."""
    return getattr(_ACTIVE, "deadline", None)


def install_deadline(deadline: Optional[Deadline]) -> Any:
    """Install ``deadline`` for this thread; returns a restore token."""
    prev = getattr(_ACTIVE, "deadline", None)
    _ACTIVE.deadline = deadline
    return prev


def restore_deadline(token: Any) -> None:
    """Undo a matching :func:`install_deadline`."""
    _ACTIVE.deadline = token


def check_deadline(site: str = "") -> None:
    """Cooperative cancellation checkpoint (the hook long loops call).

    One thread-local read when no deadline is active — cheap enough to sit
    inside the expansion-chunk and extraction-band loops unconditionally.
    """
    deadline = getattr(_ACTIVE, "deadline", None)
    if deadline is not None:
        deadline.check(site)
