"""Physical operators and execution state for the MMJoin pipeline."""

from repro.exec.operators import (
    CombinatorialLight,
    DedupMerge,
    LightHeavyPartition,
    MatMulHeavy,
    PhysicalOperator,
    SemijoinReduce,
)
from repro.exec.state import CountingPartition, ExecutionState

__all__ = [
    "CombinatorialLight",
    "CountingPartition",
    "DedupMerge",
    "ExecutionState",
    "LightHeavyPartition",
    "MatMulHeavy",
    "PhysicalOperator",
    "SemijoinReduce",
]
