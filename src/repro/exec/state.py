"""Shared mutable state threaded through the physical operators.

A :class:`~repro.plan.planner.PhysicalPlan` owns one :class:`ExecutionState`
per execution; each operator reads the fields earlier operators populated and
writes its own.  The state also carries the per-phase timings dictionary the
legacy result objects (:class:`~repro.core.two_path.MMJoinResult`,
:class:`~repro.core.star.StarJoinResult`) expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import OptimizerDecision
from repro.data.relation import Relation

HeadTuple = Tuple[int, ...]

# Execution modes: which variant of the pipeline the operators run.
MODE_PAIRS = "pairs"      # set-semantics two-path (Algorithm 1)
MODE_COUNTS = "counts"    # witness-counting two-path (SSJ/SCJ substrate)
MODE_STAR = "star"        # k-ary star query (Section 3.2)


@dataclass
class CountingPartition:
    """Witness-only partition used by the counting two-path pipeline.

    A witness ``y`` is heavy when its degree exceeds ``delta1`` in *both*
    relations; the two witness populations are disjoint so light and heavy
    counts add up exactly.
    """

    heavy_y: np.ndarray
    light_y: List[int]
    delta1: int


@dataclass
class ExecutionState:
    """Everything the operators of one plan execution share."""

    config: MMJoinConfig = DEFAULT_CONFIG
    mode: str = MODE_PAIRS
    relations: List[Relation] = field(default_factory=list)

    # Populated by LightHeavyPartition.
    decision: Optional[OptimizerDecision] = None
    strategy: str = "mmjoin"
    partition: Any = None
    fallback_combinatorial: bool = False
    delta1: int = 0
    delta2: int = 0

    # Populated by CombinatorialLight / MatMulHeavy.
    light_pairs: Set[HeadTuple] = field(default_factory=set)
    light_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    heavy_pairs: Set[HeadTuple] = field(default_factory=set)
    heavy_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    backend_name: str = "dense"

    # Populated by DedupMerge (or by SemijoinReduce on empty inputs).
    pairs: Set[HeadTuple] = field(default_factory=set)
    counts: Optional[Dict[Tuple[int, int], int]] = None

    # Control flow and bookkeeping.
    done: bool = False
    timings: Dict[str, float] = field(default_factory=dict)

    def finish_empty(self) -> None:
        """Short-circuit the pipeline with an empty result (dangling inputs)."""
        self.done = True
        self.strategy = "wcoj"
        self.pairs = set()
        if self.mode == MODE_COUNTS:
            self.counts = {}

    @property
    def with_counts(self) -> bool:
        return self.mode == MODE_COUNTS
