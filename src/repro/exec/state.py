"""Shared mutable state threaded through the physical operators.

A :class:`~repro.plan.planner.PhysicalPlan` owns one :class:`ExecutionState`
per execution; each operator reads the fields earlier operators populated and
writes its own.  Results move between operators exclusively as columnar
blocks (:class:`~repro.data.pairblock.PairBlock`, and
:class:`~repro.data.pairblock.CountedPairBlock` under MODE_COUNTS) — Python
sets and dicts exist only behind the lazy boundary properties
(:attr:`ExecutionState.pairs`, :attr:`ExecutionState.counts`, ...) that the
engines, the CLI and the legacy result objects
(:class:`~repro.core.two_path.MMJoinResult`,
:class:`~repro.core.star.StarJoinResult`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import OptimizerDecision
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation

HeadTuple = Tuple[int, ...]

# Execution modes: which variant of the pipeline the operators run.
MODE_PAIRS = "pairs"      # set-semantics two-path (Algorithm 1)
MODE_COUNTS = "counts"    # witness-counting two-path (SSJ/SCJ substrate)
MODE_STAR = "star"        # k-ary star query (Section 3.2)


@dataclass
class CountingPartition:
    """Witness-only partition used by the counting two-path pipeline.

    A witness ``y`` is heavy when its degree exceeds ``delta1`` in *both*
    relations; the two witness populations are disjoint so light and heavy
    counts add up exactly.
    """

    heavy_y: np.ndarray
    light_y: np.ndarray
    delta1: int


@dataclass
class ExecutionState:
    """Everything the operators of one plan execution share."""

    config: MMJoinConfig = DEFAULT_CONFIG
    mode: str = MODE_PAIRS
    relations: List[Relation] = field(default_factory=list)

    # Session context (duck-typed ``repro.serve.session.SessionContext``):
    # operators consult its artifact caches and persistent executor when
    # present, and fall back to stateless evaluation when ``None``.
    session: Optional[Any] = None

    # Shard id when this state belongs to one shard's subplan of a sharded
    # execution (labels the subplan's explanation); None when unsharded.
    shard: Optional[int] = None

    # Populated by LightHeavyPartition.
    decision: Optional[OptimizerDecision] = None
    strategy: str = "mmjoin"
    partition: Any = None
    fallback_combinatorial: bool = False
    delta1: int = 0
    delta2: int = 0

    # Populated by CombinatorialLight / MatMulHeavy (columnar, deduplicated
    # per phase; the two phases may still overlap with each other).
    light_block: PairBlock = field(default_factory=PairBlock.empty)
    heavy_block: PairBlock = field(default_factory=PairBlock.empty)
    light_counted: CountedPairBlock = field(default_factory=CountedPairBlock.empty)
    heavy_counted: CountedPairBlock = field(default_factory=CountedPairBlock.empty)
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    backend_name: str = "dense"

    # Populated by DedupMerge (or by SemijoinReduce on empty inputs).
    result_block: Optional[PairBlock] = None
    result_counted: Optional[CountedPairBlock] = None

    # Control flow and bookkeeping.
    done: bool = False
    timings: Dict[str, float] = field(default_factory=dict)

    # Lazy boundary caches (never touched by operators).
    _pairs_cache: Optional[Set[HeadTuple]] = field(default=None, init=False, repr=False)
    _counts_cache: Optional[Dict[Tuple[int, int], int]] = field(
        default=None, init=False, repr=False
    )

    def finish_empty(self) -> None:
        """Short-circuit the pipeline with an empty result (dangling inputs)."""
        self.done = True
        self.strategy = "wcoj"
        self.result_block = PairBlock.empty()
        if self.mode == MODE_COUNTS:
            self.result_counted = CountedPairBlock.empty()

    @property
    def with_counts(self) -> bool:
        return self.mode == MODE_COUNTS

    @property
    def output_size(self) -> int:
        """Number of distinct output tuples (no set materialisation)."""
        if self.result_block is None:
            return 0
        return len(self.result_block)

    # ------------------------------------------------------------------ #
    # Boundary properties: Python sets/dicts materialise here, lazily, and
    # only for consumers outside the operator pipeline.
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> Set[HeadTuple]:
        """The merged output as a Python set (lazy boundary conversion)."""
        if self._pairs_cache is None:
            block = self.result_block
            self._pairs_cache = block.to_set() if block is not None else set()
        return self._pairs_cache

    @property
    def counts(self) -> Optional[Dict[Tuple[int, int], int]]:
        """Witness counts as ``{(x, z): n}`` (lazy boundary conversion)."""
        if self.result_counted is None:
            return None
        if self._counts_cache is None:
            self._counts_cache = self.result_counted.to_dict()
        return self._counts_cache
