"""Physical operators of the MMJoin execution pipeline.

The paper's recipe — semijoin-reduce, light/heavy partition, combinatorial
light join, matrix-multiplication heavy join, dedup-merge — used to be
re-implemented separately by ``core/two_path.py``, ``core/star.py`` and the
``setops`` modules.  It now exists once, as five :class:`PhysicalOperator`
subclasses that the :class:`~repro.plan.planner.Planner` composes; each
operator handles the three execution modes (set-semantics two-path, counting
two-path, star) and records its wall-clock time and a detail dictionary for
``explain()``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.optimizer import OptimizerDecision
from repro.core.partitioning import partition_star, partition_two_path
from repro.data.relation import Relation
from repro.exec.state import (
    MODE_COUNTS,
    MODE_PAIRS,
    MODE_STAR,
    CountingPartition,
    ExecutionState,
)
from repro.joins.baseline import combinatorial_star, combinatorial_two_path
from repro.joins.generic_join import generic_star_join_project
from repro.matmul.registry import BackendRegistry
from repro.parallel.executor import ParallelExecutor, split_relation

Pair = Tuple[int, int]
HeadTuple = Tuple[int, ...]
DecideFn = Callable[[ExecutionState], OptimizerDecision]


class PhysicalOperator:
    """Base physical operator: timed, skippable, self-describing."""

    name = "operator"

    def __init__(self) -> None:
        self.estimated_cost: float = 0.0
        self.actual_seconds: float = 0.0
        self.status: str = "pending"
        self.detail: Dict[str, Any] = {}

    def __call__(self, state: ExecutionState) -> None:
        """Run (or skip) the operator, recording status and wall-clock time."""
        if state.done and self.name != "semijoin_reduce":
            self.status = "skipped"
            return
        start = time.perf_counter()
        self.status = "ran"
        self.run(state)
        self.actual_seconds = time.perf_counter() - start

    def run(self, state: ExecutionState) -> None:
        raise NotImplementedError

    def skip(self, reason: str) -> None:
        """Mark this invocation as a no-op (recorded in the explanation)."""
        self.status = "skipped"
        self.detail["skip_reason"] = reason


class SemijoinReduce(PhysicalOperator):
    """Drop dangling tuples: keep only witnesses shared by every relation."""

    name = "semijoin_reduce"

    def run(self, state: ExecutionState) -> None:
        relations = state.relations
        self.detail["input_tuples"] = sum(len(r) for r in relations)
        if not relations or any(len(r) == 0 for r in relations):
            state.relations = [Relation.empty(r.name) for r in relations]
            state.finish_empty()
            self.detail["output_tuples"] = 0
            return
        if state.mode == MODE_STAR:
            shared = relations[0].y_values()
            for rel in relations[1:]:
                shared = np.intersect1d(shared, rel.y_values(), assume_unique=True)
            reduced = [rel.restrict_y(shared, name=rel.name) for rel in relations]
        else:
            left, right = relations
            reduced = [
                left.semijoin_y(right, name=left.name),
                right.semijoin_y(left, name=right.name),
            ]
        state.relations = reduced
        self.detail["output_tuples"] = sum(len(r) for r in reduced)
        if any(len(r) == 0 for r in reduced):
            state.finish_empty()


class LightHeavyPartition(PhysicalOperator):
    """Consult the optimizer, then split the inputs by degree thresholds."""

    name = "light_heavy_partition"

    def __init__(self, decide: DecideFn) -> None:
        super().__init__()
        self.decide = decide

    def run(self, state: ExecutionState) -> None:
        decision = self.decide(state)
        state.decision = decision
        state.strategy = decision.strategy
        self.detail["strategy"] = decision.strategy
        if decision.strategy == "wcoj":
            self.detail["reason"] = "optimizer chose plain worst-case optimal join"
            return
        delta1, delta2 = decision.delta1, decision.delta2
        if state.mode == MODE_COUNTS:
            state.partition = self._counting_partition(state, delta1)
            state.delta1 = state.partition.delta1
            state.delta2 = state.partition.delta1
            self.detail["heavy_witnesses"] = int(state.partition.heavy_y.size)
            self.detail["light_witnesses"] = len(state.partition.light_y)
        elif state.mode == MODE_STAR:
            partition = partition_star(state.relations, delta1, delta2)
            state.partition = partition
            state.delta1 = partition.delta1
            state.delta2 = partition.delta2
            # If nothing survived into the heavy residual, the light
            # sub-joins would re-enumerate the whole query k times; one
            # worst-case optimal evaluation is strictly cheaper.
            if partition.heavy_y.size == 0 or any(len(rel) == 0 for rel in partition.heavy):
                state.fallback_combinatorial = True
                self.detail["fallback"] = "empty heavy residual; full combinatorial join"
            self.detail["heavy_witnesses"] = int(partition.heavy_y.size)
        else:
            partition = partition_two_path(state.relations[0], state.relations[1], delta1, delta2)
            state.partition = partition
            state.delta1 = partition.delta1
            state.delta2 = partition.delta2
            self.detail["light_fraction"] = round(partition.light_fraction(), 4)
            self.detail["heavy_witnesses"] = int(partition.heavy_y.size)

    @staticmethod
    def _counting_partition(state: ExecutionState, delta1: int) -> CountingPartition:
        left, right = state.relations
        delta1 = max(int(delta1), 1)
        left_deg_y = left.degrees_y()
        right_deg_y = right.degrees_y()
        shared = set(left_deg_y) & set(right_deg_y)
        heavy_y = np.asarray(
            sorted(
                y for y in shared
                if left_deg_y[y] > delta1 and right_deg_y[y] > delta1
            ),
            dtype=np.int64,
        )
        heavy_y_set = set(int(v) for v in heavy_y)
        light_y = [y for y in shared if int(y) not in heavy_y_set]
        return CountingPartition(heavy_y=heavy_y, light_y=light_y, delta1=delta1)


class CombinatorialLight(PhysicalOperator):
    """Evaluate the light sub-joins (or the whole query under WCOJ)."""

    name = "combinatorial_light"

    def run(self, state: ExecutionState) -> None:
        if state.strategy == "wcoj" or state.fallback_combinatorial:
            self._run_full(state)
            return
        if state.mode == MODE_COUNTS:
            self._run_light_counts(state)
        elif state.mode == MODE_STAR:
            self._run_light_star(state)
        else:
            self._run_light_pairs(state)

    # -- full combinatorial evaluation (WCOJ strategy / star fallback) -----
    def _run_full(self, state: ExecutionState) -> None:
        self.detail["scope"] = "full combinatorial join"
        if state.mode == MODE_STAR:
            state.light_pairs = combinatorial_star(state.relations)
        elif state.mode == MODE_COUNTS:
            state.light_counts = combinatorial_two_path(
                state.relations[0], state.relations[1], with_counts=True
            )
        else:
            state.light_pairs = combinatorial_two_path(
                state.relations[0],
                state.relations[1],
                dedup_strategy=state.config.dedup_strategy,
            )

    # -- light sub-joins ---------------------------------------------------
    def _run_light_pairs(self, state: ExecutionState) -> None:
        partition = state.partition
        left, right = state.relations
        cores = state.config.cores
        output: Set[Pair] = set()
        tasks: List[Tuple[Relation, Dict[int, np.ndarray], bool]] = []
        if len(partition.r_light):
            right_index = right.index_y()
            for chunk in split_relation(partition.r_light, cores):
                tasks.append((chunk, right_index, False))
        if len(partition.s_light):
            left_index = left.index_y()
            for chunk in split_relation(partition.s_light, cores):
                tasks.append((chunk, left_index, True))
        if tasks:
            executor = ParallelExecutor(cores=cores)
            for chunk_pairs in executor.map(_probe_chunk, tasks):
                output |= chunk_pairs
        state.light_pairs = output
        self.detail["light_pairs"] = len(output)

    def _run_light_counts(self, state: ExecutionState) -> None:
        partition = state.partition
        left, right = state.relations
        counts: Dict[Pair, int] = {}
        left_index = left.index_y()
        right_index = right.index_y()
        for y in partition.light_y:
            xs = left_index[int(y)]
            zs = right_index[int(y)]
            for x in xs:
                xi = int(x)
                for z in zs:
                    key = (xi, int(z))
                    counts[key] = counts.get(key, 0) + 1
        state.light_counts = counts
        self.detail["light_pairs"] = len(counts)

    def _run_light_star(self, state: ExecutionState) -> None:
        partition = state.partition
        relations = state.relations
        output: Set[HeadTuple] = set()
        for i, light_rel in enumerate(partition.light_head):
            if len(light_rel) == 0:
                continue
            sub = list(relations)
            sub[i] = light_rel
            output |= generic_star_join_project(sub)
        if partition.light_y.size:
            output |= generic_star_join_project(relations, restrict_to=partition.light_y)
        state.light_pairs = output
        self.detail["light_tuples"] = len(output)


class MatMulHeavy(PhysicalOperator):
    """Evaluate the all-heavy residual with one matrix product."""

    name = "matmul_heavy"

    def __init__(self, registry: BackendRegistry) -> None:
        super().__init__()
        self.registry = registry

    def run(self, state: ExecutionState) -> None:
        if state.strategy == "wcoj":
            self.skip("wcoj strategy has no heavy residual")
            return
        if state.fallback_combinatorial:
            self.skip("heavy residual empty; light operator ran the full join")
            return
        if state.mode == MODE_COUNTS:
            self._run_counts(state)
        elif state.mode == MODE_STAR:
            self._run_star(state)
        else:
            self._run_pairs(state)
        self.detail["backend"] = state.backend_name
        self.detail["matrix_dims"] = state.matrix_dims

    def _select(self, state: ExecutionState, dims: Tuple[int, int, int],
                nnz_left: int, nnz_right: int):
        backend = self.registry.select(state.config, dims, nnz_left, nnz_right)
        state.backend_name = backend.name
        return backend

    def _run_pairs(self, state: ExecutionState) -> None:
        partition = state.partition
        rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
        dims = (int(rows.size), int(mids.size), int(cols.size))
        state.matrix_dims = dims
        if min(dims) == 0:
            self.detail["build_seconds"] = 0.0
            self.detail["multiply_seconds"] = 0.0
            return
        backend = self._select(
            state, dims, len(partition.r_heavy), len(partition.s_heavy)
        )
        pairs, build_seconds, multiply_seconds = backend.heavy_pairs(
            partition.r_heavy, partition.s_heavy, rows, mids, cols,
            cores=state.config.cores,
        )
        state.heavy_pairs = pairs
        self.detail["build_seconds"] = build_seconds
        self.detail["multiply_seconds"] = multiply_seconds
        self.detail["heavy_pairs"] = len(pairs)

    def _run_counts(self, state: ExecutionState) -> None:
        partition = state.partition
        heavy_y = partition.heavy_y
        if heavy_y.size == 0:
            state.matrix_dims = (0, 0, 0)
            self.detail["build_seconds"] = 0.0
            self.detail["multiply_seconds"] = 0.0
            return
        left, right = state.relations
        left_heavy = left.restrict_y(heavy_y, name=f"{left.name}+")
        right_heavy = right.restrict_y(heavy_y, name=f"{right.name}+")
        rows = left_heavy.x_values()
        cols = right_heavy.x_values()
        dims = (int(rows.size), int(heavy_y.size), int(cols.size))
        state.matrix_dims = dims
        backend = self._select(state, dims, len(left_heavy), len(right_heavy))
        counts, build_seconds, multiply_seconds = backend.heavy_counts(
            left_heavy, right_heavy, rows, heavy_y, cols,
            cores=state.config.cores,
        )
        state.heavy_counts = counts
        self.detail["build_seconds"] = build_seconds
        self.detail["multiply_seconds"] = multiply_seconds
        self.detail["heavy_pairs"] = len(counts)

    def _run_star(self, state: ExecutionState) -> None:
        partition = state.partition
        heavy_relations = partition.heavy
        heavy_y = partition.heavy_y
        k = len(heavy_relations)
        split = (k + 1) // 2
        build_start = time.perf_counter()
        rows_a, matrix_a = _group_matrix(heavy_relations, list(range(split)), heavy_y)
        rows_b, matrix_b = _group_matrix(heavy_relations, list(range(split, k)), heavy_y)
        build_seconds = time.perf_counter() - build_start
        dims = (len(rows_a), int(heavy_y.size), len(rows_b))
        state.matrix_dims = dims
        self.detail["build_seconds"] = build_seconds
        if not rows_a or not rows_b:
            self.detail["multiply_seconds"] = 0.0
            return
        nnz_a = int(matrix_a.sum())
        nnz_b = int(matrix_b.sum())
        backend = self._select(state, dims, nnz_a, nnz_b)
        multiply_start = time.perf_counter()
        product = backend.multiply_dense(matrix_a, matrix_b.T, cores=state.config.cores)
        hit_rows, hit_cols = np.nonzero(np.asarray(product) > 0.5)
        output: Set[HeadTuple] = set()
        for r, c in zip(hit_rows, hit_cols):
            output.add(rows_a[int(r)] + rows_b[int(c)])
        state.heavy_pairs = output
        self.detail["multiply_seconds"] = time.perf_counter() - multiply_start
        self.detail["heavy_tuples"] = len(output)


class DedupMerge(PhysicalOperator):
    """Merge the light and heavy outputs, deduplicating across the two."""

    name = "dedup_merge"

    def run(self, state: ExecutionState) -> None:
        if state.mode == MODE_COUNTS:
            counts = dict(state.light_counts)
            for key, value in state.heavy_counts.items():
                counts[key] = counts.get(key, 0) + value
            state.counts = counts
            state.pairs = set(counts)
        else:
            state.pairs = state.light_pairs | state.heavy_pairs
            overlap = len(state.light_pairs) + len(state.heavy_pairs) - len(state.pairs)
            self.detail["overlap"] = overlap
        self.detail["output_size"] = len(state.pairs)


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
def _probe_chunk(args: Tuple[Relation, Dict[int, np.ndarray], bool]) -> Set[Pair]:
    """Worker task: probe one relation chunk against a prebuilt index."""
    relation, other_index, flip = args
    local: Set[Pair] = set()
    for x, y in zip(relation.xs, relation.ys):
        partners = other_index.get(int(y))
        if partners is None:
            continue
        xi = int(x)
        for z in partners:
            local.add((int(z), xi) if flip else (xi, int(z)))
    return local


def _group_matrix(
    heavy_relations: Sequence[Relation],
    group: Sequence[int],
    heavy_y: np.ndarray,
) -> Tuple[List[HeadTuple], np.ndarray]:
    """Build the grouped adjacency matrix for one half of the star head.

    Candidate head combinations are discovered per heavy witness (so only
    combinations that actually co-occur appear as rows), then each row is
    marked against every heavy witness it is fully connected to.
    """
    indexes = [heavy_relations[i].index_y() for i in group]

    combo_blocks: List[np.ndarray] = []
    column_blocks: List[np.ndarray] = []
    for j, y in enumerate(heavy_y):
        yi = int(y)
        neighbour_lists = []
        missing = False
        for idx in indexes:
            values = idx.get(yi)
            if values is None or values.size == 0:
                missing = True
                break
            neighbour_lists.append(values)
        if missing:
            continue
        combos = _cartesian_arrays(neighbour_lists)
        combo_blocks.append(combos)
        column_blocks.append(np.full(combos.shape[0], j, dtype=np.int64))

    if not combo_blocks:
        return [], np.zeros((0, heavy_y.size), dtype=np.float32)

    all_combos = np.concatenate(combo_blocks, axis=0)
    all_columns = np.concatenate(column_blocks)
    unique_rows, inverse = np.unique(all_combos, axis=0, return_inverse=True)
    matrix = np.zeros((unique_rows.shape[0], heavy_y.size), dtype=np.float32)
    matrix[inverse, all_columns] = 1.0
    rows = [tuple(int(v) for v in row) for row in unique_rows]
    return rows, matrix


def _cartesian_arrays(lists: List[np.ndarray]) -> np.ndarray:
    """Cartesian product of 1-D integer arrays as an (n, k) array."""
    if len(lists) == 1:
        return lists[0].reshape(-1, 1)
    grids = np.meshgrid(*lists, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)
