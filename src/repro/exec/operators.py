"""Physical operators of the MMJoin execution pipeline.

The paper's recipe — semijoin-reduce, light/heavy partition, combinatorial
light join, matrix-multiplication heavy join, dedup-merge — used to be
re-implemented separately by ``core/two_path.py``, ``core/star.py`` and the
``setops`` modules.  It now exists once, as five :class:`PhysicalOperator`
subclasses that the :class:`~repro.plan.planner.Planner` composes; each
operator handles the three execution modes (set-semantics two-path, counting
two-path, star) and records its wall-clock time and a detail dictionary for
``explain()``.

Results flow between operators as columnar
:class:`~repro.data.pairblock.PairBlock` /
:class:`~repro.data.pairblock.CountedPairBlock` instances: the light join is
a vectorized ``searchsorted`` probe with index gathers, the heavy join reads
its block straight off the product's non-zero coordinates, and the final
dedup-merge is one packed-key ``np.unique`` (with ``np.add.at`` count
aggregation under MODE_COUNTS).  Every operator also records
``memory_in_bytes`` / ``memory_out_bytes`` so ``explain()`` shows where the
memory goes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.core.optimizer import OptimizerDecision
from repro.core.partitioning import partition_star, partition_two_path
from repro.data.pairblock import PairBlock
from repro.data.relation import Relation
from repro.exec.state import (
    MODE_COUNTS,
    MODE_PAIRS,
    MODE_STAR,
    CountingPartition,
    ExecutionState,
)
from repro.faults import SITE_BACKEND_MATMUL, fault_site
from repro.joins.baseline import (
    cartesian_arrays,
    combinatorial_star_block,
    combinatorial_two_path_block,
    combinatorial_two_path_counted,
    counted_probe_block,
    deduped_probe_block,
    star_expansion_block,
)
from repro.matmul.mapping import heavy_core_mapping
from repro.matmul.registry import BackendRegistry
from repro.matmul.tiling import MODE_CORE, tiled_nonzero_coords
from repro.parallel.executor import ParallelExecutor, split_relation

Pair = Tuple[int, int]
HeadTuple = Tuple[int, ...]
DecideFn = Callable[[ExecutionState], OptimizerDecision]


def _relation_bytes(relations) -> int:
    return int(sum(r.data.nbytes for r in relations))


def _matrix_nbytes(matrix) -> int:
    """Byte size of a dense ndarray, CSR matrix, or int64 row table."""
    nbytes = getattr(matrix, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    total = 0
    for attr in ("data", "indices", "indptr"):
        arr = getattr(matrix, attr, None)
        if arr is not None:
            total += int(getattr(arr, "nbytes", 0))
    return total


class PhysicalOperator:
    """Base physical operator: timed, skippable, self-describing."""

    name = "operator"

    def __init__(self) -> None:
        self.estimated_cost: float = 0.0
        self.actual_seconds: float = 0.0
        self.status: str = "pending"
        self.detail: Dict[str, Any] = {}

    def __call__(self, state: ExecutionState) -> None:
        """Run (or skip) the operator, recording status and wall-clock time."""
        if state.done and self.name != "semijoin_reduce":
            self.status = "skipped"
            return
        start = time.perf_counter()
        self.status = "ran"
        self.run(state)
        self.actual_seconds = time.perf_counter() - start

    def run(self, state: ExecutionState) -> None:
        raise NotImplementedError

    def skip(self, reason: str) -> None:
        """Mark this invocation as a no-op (recorded in the explanation)."""
        self.status = "skipped"
        self.detail["skip_reason"] = reason

    def record_memory(self, in_bytes: int, out_bytes: int) -> None:
        """Record block/relation sizes flowing through this operator."""
        self.detail["memory_in_bytes"] = int(in_bytes)
        self.detail["memory_out_bytes"] = int(out_bytes)


class SemijoinReduce(PhysicalOperator):
    """Drop dangling tuples: keep only witnesses shared by every relation.

    Session-aware: under a :class:`~repro.serve.session.SessionContext` the
    reduced relation list is cached by the input relations' tokens — a warm
    hit returns the *same* ``Relation`` objects, so their lazily built
    layouts (``sorted_by_y``, the y-indexes, degree arrays) come back warm
    with them.
    """

    name = "semijoin_reduce"

    def run(self, state: ExecutionState) -> None:
        relations = state.relations
        in_bytes = _relation_bytes(relations)
        self.detail["input_tuples"] = sum(len(r) for r in relations)
        if not relations or any(len(r) == 0 for r in relations):
            state.relations = [Relation.empty(r.name) for r in relations]
            state.finish_empty()
            self.detail["output_tuples"] = 0
            self.record_memory(in_bytes, 0)
            return
        ctx = state.session
        key = (
            ctx.key("semijoin", relations, state.mode == MODE_STAR)
            if ctx is not None else None
        )
        if key is not None:
            found, reduced = ctx.artifacts.lookup(key)
            if found:
                self.detail["cache"] = "hit"
            else:
                reduced = self._reduce(relations, state.mode)
                ctx.adopt_derived(
                    reduced, "semijoin", ctx.tokens_for(relations) or (),
                    state.mode == MODE_STAR,
                )
                ctx.artifacts.put(key, reduced, _relation_bytes(reduced))
                self.detail["cache"] = "miss"
        else:
            reduced = self._reduce(relations, state.mode)
        state.relations = reduced
        self.detail["output_tuples"] = sum(len(r) for r in reduced)
        self.record_memory(in_bytes, _relation_bytes(reduced))
        if any(len(r) == 0 for r in reduced):
            state.finish_empty()

    @staticmethod
    def _reduce(relations: List[Relation], mode: str) -> List[Relation]:
        if mode == MODE_STAR:
            shared = relations[0].y_values()
            for rel in relations[1:]:
                shared = np.intersect1d(shared, rel.y_values(), assume_unique=True)
            return [rel.restrict_y(shared, name=rel.name) for rel in relations]
        left, right = relations
        return [
            left.semijoin_y(right, name=left.name),
            right.semijoin_y(left, name=right.name),
        ]


class LightHeavyPartition(PhysicalOperator):
    """Consult the optimizer, then split the inputs by degree thresholds.

    Session-aware: the optimizer decision and the partition are cached by
    (relation tokens, mode, config signature) — repeated queries skip both
    the threshold search and the degree-based split.
    """

    name = "light_heavy_partition"

    def __init__(self, decide: DecideFn) -> None:
        super().__init__()
        self.decide = decide

    def run(self, state: ExecutionState) -> None:
        ctx = state.session
        in_bytes = _relation_bytes(state.relations)
        key = (
            ctx.key("partition", state.relations, state.mode,
                    state.config.cache_signature())
            if ctx is not None else None
        )
        if key is not None:
            found, snapshot = ctx.artifacts.lookup(key)
            if found:
                self._restore(state, snapshot)
                self.detail["cache"] = "hit"
                self.record_memory(in_bytes, snapshot["out_bytes"])
                return
        out_bytes = self._partition(state)
        if key is not None:
            ctx.artifacts.put(key, self._snapshot(state, out_bytes), out_bytes)
            self.detail["cache"] = "miss"
        self.record_memory(in_bytes, out_bytes)

    def _snapshot(self, state: ExecutionState, out_bytes: int) -> Dict[str, Any]:
        detail = {k: v for k, v in self.detail.items()
                  if k not in ("cache", "memory_in_bytes", "memory_out_bytes")}
        return {
            "decision": state.decision,
            "strategy": state.strategy,
            "partition": state.partition,
            "delta1": state.delta1,
            "delta2": state.delta2,
            "fallback": state.fallback_combinatorial,
            "detail": detail,
            "out_bytes": int(out_bytes),
        }

    def _restore(self, state: ExecutionState, snapshot: Dict[str, Any]) -> None:
        state.decision = snapshot["decision"]
        state.strategy = snapshot["strategy"]
        state.partition = snapshot["partition"]
        state.delta1 = snapshot["delta1"]
        state.delta2 = snapshot["delta2"]
        state.fallback_combinatorial = snapshot["fallback"]
        self.detail.update(snapshot["detail"])

    def _partition(self, state: ExecutionState) -> int:
        """Decide and split; returns the partition's byte size."""
        decision = self.decide(state)
        state.decision = decision
        state.strategy = decision.strategy
        self.detail["strategy"] = decision.strategy
        if decision.strategy == "wcoj":
            self.detail["reason"] = "optimizer chose plain worst-case optimal join"
            return 0
        delta1, delta2 = decision.delta1, decision.delta2
        if state.mode == MODE_COUNTS:
            state.partition = self._counting_partition(state, delta1)
            state.delta1 = state.partition.delta1
            state.delta2 = state.partition.delta1
            self.detail["heavy_witnesses"] = int(state.partition.heavy_y.size)
            self.detail["light_witnesses"] = int(state.partition.light_y.size)
            return int(state.partition.heavy_y.nbytes + state.partition.light_y.nbytes)
        if state.mode == MODE_STAR:
            partition = partition_star(state.relations, delta1, delta2)
            state.partition = partition
            state.delta1 = partition.delta1
            state.delta2 = partition.delta2
            # If nothing survived into the heavy residual, the light
            # sub-joins would re-enumerate the whole query k times; one
            # worst-case optimal evaluation is strictly cheaper.
            if partition.heavy_y.size == 0 or any(len(rel) == 0 for rel in partition.heavy):
                state.fallback_combinatorial = True
                self.detail["fallback"] = "empty heavy residual; full combinatorial join"
            self.detail["heavy_witnesses"] = int(partition.heavy_y.size)
            return _relation_bytes(partition.light_head) + _relation_bytes(partition.heavy)
        partition = partition_two_path(state.relations[0], state.relations[1], delta1, delta2)
        state.partition = partition
        state.delta1 = partition.delta1
        state.delta2 = partition.delta2
        self.detail["light_fraction"] = round(partition.light_fraction(), 4)
        self.detail["heavy_witnesses"] = int(partition.heavy_y.size)
        return _relation_bytes(
            [partition.r_light, partition.s_light, partition.r_heavy, partition.s_heavy]
        )

    @staticmethod
    def _counting_partition(state: ExecutionState, delta1: int) -> CountingPartition:
        left, right = state.relations
        delta1 = max(int(delta1), 1)
        left_deg_y = left.degrees_y()
        right_deg_y = right.degrees_y()
        shared = np.asarray(sorted(set(left_deg_y) & set(right_deg_y)), dtype=np.int64)
        heavy_mask = np.fromiter(
            (
                left_deg_y[int(y)] > delta1 and right_deg_y[int(y)] > delta1
                for y in shared
            ),
            count=shared.size,
            dtype=bool,
        )
        return CountingPartition(
            heavy_y=shared[heavy_mask], light_y=shared[~heavy_mask], delta1=delta1
        )


class CombinatorialLight(PhysicalOperator):
    """Evaluate the light sub-joins (or the whole query under WCOJ)."""

    name = "combinatorial_light"

    def run(self, state: ExecutionState) -> None:
        if state.strategy == "wcoj" or state.fallback_combinatorial:
            self._run_full(state)
        elif state.mode == MODE_COUNTS:
            self._run_light_counts(state)
        elif state.mode == MODE_STAR:
            self._run_light_star(state)
        else:
            self._run_light_pairs(state)
        in_bytes = self._input_bytes(state)
        if state.mode == MODE_COUNTS:
            self.record_memory(in_bytes, state.light_counted.nbytes)
        else:
            self.record_memory(in_bytes, state.light_block.nbytes)

    @staticmethod
    def _input_bytes(state: ExecutionState) -> int:
        """Bytes this operator actually consumed: its light partition slice
        (plus the probed full relations), or everything under WCOJ."""
        partition = state.partition
        if state.strategy == "wcoj" or state.fallback_combinatorial or partition is None:
            return _relation_bytes(state.relations)
        if state.mode == MODE_STAR:
            return _relation_bytes(partition.light_head)
        if state.mode == MODE_COUNTS:
            return _relation_bytes(state.relations) + int(partition.light_y.nbytes)
        return _relation_bytes([partition.r_light, partition.s_light])

    # -- full combinatorial evaluation (WCOJ strategy / star fallback) -----
    def _run_full(self, state: ExecutionState) -> None:
        self.detail["scope"] = "full combinatorial join"
        if state.mode == MODE_STAR:
            state.light_block = combinatorial_star_block(state.relations)
        elif state.mode == MODE_COUNTS:
            state.light_counted = combinatorial_two_path_counted(
                state.relations[0], state.relations[1]
            )
        else:
            state.light_block = combinatorial_two_path_block(
                state.relations[0],
                state.relations[1],
                dedup_strategy=state.config.dedup_strategy,
            )

    # -- light sub-joins ---------------------------------------------------
    def _run_light_pairs(self, state: ExecutionState) -> None:
        partition = state.partition
        left, right = state.relations
        cores = state.config.cores
        tasks: List[Tuple[Relation, Relation, bool]] = []
        if len(partition.r_light):
            right.sorted_by_y()  # build the probe layout once, outside the pool
            for chunk in split_relation(partition.r_light, cores):
                tasks.append((chunk, right, False))
        if len(partition.s_light):
            left.sorted_by_y()
            for chunk in split_relation(partition.s_light, cores):
                tasks.append((chunk, left, True))
        if tasks:
            # A session brings its own persistent pool; one-shot evaluation
            # spins a throwaway executor up as before.
            executor = (
                state.session.executor(cores)
                if state.session is not None
                else ParallelExecutor(cores=cores)
            )
            blocks = executor.map(_probe_chunk, tasks)
            # Worker blocks merge with one concat; a single packed-key
            # unique replaces the old per-chunk set unions.
            state.light_block = PairBlock.concat_all(blocks).dedup()
        self.detail["light_pairs"] = len(state.light_block)

    def _run_light_counts(self, state: ExecutionState) -> None:
        partition = state.partition
        left, right = state.relations
        light_mask = np.isin(left.ys, partition.light_y)
        # Chunked expansion: peak memory tracks the distinct output, not the
        # raw witness count (same machinery as the combinatorial baseline).
        state.light_counted = counted_probe_block(
            left.xs[light_mask], left.ys[light_mask], right
        )
        self.detail["light_pairs"] = len(state.light_counted)

    def _run_light_star(self, state: ExecutionState) -> None:
        partition = state.partition
        relations = state.relations
        blocks: List[PairBlock] = []
        arity = max(len(relations), 1)
        for i, light_rel in enumerate(partition.light_head):
            if len(light_rel) == 0:
                continue
            sub = list(relations)
            sub[i] = light_rel
            blocks.append(star_expansion_block(sub))
        if partition.light_y.size:
            blocks.append(star_expansion_block(relations, restrict_to=partition.light_y))
        # Raw sub-join expansions concatenate; one dedup covers within- and
        # cross-sub-join duplicates alike.
        state.light_block = PairBlock.concat_all(blocks, arity=arity).dedup()
        self.detail["light_tuples"] = len(state.light_block)


class MatMulHeavy(PhysicalOperator):
    """Evaluate the all-heavy residual with one matrix product.

    Session-aware: the operand matrices (dense adjacency / CSR, per backend)
    and the star query's grouped matrices are cached by (relation tokens,
    mode, config signature, backend) — a warm query pays only the product
    and the non-zero extraction.
    """

    name = "matmul_heavy"

    def __init__(self, registry: BackendRegistry) -> None:
        super().__init__()
        self.registry = registry
        self._counts_in_bytes = 0  # heavy-restricted relations, set by _run_counts

    def _cached_operands(self, state: ExecutionState, backend, builder):
        """``(operands, build_seconds, cache_status)`` through the session cache.

        ``operands`` is ``None`` (with status ``None``) when no session is
        attached — the backend then builds internally exactly as before.
        """
        ctx = state.session
        if ctx is None:
            return None, 0.0, None
        key = ctx.key("operands", state.relations, state.mode,
                      state.config.cache_signature(), backend.name)
        if key is None:
            return None, 0.0, None
        found, operands = ctx.artifacts.lookup(key)
        if found:
            return operands, 0.0, "hit"
        start = time.perf_counter()
        operands = builder()
        build_seconds = time.perf_counter() - start
        ctx.artifacts.put(key, operands, sum(_matrix_nbytes(m) for m in operands))
        return operands, build_seconds, "miss"

    def run(self, state: ExecutionState) -> None:
        if state.strategy == "wcoj":
            self.skip("wcoj strategy has no heavy residual")
            return
        if state.fallback_combinatorial:
            self.skip("heavy residual empty; light operator ran the full join")
            return
        # Named injection site for backend exceptions: everything below
        # dispatches into a matmul backend.
        fault_site(SITE_BACKEND_MATMUL)
        if state.mode == MODE_COUNTS:
            self._run_counts(state)
        elif state.mode == MODE_STAR:
            self._run_star(state)
        else:
            self._run_pairs(state)
        self.detail["backend"] = state.backend_name
        self.detail["matrix_dims"] = state.matrix_dims
        out_bytes = (
            state.heavy_counted.nbytes if state.mode == MODE_COUNTS
            else state.heavy_block.nbytes
        )
        partition = state.partition
        if state.mode == MODE_STAR:
            in_bytes = _relation_bytes(partition.heavy)
        elif state.mode == MODE_COUNTS:
            in_bytes = self._counts_in_bytes
        else:
            in_bytes = _relation_bytes([partition.r_heavy, partition.s_heavy])
        self.record_memory(in_bytes, out_bytes)

    def _select(self, state: ExecutionState, dims: Tuple[int, int, int],
                nnz_left: int, nnz_right: int):
        backend = self.registry.select(state.config, dims, nnz_left, nnz_right)
        state.backend_name = backend.name
        return backend

    @staticmethod
    def _density_hint(state: ExecutionState, u: int, w: int):
        """The planner's output-density estimate for a ``u x w`` product.

        ``estimated_output`` counts distinct output pairs of the whole
        query, so this is an upper bound on the product's non-zero density —
        exactly what the adaptive scan needs to decide whether screening can
        pay for itself.
        """
        decision = state.decision
        if decision is None or u <= 0 or w <= 0:
            return None
        estimated = float(getattr(decision, "estimated_output", 0.0) or 0.0)
        if estimated <= 0.0:
            return None
        return min(1.0, estimated / (float(u) * float(w)))

    def _core_mapping(self, state: ExecutionState, left_heavy, right_heavy,
                      rows, cols, inner_dim: int):
        """Build (or fetch) the DIM3 dense-core mapping for this product.

        The permutation depends only on the heavy relations' degree
        sequences, so under a session it is cached by the relations' tokens
        (which embed their versions): warm serving never recomputes it.
        """
        ctx = state.session
        key = (
            ctx.key("dense_core_map", state.relations, state.mode,
                    state.config.cache_signature())
            if ctx is not None else None
        )
        if key is not None:
            found, mapping = ctx.artifacts.lookup(key)
            if found:
                self.detail["mapping_cache"] = "hit"
                return mapping
        mapping = heavy_core_mapping(left_heavy, right_heavy, rows, cols, inner_dim)
        if key is not None:
            ctx.artifacts.put(key, mapping, mapping.nbytes)
            self.detail["mapping_cache"] = "miss"
        return mapping

    def _extraction_args(self, state: ExecutionState, dims: Tuple[int, int, int],
                         left_heavy, right_heavy, rows, cols):
        """Resolve ``(extract_mode, mapping, density_hint)`` for the product."""
        u, v, w = dims
        mode = state.config.extract_mode
        mapping = None
        if mode == MODE_CORE:
            mapping = self._core_mapping(state, left_heavy, right_heavy,
                                         rows, cols, v)
        return mode, mapping, self._density_hint(state, u, w)

    def _run_pairs(self, state: ExecutionState) -> None:
        partition = state.partition
        rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
        dims = (int(rows.size), int(mids.size), int(cols.size))
        state.matrix_dims = dims
        if min(dims) == 0:
            self.detail["build_seconds"] = 0.0
            self.detail["multiply_seconds"] = 0.0
            return
        backend = self._select(
            state, dims, len(partition.r_heavy), len(partition.s_heavy)
        )
        operands, cached_build, cache_status = self._cached_operands(
            state, backend,
            lambda: backend.build_operands(
                partition.r_heavy, partition.s_heavy, rows, mids, cols
            ),
        )
        extract_mode, mapping, density_hint = self._extraction_args(
            state, dims, partition.r_heavy, partition.s_heavy, rows, cols
        )
        extract_stats: Dict[str, Any] = {}
        block, build_seconds, multiply_seconds = backend.heavy_pairs(
            partition.r_heavy, partition.s_heavy, rows, mids, cols,
            cores=state.config.cores, operands=operands,
            tile_rows=state.config.extract_tile_rows, extract_stats=extract_stats,
            extract_mode=extract_mode, mapping=mapping, density_hint=density_hint,
        )
        if cache_status is not None:
            self.detail["cache"] = cache_status
            build_seconds = cached_build
        state.heavy_block = block
        self.detail["build_seconds"] = build_seconds
        self.detail["multiply_seconds"] = multiply_seconds
        self.detail["heavy_pairs"] = len(block)
        self.detail.update(extract_stats)

    def _run_counts(self, state: ExecutionState) -> None:
        partition = state.partition
        heavy_y = partition.heavy_y
        if heavy_y.size == 0:
            state.matrix_dims = (0, 0, 0)
            self.detail["build_seconds"] = 0.0
            self.detail["multiply_seconds"] = 0.0
            return
        left, right = state.relations
        ctx = state.session
        inputs = None
        inputs_key = (
            ctx.key("heavy_inputs", state.relations, state.mode,
                    state.config.cache_signature())
            if ctx is not None else None
        )
        if inputs_key is not None:
            found, inputs = ctx.artifacts.lookup(inputs_key)
            if not found:
                inputs = None
        if inputs is None:
            left_heavy = left.restrict_y(heavy_y, name=f"{left.name}+")
            right_heavy = right.restrict_y(heavy_y, name=f"{right.name}+")
            inputs = (left_heavy, right_heavy)
            if inputs_key is not None:
                ctx.artifacts.put(inputs_key, inputs, _relation_bytes(inputs))
        left_heavy, right_heavy = inputs
        self._counts_in_bytes = _relation_bytes([left_heavy, right_heavy])
        rows = left_heavy.x_values()
        cols = right_heavy.x_values()
        dims = (int(rows.size), int(heavy_y.size), int(cols.size))
        state.matrix_dims = dims
        backend = self._select(state, dims, len(left_heavy), len(right_heavy))
        operands, cached_build, cache_status = self._cached_operands(
            state, backend,
            lambda: backend.build_operands(left_heavy, right_heavy, rows, heavy_y, cols),
        )
        extract_mode, mapping, density_hint = self._extraction_args(
            state, dims, left_heavy, right_heavy, rows, cols
        )
        extract_stats: Dict[str, Any] = {}
        counted, build_seconds, multiply_seconds = backend.heavy_counts(
            left_heavy, right_heavy, rows, heavy_y, cols,
            cores=state.config.cores, operands=operands,
            tile_rows=state.config.extract_tile_rows, extract_stats=extract_stats,
            extract_mode=extract_mode, mapping=mapping, density_hint=density_hint,
        )
        if cache_status is not None:
            self.detail["cache"] = cache_status
            build_seconds = cached_build
        state.heavy_counted = counted
        self.detail["build_seconds"] = build_seconds
        self.detail["multiply_seconds"] = multiply_seconds
        self.detail["heavy_pairs"] = len(counted)
        self.detail.update(extract_stats)

    def _run_star(self, state: ExecutionState) -> None:
        partition = state.partition
        heavy_relations = partition.heavy
        heavy_y = partition.heavy_y
        k = len(heavy_relations)
        split = (k + 1) // 2
        ctx = state.session
        key = (
            ctx.key("star_operands", state.relations, state.config.cache_signature())
            if ctx is not None else None
        )
        cached = None
        if key is not None:
            found, cached = ctx.artifacts.lookup(key)
            if not found:
                cached = None
        build_start = time.perf_counter()
        if cached is not None:
            rows_a, matrix_a, rows_b, matrix_b = cached
            self.detail["cache"] = "hit"
        else:
            rows_a, matrix_a = _group_matrix(heavy_relations, list(range(split)), heavy_y)
            rows_b, matrix_b = _group_matrix(heavy_relations, list(range(split, k)), heavy_y)
            if key is not None:
                value = (rows_a, matrix_a, rows_b, matrix_b)
                ctx.artifacts.put(key, value, sum(_matrix_nbytes(m) for m in value))
                self.detail["cache"] = "miss"
        build_seconds = time.perf_counter() - build_start
        dims = (rows_a.shape[0], int(heavy_y.size), rows_b.shape[0])
        state.matrix_dims = dims
        self.detail["build_seconds"] = build_seconds
        if rows_a.shape[0] == 0 or rows_b.shape[0] == 0:
            self.detail["multiply_seconds"] = 0.0
            return
        nnz_a = int(matrix_a.sum())
        nnz_b = int(matrix_b.sum())
        backend = self._select(state, dims, nnz_a, nnz_b)
        multiply_start = time.perf_counter()
        product = backend.multiply_dense(matrix_a, matrix_b.T, cores=state.config.cores)
        # The star head's grouped rows are synthetic combinations, not a
        # degree-sorted domain, so the core mapping does not apply; "core"
        # degrades to the adaptive auto policy inside the scan.
        extract_stats: Dict[str, Any] = {}
        hit_rows, hit_cols = tiled_nonzero_coords(
            np.asarray(product), threshold=0.5,
            tile_rows=state.config.extract_tile_rows, stats=extract_stats,
            mode=state.config.extract_mode,
            density_hint=self._density_hint(state, dims[0], dims[2]),
        )
        self.detail.update(extract_stats)
        # Head tuples are column gathers from the two grouped row tables —
        # cells of a product are unique, so the block is born deduplicated.
        head_a = rows_a[hit_rows]
        head_b = rows_b[hit_cols]
        state.heavy_block = PairBlock(
            tuple(head_a[:, j] for j in range(head_a.shape[1]))
            + tuple(head_b[:, j] for j in range(head_b.shape[1])),
            deduped=True,
        )
        self.detail["multiply_seconds"] = time.perf_counter() - multiply_start
        self.detail["heavy_tuples"] = len(state.heavy_block)


class DedupMerge(PhysicalOperator):
    """Merge the light and heavy outputs, deduplicating across the two.

    One columnar pass: concatenate the two phase blocks and run a single
    packed-key ``np.unique``.  Under MODE_COUNTS the per-pair witness counts
    are aggregated with ``np.add.at`` over the packed keys (the light and
    heavy witness populations are disjoint, so the sums are exact; counts are
    int64 end-to-end thanks to the float64 widening guard in the matmul
    layer).
    """

    name = "dedup_merge"

    def run(self, state: ExecutionState) -> None:
        if state.mode == MODE_COUNTS:
            light, heavy = state.light_counted, state.heavy_counted
            # Either phase may be empty (wcoj strategy, empty residual); its
            # survivor is already aggregated, so skip the re-sort.
            if len(heavy) == 0:
                merged = light if light.deduped else light.dedup(reduce="sum")
            elif len(light) == 0:
                merged = heavy if heavy.deduped else heavy.dedup(reduce="sum")
            else:
                merged = light.concat(heavy).dedup(reduce="sum")
            state.result_counted = merged
            state.result_block = merged.pairs_block()
            self.record_memory(light.nbytes + heavy.nbytes, merged.nbytes)
        else:
            light, heavy = state.light_block, state.heavy_block
            if len(heavy) == 0:
                merged = light if light.deduped else light.dedup()
            elif len(light) == 0:
                merged = heavy if heavy.deduped else heavy.dedup()
            else:
                merged = light.concat(heavy).dedup()
            state.result_block = merged
            # Both phase blocks are deduplicated, so the shrink is the
            # cross-phase overlap.
            self.detail["overlap"] = len(light) + len(heavy) - len(merged)
            self.record_memory(light.nbytes + heavy.nbytes, merged.nbytes)
        self.detail["output_size"] = state.output_size


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
def _probe_chunk(args: Tuple[Relation, Relation, bool]) -> PairBlock:
    """Worker task: chunked vectorized probe of one relation slice.

    Each worker returns a deduplicated block whose construction never holds
    more than one expansion chunk of raw rows — peak memory per worker is
    output-sensitive, as the old set-based probe was.
    """
    chunk, other, flip = args
    return deduped_probe_block(chunk.xs, chunk.ys, other, flip=flip)


def _group_matrix(
    heavy_relations: List[Relation],
    group: List[int],
    heavy_y: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the grouped adjacency matrix for one half of the star head.

    Candidate head combinations are discovered per heavy witness (so only
    combinations that actually co-occur appear as rows), then each row is
    marked against every heavy witness it is fully connected to.  Returns
    the head combinations as an ``(n, |group|)`` int64 row table plus the
    0/1 matrix.
    """
    indexes = [heavy_relations[i].index_y() for i in group]

    combo_blocks: List[np.ndarray] = []
    column_blocks: List[np.ndarray] = []
    for j, y in enumerate(heavy_y):
        yi = int(y)
        neighbour_lists = []
        missing = False
        for idx in indexes:
            values = idx.get(yi)
            if values is None or values.size == 0:
                missing = True
                break
            neighbour_lists.append(values)
        if missing:
            continue
        combos = cartesian_arrays(neighbour_lists)
        combo_blocks.append(combos)
        column_blocks.append(np.full(combos.shape[0], j, dtype=np.int64))

    if not combo_blocks:
        return (
            np.empty((0, len(group)), dtype=np.int64),
            np.zeros((0, heavy_y.size), dtype=np.float32),
        )

    all_combos = np.concatenate(combo_blocks, axis=0)
    all_columns = np.concatenate(column_blocks)
    unique_rows, inverse = np.unique(all_combos, axis=0, return_inverse=True)
    matrix = np.zeros((unique_rows.shape[0], heavy_y.size), dtype=np.float32)
    matrix[inverse.reshape(-1), all_columns] = 1.0
    return unique_rows, matrix
