"""Timing utilities for the benchmark harness.

The paper reports, for every experiment, the running time averaged over five
runs after discarding the fastest and slowest.  :func:`time_call` reproduces
that protocol (with a configurable repeat count so the pytest benchmarks stay
fast), and :func:`run_series` applies it over a parameter sweep.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple


@dataclass
class Measurement:
    """One timed call: trimmed-mean seconds plus the callable's return value.

    ``details`` carries the plan explanation when the measured callable
    returns a planner-backed result (an object exposing ``explanation`` or a
    ``details`` mapping): strategy, backend, thresholds and per-operator
    estimated vs. actual cost.
    """

    seconds: float
    runs: List[float]
    value: Any = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def best(self) -> float:
        """Fastest observed run."""
        return min(self.runs) if self.runs else 0.0

    @property
    def worst(self) -> float:
        """Slowest observed run."""
        return max(self.runs) if self.runs else 0.0


def extract_details(value: Any) -> Dict[str, Any]:
    """Pull plan-explanation details out of a result object, if it has any."""
    explanation = getattr(value, "explanation", None)
    if explanation is not None and hasattr(explanation, "as_details"):
        return explanation.as_details()
    details = getattr(value, "details", None)
    if isinstance(details, dict):
        return dict(details)
    return {}


def time_call(
    func: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    trim: bool = True,
    **kwargs: Any,
) -> Measurement:
    """Time ``func(*args, **kwargs)`` following the paper's protocol.

    Runs the callable ``repeats`` times; when ``trim`` is on and at least
    three runs were taken, the fastest and slowest are discarded before
    averaging (the paper's "average three values after excluding the slowest
    and the fastest").
    """
    runs: List[float] = []
    value: Any = None
    for _ in range(max(int(repeats), 1)):
        start = time.perf_counter()
        value = func(*args, **kwargs)
        runs.append(time.perf_counter() - start)
    if trim and len(runs) >= 3:
        kept = sorted(runs)[1:-1]
    else:
        kept = runs
    return Measurement(
        seconds=float(statistics.mean(kept)),
        runs=runs,
        value=value,
        details=extract_details(value),
    )


def run_series(
    func: Callable[[Any], Any],
    parameters: Sequence[Any],
    repeats: int = 3,
) -> List[Tuple[Any, Measurement]]:
    """Time ``func(p)`` for every parameter ``p`` in the sweep."""
    return [(p, time_call(func, p, repeats=repeats)) for p in parameters]


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds
