"""Dataset registry for the benchmark harness.

Every benchmark figure runs over the scaled-down analogues of the paper's six
datasets.  The registry caches generated relations per (name, scale, seed) so
the many benchmark modules share one copy, and exposes the Table 2 rows.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.data.generators import generate_dataset, list_profiles
from repro.data.relation import Relation
from repro.data.setfamily import SetFamily

# Global scale factor for benchmark datasets.  Override with the environment
# variable REPRO_BENCH_SCALE to run larger (or smaller) instances.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))

_CACHE: Dict[Tuple[str, float, int], Relation] = {}


def bench_dataset(name: str, scale: float = BENCH_SCALE, seed: int = 7) -> Relation:
    """One of the six paper datasets at benchmark scale (cached)."""
    key = (name, float(scale), int(seed))
    if key not in _CACHE:
        _CACHE[key] = generate_dataset(name, scale=scale, seed=seed)
    return _CACHE[key]


def bench_datasets(scale: float = BENCH_SCALE, seed: int = 7) -> Dict[str, Relation]:
    """All six datasets at benchmark scale, in the Table 2 order."""
    return {name: bench_dataset(name, scale=scale, seed=seed) for name in list_profiles()}


def bench_family(name: str, scale: float = BENCH_SCALE, seed: int = 7) -> SetFamily:
    """A dataset wrapped as a set family (for the SSJ/SCJ benchmarks)."""
    return SetFamily.from_relation(bench_dataset(name, scale=scale, seed=seed))


def dataset_names() -> List[str]:
    """The six dataset names in the paper's Table 2 order."""
    return list_profiles()


def table2_rows(scale: float = BENCH_SCALE, seed: int = 7) -> List[Dict[str, float]]:
    """Regenerate Table 2: one statistics row per dataset."""
    rows: List[Dict[str, float]] = []
    for name, relation in bench_datasets(scale=scale, seed=seed).items():
        row: Dict[str, float] = {"dataset": name}
        row.update(relation.stats().as_row())
        rows.append(row)
    return rows
