"""Plain-text reporting helpers for the benchmark harness.

The benchmarks print the same rows / series the paper's tables and figures
report, so EXPERIMENTS.md can be filled by copying the benchmark output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for col in columns:
            cell = row.get(col, "")
            text = _format_cell(cell)
            widths[col] = max(widths[col], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[col]) for cell, col in zip(rendered, columns)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Tuple[object, float]]],
    x_label: str = "x",
    y_label: str = "seconds",
    title: str = "",
) -> str:
    """Render one or more (x, y) series as a text table (one column per series)."""
    xs: List[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows: List[Dict[str, object]] = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            if x in lookup:
                row[name] = lookup[x]
        rows.append(row)
    header = f"{title} ({y_label})" if title else ""
    return format_table(rows, title=header)


def print_table(rows: Sequence[Mapping[str, object]], title: str = "") -> None:
    """Print a dict-rows table (convenience for benchmarks and examples)."""
    print(format_table(rows, title=title))


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".") if "." in f"{cell:.4f}" else f"{cell:.4f}"
    return str(cell)
