"""Plain-text reporting helpers for the benchmark harness.

The benchmarks print the same rows / series the paper's tables and figures
report, so EXPERIMENTS.md can be filled by copying the benchmark output.
:func:`record_bench_json` additionally maintains one machine-readable
``BENCH_micro.json`` (per-benchmark headline metrics, timestamp, commit)
so the micro-benchmark perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for col in columns:
            cell = row.get(col, "")
            text = _format_cell(cell)
            widths[col] = max(widths[col], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[col]) for cell, col in zip(rendered, columns)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Tuple[object, float]]],
    x_label: str = "x",
    y_label: str = "seconds",
    title: str = "",
) -> str:
    """Render one or more (x, y) series as a text table (one column per series)."""
    xs: List[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows: List[Dict[str, object]] = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            if x in lookup:
                row[name] = lookup[x]
        rows.append(row)
    header = f"{title} ({y_label})" if title else ""
    return format_table(rows, title=header)


def print_table(rows: Sequence[Mapping[str, object]], title: str = "") -> None:
    """Print a dict-rows table (convenience for benchmarks and examples)."""
    print(format_table(rows, title=title))


def _git_commit() -> str:
    """The current short commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def record_bench_json(
    experiment: str,
    metrics: Mapping[str, object],
    results_dir: Path,
    filename: str = "BENCH_micro.json",
) -> Path:
    """Merge one micro-benchmark's headline metrics into ``BENCH_micro.json``.

    The file maps ``experiment -> {metrics, timestamp, commit}``; entries
    from other experiments are preserved, so each runner updates only its
    own row and the file accumulates the whole micro-benchmark dashboard.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / filename
    data: Dict[str, object] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            data = {}
        if not isinstance(data, dict):
            data = {}
    data[str(experiment)] = {
        "metrics": {k: v for k, v in metrics.items()},
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_commit(),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".") if "." in f"{cell:.4f}" else f"{cell:.4f}"
    return str(cell)
