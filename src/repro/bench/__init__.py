"""Benchmark harness: dataset registry, timing runner and paper-style reports."""

from repro.bench.datasets import BENCH_SCALE, bench_dataset, bench_datasets, table2_rows
from repro.bench.runner import Measurement, time_call, run_series
from repro.bench.report import format_table, format_series, print_table

__all__ = [
    "BENCH_SCALE",
    "bench_dataset",
    "bench_datasets",
    "table2_rows",
    "Measurement",
    "time_call",
    "run_series",
    "format_table",
    "format_series",
    "print_table",
]
