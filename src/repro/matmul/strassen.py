"""Strassen's fast matrix multiplication.

The theoretical analysis of the paper is parameterised by the matrix
multiplication exponent ``omega``.  The practical prototype (Eigen/MKL)
uses the classical cubic kernel, but we also provide a genuine sub-cubic
algorithm — Strassen's recursion, ``omega = log2(7) ~ 2.807`` — so that the
"fast matrix multiplication" branch of the theory is exercised by real code
rather than assumed.  Below a configurable cutoff the recursion falls back
to the BLAS kernel, which is how production Strassen implementations work.
"""

from __future__ import annotations

import math

import numpy as np

STRASSEN_OMEGA = math.log2(7.0)

DEFAULT_CUTOFF = 64


def _next_power_of_two(n: int) -> int:
    return 1 if n <= 1 else 2 ** math.ceil(math.log2(n))


def strassen_matmul(
    left: np.ndarray, right: np.ndarray, cutoff: int = DEFAULT_CUTOFF
) -> np.ndarray:
    """Multiply two matrices with Strassen's algorithm.

    Rectangular inputs are zero-padded to the enclosing power-of-two square;
    the padding is stripped from the result.  ``cutoff`` controls when the
    recursion bottoms out into the dense BLAS kernel.
    """
    a = np.asarray(left, dtype=np.float64)
    b = np.asarray(right, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("strassen_matmul expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    rows, inner = a.shape
    _, cols = b.shape
    if rows == 0 or inner == 0 or cols == 0:
        return np.zeros((rows, cols), dtype=np.float64)
    size = _next_power_of_two(max(rows, inner, cols))
    a_sq = np.zeros((size, size), dtype=np.float64)
    b_sq = np.zeros((size, size), dtype=np.float64)
    a_sq[:rows, :inner] = a
    b_sq[:inner, :cols] = b
    product = _strassen_square(a_sq, b_sq, max(int(cutoff), 2))
    return product[:rows, :cols]


def _strassen_square(a: np.ndarray, b: np.ndarray, cutoff: int) -> np.ndarray:
    n = a.shape[0]
    if n <= cutoff:
        return a @ b
    half = n // 2
    a11, a12 = a[:half, :half], a[:half, half:]
    a21, a22 = a[half:, :half], a[half:, half:]
    b11, b12 = b[:half, :half], b[:half, half:]
    b21, b22 = b[half:, :half], b[half:, half:]

    m1 = _strassen_square(a11 + a22, b11 + b22, cutoff)
    m2 = _strassen_square(a21 + a22, b11, cutoff)
    m3 = _strassen_square(a11, b12 - b22, cutoff)
    m4 = _strassen_square(a22, b21 - b11, cutoff)
    m5 = _strassen_square(a11 + a12, b22, cutoff)
    m6 = _strassen_square(a21 - a11, b11 + b12, cutoff)
    m7 = _strassen_square(a12 - a22, b21 + b22, cutoff)

    top_left = m1 + m4 - m5 + m7
    top_right = m3 + m5
    bottom_left = m2 + m4
    bottom_right = m1 - m2 + m3 + m6

    out = np.empty((n, n), dtype=np.float64)
    out[:half, :half] = top_left
    out[:half, half:] = top_right
    out[half:, :half] = bottom_left
    out[half:, half:] = bottom_right
    return out


def strassen_flop_estimate(n: int, cutoff: int = DEFAULT_CUTOFF) -> float:
    """Rough operation-count estimate for Strassen on an n x n problem."""
    if n <= cutoff:
        return float(n) ** 3
    levels = math.ceil(math.log2(max(n / cutoff, 1.0)))
    leaf = max(n / (2 ** levels), 1.0)
    return (7 ** levels) * (leaf ** 3)
