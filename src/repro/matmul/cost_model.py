"""Calibrated matrix-multiplication cost model (paper Section 5).

The optimizer needs an estimate ``M_hat(u, v, w, cores)`` of the wall-clock
time a ``u x v`` by ``v x w`` product will take on the current machine.  The
paper precomputes a table of square-product timings
``M_hat(p, p, p, cores)`` for ``p in {1000, 2000, ..., 20000}`` and
extrapolates; we do the same but with a smaller default grid (the calibration
is run once per process and cached).

Two models are exposed:

* :func:`theoretical_cost` — the Lemma 1 operation count, used by the theory
  module and by deterministic tests;
* :class:`MatMulCostModel` — the calibrated wall-clock model used by the
  cost-based optimizer, with a deterministic fallback (ops / throughput) so
  the optimizer remains usable without running calibration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matmul.blocked import rectangular_cost


def theoretical_cost(u: float, v: float, w: float, omega: float = 3.0) -> float:
    """Operation count of a rectangular product under exponent ``omega``."""
    return rectangular_cost(u, v, w, omega=omega)


@dataclass
class MatMulCostModel:
    """Estimates wall-clock seconds for rectangular float32 products.

    Parameters
    ----------
    calibration_sizes:
        Square sizes to measure when :meth:`calibrate` runs.
    flops_per_second:
        Fallback throughput used before calibration (and for the
        deterministic mode used in tests).  The default corresponds to a
        modest BLAS on one core.
    parallel_efficiency:
        Fraction of linear speedup retained per extra core (the paper
        observes near-linear scaling for Eigen; we default to 85%).
    extract_seconds_per_cell:
        Per-product-cell cost of one extraction scan pass (the non-zero
        readout the dense backends pay after the multiply).
    tile_band_overhead_seconds:
        Fixed Python overhead per row band of the tiled extraction scan.
    """

    calibration_sizes: Sequence[int] = (128, 256, 512)
    flops_per_second: float = 2.0e9
    parallel_efficiency: float = 0.85
    extract_seconds_per_cell: float = 1.0e-9
    tile_band_overhead_seconds: float = 3.0e-6
    _table: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def calibrate(self, repeats: int = 2, seed: int = 0) -> Dict[int, float]:
        """Measure square float32 products and fill the calibration table.

        Returns the table ``{size: seconds}``.  Each measurement is the best
        of ``repeats`` runs to reduce noise.
        """
        rng = np.random.default_rng(seed)
        for size in self.calibration_sizes:
            a = rng.random((size, size), dtype=np.float32)
            b = rng.random((size, size), dtype=np.float32)
            best = float("inf")
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                _ = a @ b
                best = min(best, time.perf_counter() - start)
            self._table[int(size)] = best
        return dict(self._table)

    @property
    def is_calibrated(self) -> bool:
        """Whether at least one measured point is available."""
        return bool(self._table)

    def observe(self, u: int, v: int, w: int, cores: int = 1,
                seconds: float = 0.0, blend: float = 0.5) -> None:
        """Fold one *measured* rectangular product into the calibration table.

        This is the serving layer's feedback loop: every heavy matrix product
        a session executes reports its true wall-clock time, which is mapped
        to the equivalent cube (side ``(u*v*w)^(1/3)``) and blended into the
        table entry for that side (exponential moving average with weight
        ``blend``), exactly where :meth:`estimate` will look next time.  The
        optimizer's threshold search and the registry's ``auto`` backend
        choice both read these estimates, so they calibrate in-session
        without an explicit :meth:`calibrate` pass.
        """
        if u <= 0 or v <= 0 or w <= 0 or seconds <= 0.0:
            return
        single_core = float(seconds) * self.speedup(cores)
        side = max(int(round((float(u) * float(v) * float(w)) ** (1.0 / 3.0))), 1)
        # Normalise the measured rectangular time to the equivalent cube's
        # time so the entry is comparable with calibrate()'s square timings.
        ops = 2.0 * float(u) * float(v) * float(w)
        cube_seconds = single_core * (2.0 * float(side) ** 3) / ops
        previous = self._table.get(side)
        if previous is None:
            self._table[side] = cube_seconds
        else:
            self._table[side] = blend * cube_seconds + (1.0 - blend) * previous

    def set_table(self, table: Dict[int, float]) -> None:
        """Install a pre-measured calibration table (e.g. loaded from disk)."""
        self._table = {int(k): float(v) for k, v in table.items()}

    def table(self) -> Dict[int, float]:
        """The current calibration table."""
        return dict(self._table)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_square(self, size: int, cores: int = 1) -> float:
        """Estimate seconds for an n x n x n product on ``cores`` cores."""
        return self.estimate(size, size, size, cores=cores)

    def estimate(self, u: int, v: int, w: int, cores: int = 1) -> float:
        """Estimate seconds for a ``u x v @ v x w`` product on ``cores`` cores.

        The rectangular product is mapped to an "equivalent" cube of side
        ``(u*v*w)^(1/3)`` and looked up / extrapolated from the calibration
        table; without calibration the flops/throughput fallback is used.
        The multi-core estimate divides by an efficiency-discounted core
        count, mirroring the near-linear scaling in Figure 3b.
        """
        if u <= 0 or v <= 0 or w <= 0:
            return 0.0
        single_core = self._estimate_single_core(float(u), float(v), float(w))
        return single_core / self.speedup(cores)

    def estimate_construction(self, u: int, v: int, w: int, cores: int = 1,
                              seconds_per_cell: float = 4.0e-9) -> float:
        """Estimate the matrix-construction cost ``C`` (Eq. 1 of the paper).

        Construction iterates over every cell of the two operand matrices,
        i.e. ``u*v + v*w`` cells; ``seconds_per_cell`` approximates the memory
        allocation + write cost (the paper's ``T_m`` constant).
        """
        cells = float(u) * float(v) + float(v) * float(w)
        return cells * seconds_per_cell / self.speedup(cores)

    def estimate_extraction(self, u: int, w: int, cores: int = 1,
                            tile_rows: "Optional[int]" = None,
                            mode: "Optional[str]" = None,
                            density: "Optional[float]" = None,
                            core_shape: "Optional[Tuple[int, int]]" = None) -> float:
        """Estimate the non-zero extraction cost of a ``u x w`` product.

        Per-mode estimates (``mode=None``/``"auto"`` returns the best):

        * ``full`` — roughly three passes over the product (the boolean
          compare-and-write plus ``np.nonzero``'s count and gather passes);
        * ``tiled`` — one ``max``-reduction screen pass, the mask/gather
          passes over the live fraction (``density``), and a fixed per-band
          overhead (skipped bands pay nothing further);
        * ``adaptive`` — the tiled scan with the bail-out armed: bounded by
          the cheaper of the tiled scan and the full scan plus one screened
          prefix band;
        * ``core`` — one gather-and-emit pass over the dense core
          (``core_shape``, or a ``density``-sized core when unknown) plus
          the tiled scan of the sparse remainder.

        The plan resolution mirrors
        :func:`repro.matmul.tiling.extraction_plan`; the per-cell constant
        is calibrated in-session by :meth:`observe_extraction`.
        """
        if u <= 0 or w <= 0:
            return 0.0
        from repro.matmul.tiling import extraction_plan

        cells = float(u) * float(w)
        per_cell = self.extract_seconds_per_cell
        live = 0.05 if density is None else min(max(float(density), 0.0), 1.0)
        full = 3.0 * cells * per_cell
        plan_mode, band_rows = extraction_plan((int(u), int(w)), tile_rows)
        if plan_mode == "full":
            # Tiny or explicitly untiled product: there is no banded scan.
            tiled = adaptive = full
        else:
            bands = float(-(-int(u) // max(int(band_rows), 1)))
            tiled = (
                (1.0 + 2.0 * live) * cells * per_cell
                + bands * self.tile_band_overhead_seconds
            )
            prefix = (
                float(band_rows) * float(w) * per_cell
                + self.tile_band_overhead_seconds
            )
            adaptive = min(tiled, full + prefix)
        if core_shape is not None:
            core_cells = float(core_shape[0]) * float(core_shape[1])
        else:
            core_cells = live * cells
        core_cells = min(core_cells, cells)
        rest = cells - core_cells
        core = (
            2.0 * core_cells * per_cell  # gather + one-shot emit
            + (1.0 + live) * rest * per_cell
            + self.tile_band_overhead_seconds
        )
        estimates = {"full": full, "tiled": tiled, "adaptive": adaptive,
                     "core": core}
        if mode in (None, "auto"):
            seconds = min(full, tiled, adaptive)
        else:
            seconds = estimates.get(mode, adaptive)
        return seconds / self.speedup(cores)

    def observe_extraction(self, u: int, w: int, seconds: float,
                           mode: str = "full", cores: int = 1,
                           blend: float = 0.5) -> None:
        """Calibrate the per-cell extraction constant from a measurement.

        Only full-pass observations carry a clean per-cell signal (``full``
        and post-bail ``adaptive`` scans touch every cell about three
        times); screened scans skip unknown amounts of work and are ignored.
        """
        if u <= 0 or w <= 0 or seconds <= 0.0 or mode not in ("full", "adaptive"):
            return
        cells = float(u) * float(w)
        measured = seconds * self.speedup(cores) / (3.0 * cells)
        self.extract_seconds_per_cell = (
            blend * measured + (1.0 - blend) * self.extract_seconds_per_cell
        )

    def speedup(self, cores: int) -> float:
        """Model the multi-core speedup: 1 + eff * (cores - 1)."""
        cores = max(int(cores), 1)
        return 1.0 + self.parallel_efficiency * (cores - 1)

    # -- internals ----------------------------------------------------------
    def _estimate_single_core(self, u: float, v: float, w: float) -> float:
        ops = 2.0 * u * v * w  # multiply + add per cell update
        if not self._table:
            return ops / self.flops_per_second
        equivalent_side = (u * v * w) ** (1.0 / 3.0)
        sizes = np.asarray(sorted(self._table), dtype=np.float64)
        times = np.asarray([self._table[int(s)] for s in sizes], dtype=np.float64)
        # Interpolate seconds-per-flop between the two nearest measured cubes;
        # clamp outside the measured range (matches the paper's "nearest
        # estimate" extrapolation).
        measured_ops = 2.0 * sizes ** 3
        seconds_per_op = times / measured_ops
        if equivalent_side <= sizes[0]:
            rate = seconds_per_op[0]
        elif equivalent_side >= sizes[-1]:
            rate = seconds_per_op[-1]
        else:
            rate = float(np.interp(equivalent_side, sizes, seconds_per_op))
        return ops * float(rate)


def calibration_series(
    model: MatMulCostModel, sizes: Sequence[int], cores: Sequence[int] = (1,)
) -> List[Tuple[int, int, float]]:
    """Produce (size, cores, estimated seconds) rows — the Figure 3 series."""
    rows: List[Tuple[int, int, float]] = []
    for size in sizes:
        for core_count in cores:
            rows.append((int(size), int(core_count), model.estimate_square(size, core_count)))
    return rows
