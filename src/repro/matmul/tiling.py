"""Density-aware tiled non-zero extraction from dense product matrices.

The paper's whole point is output-sensitive join-project evaluation, yet the
naive extraction step is not: ``np.nonzero(product > threshold)`` on the full
``|x| x |z|`` product materialises an ``O(|x| * |z|)`` boolean temporary even
when the output is tiny.  This module scans the product in contiguous row
bands instead (the density-optimised blocking idea of Huang & Chen's DIM3):

* each band is screened with one ``max`` reduction — a single read pass with
  no boolean temporary — and bands whose rows all fall below the threshold
  are skipped outright;
* within a surviving band only the rows that can contribute are masked, so
  the boolean temporary is bounded by the band (tile), not the matrix;
* coordinates are emitted tile-by-tile and concatenated once at the end.

Peak extraction memory is therefore ``O(tile + output)`` instead of
``O(|x| * |z|)``, and on sparse-output products the scan approaches the cost
of one reduction pass over the matrix.  Tiny products keep the one-shot full
scan: the per-band Python overhead would dominate and the boolean temporary
is negligible.

Dense products used to pay for the screen with nothing to show for it (the
0.61x saturated-product regression).  Three mechanisms close that gap:

* **Adaptive bail-out** (the default when the band size is auto-chosen):
  the scan tracks the observed live-row fraction as bands complete; once it
  crosses :data:`ADAPTIVE_DENSITY_CUTOFF` — and the live rows are not mostly
  *saturated* (see below) — screening is abandoned and the remaining rows
  are scanned one-shot.  Worst-case overhead is therefore bounded by a small
  prefix of screened bands.  An explicit positive ``tile_rows`` pins the
  ``O(tile + output)`` memory contract and disables the bail-out (the
  one-shot remainder scan is unbounded); ``mode="adaptive"`` re-arms it.
* **Saturated-band rectangle emission**: a band whose every row clears the
  threshold is additionally screened with a ``min`` reduction; if every cell
  clears it the band's coordinates are the full rectangle.  Contiguous
  saturated bands are merged into one pending rectangle that is emitted
  arithmetically (``repeat``/``tile``) only when the run breaks — no boolean
  mask, no ``np.nonzero``, and on a fully saturated product no
  ``concatenate`` either — strictly faster than the one-shot scan.  This is
  why saturated bands *keep* screening alive instead of triggering bail-out.
* **Planner hints**: callers that already estimated the output density (the
  optimizer's ``estimated_output``) pass ``density_hint``; products predicted
  dense-but-not-saturated skip straight to the one-shot scan.

Wide products whose single row exceeds :data:`TILE_TARGET_BYTES` are tiled in
two dimensions: each row band is processed in column bands and re-sorted into
row-major order before it is emitted.

Every entry point accepts an optional ``stats`` dict that is filled with the
extraction accounting (``extract_mode``, tile counts, and the
``memory_*_bytes`` fields surfaced by ``explain()``).  When ``stats`` is
``None`` — the hot path in sharded fan-out — all bookkeeping, including the
``perf_counter`` calls, is short-circuited.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.errors import check_deadline
from repro.faults import SITE_EXTRACT_ALLOC, fault_site

# Products at most this many cells are scanned in one shot: the boolean
# temporary is tiny and per-band Python overhead would dominate.
FULL_SCAN_CELLS = 1 << 14

# Auto tile sizing targets roughly one row band of this many product bytes —
# large enough to amortise the per-band Python overhead, small enough that
# the band mask stays cache-friendly.
TILE_TARGET_BYTES = 1 << 20

# ``tile_rows`` sentinel forcing the untiled one-shot scan.
FULL_SCAN = 0

MODE_FULL = "full"
MODE_TILED = "tiled"
MODE_ADAPTIVE = "adaptive"
MODE_CORE = "core"

# Observed live-row fraction at which the adaptive scan abandons screening.
ADAPTIVE_DENSITY_CUTOFF = 0.5

# ...unless at least this fraction of the live rows is saturated: saturated
# rows are emitted arithmetically, which beats the one-shot scan, so
# screening is still paying for itself.
ADAPTIVE_SATURATED_KEEP = 0.5

# Planner density hints at/above this skip screening entirely — except
# essentially-saturated predictions (>= DENSITY_HINT_SATURATED), where the
# min-screen rectangle emission beats the one-shot scan.
DENSITY_HINT_FULL = 0.5
DENSITY_HINT_SATURATED = 0.98

_EMPTY_IDX = np.empty(0, dtype=np.int64)


def choose_tile_rows(
    n_rows: int,
    n_cols: int,
    itemsize: int = 4,
    target_bytes: int = TILE_TARGET_BYTES,
) -> int:
    """Rows per band so one band covers about ``target_bytes`` of product."""
    if n_rows <= 0 or n_cols <= 0:
        return 1
    rows = int(target_bytes // max(int(n_cols) * int(itemsize), 1))
    return max(1, min(rows, int(n_rows)))


def choose_tile_cols(
    n_cols: int,
    itemsize: int = 4,
    target_bytes: int = TILE_TARGET_BYTES,
) -> int:
    """Columns per band; ``n_cols`` (no column tiling) unless a single row
    already blows the byte budget, in which case row bands degenerate to one
    row and the scan tiles in two dimensions."""
    if n_cols <= 0:
        return 1
    if int(n_cols) * int(itemsize) <= target_bytes:
        return int(n_cols)
    return max(1, int(target_bytes // itemsize))


def extraction_plan(
    shape: Tuple[int, int],
    tile_rows: Optional[int] = None,
    itemsize: int = 4,
) -> Tuple[str, int]:
    """Resolve ``(mode, tile_rows)`` for a product of the given shape.

    ``tile_rows=None`` is the density-aware default: tiny products take the
    one-shot scan, everything else is tiled at :func:`choose_tile_rows`.
    An explicit positive value forces that band height; ``FULL_SCAN`` (0)
    forces the one-shot scan.  (The adaptive bail-out refines the tiled mode
    at scan time; see :func:`tiled_nonzero_coords`.)
    """
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if tile_rows is None:
        if n_rows * n_cols <= FULL_SCAN_CELLS:
            return MODE_FULL, 0
        return MODE_TILED, choose_tile_rows(n_rows, n_cols, itemsize=itemsize)
    tile_rows = int(tile_rows)
    if tile_rows <= FULL_SCAN:
        return MODE_FULL, 0
    return MODE_TILED, tile_rows


def _resolve_scan(
    shape: Tuple[int, int],
    tile_rows: Optional[int],
    itemsize: int,
    mode: Optional[str],
    density_hint: Optional[float],
) -> Tuple[str, int, bool]:
    """Resolve ``(scan_mode, band_rows, bail_enabled)``.

    ``scan_mode`` is :data:`MODE_FULL` (one-shot) or :data:`MODE_TILED`
    (screened); ``bail_enabled`` arms the adaptive bail-out on the screened
    path.  ``mode`` is the configured ``extract_mode`` (``None`` == "auto");
    ``MODE_CORE`` reaching this resolver means no mapping was available, so
    it degrades to the auto policy.
    """
    plan_mode, band_rows = extraction_plan(shape, tile_rows, itemsize)
    if mode == MODE_FULL:
        return MODE_FULL, 0, False
    if tile_rows is not None and int(tile_rows) <= FULL_SCAN:
        # An explicit FULL_SCAN tile override wins over the mode knob.
        return MODE_FULL, 0, False
    if mode == MODE_TILED:
        if band_rows <= 0:
            band_rows = choose_tile_rows(shape[0], shape[1], itemsize=itemsize)
        return MODE_TILED, band_rows, False
    if mode == MODE_ADAPTIVE:
        if band_rows <= 0:
            band_rows = choose_tile_rows(shape[0], shape[1], itemsize=itemsize)
        return MODE_TILED, band_rows, True
    # Auto (None / "auto" / fallback for MODE_CORE without a mapping).
    if plan_mode == MODE_FULL:
        return MODE_FULL, 0, False
    if density_hint is not None and DENSITY_HINT_FULL <= density_hint < DENSITY_HINT_SATURATED:
        # Predicted dense but not saturated: screening would bail almost
        # immediately anyway, so skip straight to the one-shot scan.
        return MODE_FULL, 0, False
    # An explicit positive ``tile_rows`` pins the O(tile + output) memory
    # contract, so the bail-out (whose one-shot remainder scan is unbounded)
    # only arms when the band size was auto-chosen.
    return MODE_TILED, band_rows, tile_rows is None


def _record(stats: Optional[Dict[str, object]], **fields: object) -> None:
    if stats is not None:
        stats.update(fields)


def _empty_coords(want_values: bool, dtype) -> Tuple[np.ndarray, ...]:
    if want_values:
        return _EMPTY_IDX, _EMPTY_IDX, np.empty(0, dtype=dtype)
    return _EMPTY_IDX, _EMPTY_IDX


def _band_rectangle(
    lo: int, hi: int, n_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major coordinates of the full ``[lo, hi) x n_cols`` rectangle."""
    r = np.repeat(np.arange(lo, hi, dtype=np.int64), n_cols)
    c = np.tile(np.arange(n_cols, dtype=np.int64), hi - lo)
    return r, c


def tiled_nonzero_coords(
    product: np.ndarray,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    want_values: bool = False,
    mode: Optional[str] = None,
    density_hint: Optional[float] = None,
):
    """Coordinates (and optionally values) of entries above ``threshold``.

    Returns ``(rows, cols)`` — or ``(rows, cols, values)`` when
    ``want_values`` is set — in the same row-major order ``np.nonzero``
    produces, so callers can swap the full scan for the tiled one without
    reordering anything.

    ``mode`` pins the scan strategy (``"full"`` / ``"tiled"`` /
    ``"adaptive"``; ``None`` or ``"auto"`` resolves it); ``density_hint`` is
    the planner's output-density estimate, used by the auto policy to skip
    screening on products predicted dense up front.
    """
    return _tiled_nonzero_coords(
        product, threshold, tile_rows, stats, want_values, mode,
        density_hint,
    )


def _tiled_nonzero_coords(
    product: np.ndarray,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    want_values: bool = False,
    mode: Optional[str] = None,
    density_hint: Optional[float] = None,
):
    record = stats is not None
    start = time.perf_counter() if record else 0.0
    arr = np.asarray(product)
    n_rows, n_cols = arr.shape
    scan_mode, band_rows, bail_enabled = _resolve_scan(
        (n_rows, n_cols), tile_rows, arr.itemsize, mode, density_hint
    )
    full_scan_bytes = int(n_rows) * int(n_cols)  # the one-shot boolean temp

    if n_rows == 0 or n_cols == 0:
        if record:
            _record(stats, extract_mode=scan_mode, extract_tile_rows=band_rows,
                    extract_tiles_total=0, extract_tiles_skipped=0,
                    extract_tiles_saturated=0,
                    memory_extract_peak_bytes=0, memory_full_scan_bytes=0,
                    extract_seconds=time.perf_counter() - start)
        return _empty_coords(want_values, arr.dtype)

    if scan_mode == MODE_FULL:
        # One-shot scan; the mask is computed once and reused for the values.
        fault_site(SITE_EXTRACT_ALLOC)
        mask = arr > threshold
        rows, cols = np.nonzero(mask)
        out = (rows, cols, arr[mask]) if want_values else (rows, cols)
        if record:
            _record(stats, extract_mode=MODE_FULL, extract_tile_rows=0,
                    extract_tiles_total=1, extract_tiles_skipped=0,
                    extract_tiles_saturated=0,
                    memory_extract_peak_bytes=int(mask.nbytes),
                    memory_full_scan_bytes=full_scan_bytes,
                    extract_seconds=time.perf_counter() - start)
        return out

    band_cols = choose_tile_cols(n_cols, arr.itemsize)
    row_parts: List[np.ndarray] = []
    col_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    tiles = 0
    skipped = 0
    saturated = 0
    peak = 0
    # Contiguous fully-saturated bands merge into one pending rectangle so a
    # saturated run is emitted as a single ``repeat``/``tile`` pair instead
    # of per-band chunks that the final concatenate would re-copy.
    pending_rect: Optional[Tuple[int, int]] = None

    def _flush_rect() -> None:
        nonlocal pending_rect, peak
        if pending_rect is None:
            return
        r_lo, r_hi = pending_rect
        r, c = _band_rectangle(r_lo, r_hi, n_cols)
        peak = max(peak, int(r.nbytes + c.nbytes))
        row_parts.append(r)
        col_parts.append(c)
        if want_values:
            value_parts.append(arr[r_lo:r_hi].reshape(-1))
        pending_rect = None

    # Adaptive bail-out state: rows screened so far, how many were live, and
    # how many of the live ones were saturated (arithmetic emission).
    rows_seen = 0
    live_seen = 0
    saturated_seen = 0
    bailed_at: Optional[int] = None
    band_index = 0
    for lo in range(0, n_rows, band_rows):
        # Cooperative cancellation point: one band is the unit of deadline
        # granularity (and of allocation-fault injection) for extraction.
        check_deadline("extract.band")
        fault_site(SITE_EXTRACT_ALLOC)
        if bail_enabled and rows_seen > 0:
            live_frac = live_seen / rows_seen
            sat_frac = saturated_seen / live_seen if live_seen else 0.0
            if live_frac >= ADAPTIVE_DENSITY_CUTOFF and sat_frac < ADAPTIVE_SATURATED_KEEP:
                # Screening is not skipping bands and the live rows are not
                # saturated rectangles either: rescan the whole product
                # one-shot, discarding the prefix parts.  Re-reading the few
                # screened bands is far cheaper than the extra full copy of
                # a dense output the final concatenate would cost.
                mask = arr > threshold
                r, c = np.nonzero(mask)
                peak = max(peak, int(mask.nbytes + r.nbytes + c.nbytes))
                row_parts = [r]
                col_parts = [c]
                if want_values:
                    value_parts = [arr[mask]]
                pending_rect = None
                tiles += 1
                bailed_at = band_index
                break
        band = arr[lo: lo + band_rows]
        hi = lo + band.shape[0]
        if band_cols >= n_cols:
            emitted = _scan_band(band, lo, hi, n_cols, threshold, want_values)
        else:
            emitted = _scan_band_2d(band, lo, hi, n_cols, band_cols,
                                    threshold, want_values)
        r, c, vals, n_live, n_sat, band_tiles, band_skipped, transient = emitted
        tiles += band_tiles
        skipped += band_skipped
        peak = max(peak, transient)
        rows_seen += band.shape[0]
        live_seen += n_live
        saturated_seen += n_sat
        if n_sat == band.shape[0] and n_sat > 0:
            # Fully saturated band: extend (or start) the rectangle run.
            saturated += 1
            if pending_rect is not None:
                pending_rect = (pending_rect[0], hi)
            else:
                pending_rect = (lo, hi)
        else:
            _flush_rect()
            if r is not None:
                row_parts.append(r)
                col_parts.append(c)
                if want_values:
                    value_parts.append(vals)
        band_index += 1
    _flush_rect()

    if len(row_parts) == 1:
        # Single chunk (one-shot bail, a lone band, or one merged saturated
        # rectangle): no concatenate copy.
        rows, cols = row_parts[0], col_parts[0]
        values = value_parts[0] if want_values else None
    elif row_parts:
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        values = np.concatenate(value_parts) if want_values else None
    else:
        rows, cols = _EMPTY_IDX, _EMPTY_IDX
        values = np.empty(0, dtype=arr.dtype) if want_values else None
    if record:
        _record(stats,
                extract_mode=MODE_ADAPTIVE if bailed_at is not None else MODE_TILED,
                extract_tile_rows=band_rows,
                extract_tiles_total=tiles, extract_tiles_skipped=skipped,
                extract_tiles_saturated=saturated,
                memory_extract_peak_bytes=peak,
                memory_full_scan_bytes=full_scan_bytes,
                extract_seconds=time.perf_counter() - start)
        if bailed_at is not None:
            stats["extract_bailed_at_band"] = bailed_at
    if want_values:
        return rows, cols, values
    return rows, cols


def _scan_band(band, lo, hi, n_cols, threshold, want_values):
    """Screen and extract one full-width row band.

    Returns ``(rows, cols, values, n_live, n_saturated, tiles, skipped,
    transient_bytes)`` with ``rows`` already offset to matrix coordinates.
    ``rows`` is ``None`` when the band is all-zero (skipped) or fully
    saturated (``n_saturated == len(band)``; the caller emits the rectangle).
    """
    # Density screen: one reduction pass, no boolean temporary.  Product
    # entries are non-negative counts, so a row whose maximum cannot
    # clear the threshold contributes nothing.
    row_max = band.max(axis=1)
    live = row_max > threshold
    transient = int(row_max.nbytes + live.nbytes)
    n_live = int(np.count_nonzero(live))
    if n_live == 0:
        return None, None, None, 0, 0, 1, 1, transient
    n_sat = 0
    if n_live == band.shape[0]:
        # Every row is live: check for saturation with one more reduction.
        # A fully saturated band needs no mask and no nonzero at all — its
        # coordinates are the rectangle; the caller merges contiguous
        # saturated bands and emits the run arithmetically.
        row_min = band.min(axis=1)
        transient += int(row_min.nbytes)
        n_sat = int(np.count_nonzero(row_min > threshold))
        if n_sat == band.shape[0]:
            return None, None, None, n_live, n_sat, 1, 0, transient
        sub = band
        live_rows = None
    else:
        sub = band[live]
        live_rows = np.flatnonzero(live)
        transient += int(sub.nbytes + live_rows.nbytes)
    mask = sub > threshold
    r, c = np.nonzero(mask)
    transient += int(mask.nbytes + r.nbytes + c.nbytes)
    rows = (r + lo) if live_rows is None else (live_rows[r] + lo)
    vals = sub[mask] if want_values else None
    return rows, c, vals, n_live, n_sat, 1, 0, transient


def _scan_band_2d(band, lo, hi, n_cols, band_cols, threshold, want_values):
    """Screen one row band in column tiles (wide products) and restore the
    band's row-major order before emitting."""
    r_parts: List[np.ndarray] = []
    c_parts: List[np.ndarray] = []
    v_parts: List[np.ndarray] = []
    tiles = 0
    skipped = 0
    peak = 0
    live_rows_any = np.zeros(band.shape[0], dtype=bool)
    for c0 in range(0, n_cols, band_cols):
        tile = band[:, c0: c0 + band_cols]
        tiles += 1
        row_max = tile.max(axis=1)
        live = row_max > threshold
        transient = int(row_max.nbytes + live.nbytes)
        n_live = int(np.count_nonzero(live))
        if n_live == 0:
            skipped += 1
            peak = max(peak, transient)
            continue
        live_rows_any |= live
        if n_live == tile.shape[0]:
            sub = tile
            live_rows = None
        else:
            sub = tile[live]
            live_rows = np.flatnonzero(live)
            transient += int(sub.nbytes + live_rows.nbytes)
        mask = sub > threshold
        r, c = np.nonzero(mask)
        transient += int(mask.nbytes + r.nbytes + c.nbytes)
        peak = max(peak, transient)
        r_parts.append(r if live_rows is None else live_rows[r])
        c_parts.append(c + c0)
        if want_values:
            v_parts.append(sub[mask])
    n_live_band = int(np.count_nonzero(live_rows_any))
    if not r_parts:
        return None, None, None, n_live_band, 0, tiles, skipped, peak
    r = np.concatenate(r_parts)
    c = np.concatenate(c_parts)
    # Column tiles emit column-major across the band; one lexsort restores
    # global row-major order (bands themselves are processed in order).
    order = np.lexsort((c, r))
    vals = np.concatenate(v_parts)[order] if want_values else None
    return r[order] + lo, c[order], vals, n_live_band, 0, tiles, skipped, peak


def tiled_nonzero_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    mode: Optional[str] = None,
    density_hint: Optional[float] = None,
) -> PairBlock:
    """Tiled equivalent of :func:`repro.matmul.dense.nonzero_block`."""
    rows, cols = tiled_nonzero_coords(
        product, threshold=threshold, tile_rows=tile_rows, stats=stats,
        mode=mode, density_hint=density_hint,
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    block = PairBlock((row_arr[rows], col_arr[cols]), deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block


def tiled_nonzero_counted_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    mode: Optional[str] = None,
    density_hint: Optional[float] = None,
) -> CountedPairBlock:
    """Tiled equivalent of :func:`repro.matmul.dense.nonzero_counted_block`."""
    rows, cols, values = tiled_nonzero_coords(
        product, threshold=threshold, tile_rows=tile_rows, stats=stats,
        want_values=True, mode=mode, density_hint=density_hint,
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    counts = np.rint(values).astype(np.int64)
    block = CountedPairBlock((row_arr[rows], col_arr[cols]), counts, deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block
