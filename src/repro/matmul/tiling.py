"""Density-aware tiled non-zero extraction from dense product matrices.

The paper's whole point is output-sensitive join-project evaluation, yet the
naive extraction step is not: ``np.nonzero(product > threshold)`` on the full
``|x| x |z|`` product materialises an ``O(|x| * |z|)`` boolean temporary even
when the output is tiny.  This module scans the product in contiguous row
bands instead (the density-optimised blocking idea of Huang & Chen's DIM3):

* each band is screened with one ``max`` reduction — a single read pass with
  no boolean temporary — and bands whose rows all fall below the threshold
  are skipped outright;
* within a surviving band only the rows that can contribute are masked, so
  the boolean temporary is bounded by the band (tile), not the matrix;
* coordinates are emitted tile-by-tile and concatenated once at the end.

Peak extraction memory is therefore ``O(tile + output)`` instead of
``O(|x| * |z|)``, and on sparse-output products the scan approaches the cost
of one reduction pass over the matrix.  Tiny products keep the one-shot full
scan: the per-band Python overhead would dominate and the boolean temporary
is negligible.

Every entry point accepts an optional ``stats`` dict that is filled with the
extraction accounting (``extract_mode``, tile counts, and the
``memory_*_bytes`` fields surfaced by ``explain()``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock

# Products at most this many cells are scanned in one shot: the boolean
# temporary is tiny and per-band Python overhead would dominate.
FULL_SCAN_CELLS = 1 << 14

# Auto tile sizing targets roughly one row band of this many product bytes —
# large enough to amortise the per-band Python overhead, small enough that
# the band mask stays cache-friendly.
TILE_TARGET_BYTES = 1 << 20

# ``tile_rows`` sentinel forcing the untiled one-shot scan.
FULL_SCAN = 0

MODE_FULL = "full"
MODE_TILED = "tiled"

_EMPTY_IDX = np.empty(0, dtype=np.int64)


def choose_tile_rows(
    n_rows: int,
    n_cols: int,
    itemsize: int = 4,
    target_bytes: int = TILE_TARGET_BYTES,
) -> int:
    """Rows per band so one band covers about ``target_bytes`` of product."""
    if n_rows <= 0 or n_cols <= 0:
        return 1
    rows = int(target_bytes // max(int(n_cols) * int(itemsize), 1))
    return max(1, min(rows, int(n_rows)))


def extraction_plan(
    shape: Tuple[int, int],
    tile_rows: Optional[int] = None,
    itemsize: int = 4,
) -> Tuple[str, int]:
    """Resolve ``(mode, tile_rows)`` for a product of the given shape.

    ``tile_rows=None`` is the density-aware default: tiny products take the
    one-shot scan, everything else is tiled at :func:`choose_tile_rows`.
    An explicit positive value forces that band height; ``FULL_SCAN`` (0)
    forces the one-shot scan.
    """
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if tile_rows is None:
        if n_rows * n_cols <= FULL_SCAN_CELLS:
            return MODE_FULL, 0
        return MODE_TILED, choose_tile_rows(n_rows, n_cols, itemsize=itemsize)
    tile_rows = int(tile_rows)
    if tile_rows <= FULL_SCAN:
        return MODE_FULL, 0
    return MODE_TILED, tile_rows


def _record(stats: Optional[Dict[str, object]], **fields: object) -> None:
    if stats is not None:
        stats.update(fields)


def _empty_coords(want_values: bool, dtype) -> Tuple[np.ndarray, ...]:
    if want_values:
        return _EMPTY_IDX, _EMPTY_IDX, np.empty(0, dtype=dtype)
    return _EMPTY_IDX, _EMPTY_IDX


def tiled_nonzero_coords(
    product: np.ndarray,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    want_values: bool = False,
):
    """Coordinates (and optionally values) of entries above ``threshold``.

    Returns ``(rows, cols)`` — or ``(rows, cols, values)`` when
    ``want_values`` is set — in the same row-major order ``np.nonzero``
    produces, so callers can swap the full scan for the tiled one without
    reordering anything.
    """
    start = time.perf_counter()
    arr = np.asarray(product)
    n_rows, n_cols = arr.shape
    mode, band_rows = extraction_plan((n_rows, n_cols), tile_rows, arr.itemsize)
    full_scan_bytes = int(n_rows) * int(n_cols)  # the one-shot boolean temp

    if n_rows == 0 or n_cols == 0:
        _record(stats, extract_mode=mode, extract_tile_rows=band_rows,
                extract_tiles_total=0, extract_tiles_skipped=0,
                memory_extract_peak_bytes=0, memory_full_scan_bytes=0,
                extract_seconds=time.perf_counter() - start)
        return _empty_coords(want_values, arr.dtype)

    if mode == MODE_FULL:
        # One-shot scan; the mask is computed once and reused for the values.
        mask = arr > threshold
        rows, cols = np.nonzero(mask)
        out = (rows, cols, arr[mask]) if want_values else (rows, cols)
        _record(stats, extract_mode=MODE_FULL, extract_tile_rows=0,
                extract_tiles_total=1, extract_tiles_skipped=0,
                memory_extract_peak_bytes=int(mask.nbytes),
                memory_full_scan_bytes=full_scan_bytes,
                extract_seconds=time.perf_counter() - start)
        return out

    row_parts: List[np.ndarray] = []
    col_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    tiles = 0
    skipped = 0
    peak = 0
    for lo in range(0, n_rows, band_rows):
        band = arr[lo: lo + band_rows]
        tiles += 1
        # Density screen: one reduction pass, no boolean temporary.  Product
        # entries are non-negative counts, so a row whose maximum cannot
        # clear the threshold contributes nothing.
        row_max = band.max(axis=1)
        live = row_max > threshold
        transient = int(row_max.nbytes + live.nbytes)
        n_live = int(np.count_nonzero(live))
        if n_live == 0:
            skipped += 1
            peak = max(peak, transient)
            continue
        if n_live == band.shape[0]:
            sub = band
            live_rows = None
        else:
            sub = band[live]
            live_rows = np.flatnonzero(live)
            transient += int(sub.nbytes + live_rows.nbytes)
        mask = sub > threshold
        r, c = np.nonzero(mask)
        transient += int(mask.nbytes + r.nbytes + c.nbytes)
        peak = max(peak, transient)
        row_parts.append((r + lo) if live_rows is None else (live_rows[r] + lo))
        col_parts.append(c)
        if want_values:
            value_parts.append(sub[mask])

    if row_parts:
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        values = np.concatenate(value_parts) if want_values else None
    else:
        rows, cols = _EMPTY_IDX, _EMPTY_IDX
        values = np.empty(0, dtype=arr.dtype) if want_values else None
    _record(stats, extract_mode=MODE_TILED, extract_tile_rows=band_rows,
            extract_tiles_total=tiles, extract_tiles_skipped=skipped,
            memory_extract_peak_bytes=peak,
            memory_full_scan_bytes=full_scan_bytes,
            extract_seconds=time.perf_counter() - start)
    if want_values:
        return rows, cols, values
    return rows, cols


def tiled_nonzero_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
) -> PairBlock:
    """Tiled equivalent of :func:`repro.matmul.dense.nonzero_block`."""
    rows, cols = tiled_nonzero_coords(
        product, threshold=threshold, tile_rows=tile_rows, stats=stats
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    block = PairBlock((row_arr[rows], col_arr[cols]), deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block


def tiled_nonzero_counted_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
) -> CountedPairBlock:
    """Tiled equivalent of :func:`repro.matmul.dense.nonzero_counted_block`."""
    rows, cols, values = tiled_nonzero_coords(
        product, threshold=threshold, tile_rows=tile_rows, stats=stats,
        want_values=True,
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    counts = np.rint(values).astype(np.int64)
    block = CountedPairBlock((row_arr[rows], col_arr[cols]), counts, deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block
