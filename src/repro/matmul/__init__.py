"""Matrix multiplication substrate: kernels and a calibrated cost model."""

from repro.matmul.dense import (
    FLOAT32_EXACT_LIMIT,
    accumulation_dtype,
    boolean_matmul,
    count_matmul,
    build_adjacency,
    nonzero_block,
    nonzero_counted_block,
    nonzero_pairs,
)
from repro.matmul.sparse import sparse_count_matmul, sparse_boolean_matmul, build_sparse_adjacency
from repro.matmul.blocked import blocked_matmul, rectangular_cost
from repro.matmul.strassen import strassen_matmul
from repro.matmul.cost_model import MatMulCostModel, theoretical_cost
from repro.matmul.tiling import (
    choose_tile_rows,
    extraction_plan,
    tiled_nonzero_block,
    tiled_nonzero_counted_block,
    tiled_nonzero_coords,
)
from repro.matmul.registry import (
    BackendRegistry,
    MatMulBackend,
    default_registry,
    make_default_registry,
)

__all__ = [
    "FLOAT32_EXACT_LIMIT",
    "accumulation_dtype",
    "boolean_matmul",
    "count_matmul",
    "build_adjacency",
    "nonzero_block",
    "nonzero_counted_block",
    "nonzero_pairs",
    "sparse_count_matmul",
    "sparse_boolean_matmul",
    "build_sparse_adjacency",
    "blocked_matmul",
    "rectangular_cost",
    "strassen_matmul",
    "MatMulCostModel",
    "theoretical_cost",
    "choose_tile_rows",
    "extraction_plan",
    "tiled_nonzero_block",
    "tiled_nonzero_counted_block",
    "tiled_nonzero_coords",
    "BackendRegistry",
    "MatMulBackend",
    "default_registry",
    "make_default_registry",
]
