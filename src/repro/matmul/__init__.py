"""Matrix multiplication substrate: kernels and a calibrated cost model."""

from repro.matmul.dense import (
    boolean_matmul,
    count_matmul,
    build_adjacency,
    nonzero_pairs,
)
from repro.matmul.sparse import sparse_count_matmul, sparse_boolean_matmul, build_sparse_adjacency
from repro.matmul.blocked import blocked_matmul, rectangular_cost
from repro.matmul.strassen import strassen_matmul
from repro.matmul.cost_model import MatMulCostModel, theoretical_cost

__all__ = [
    "boolean_matmul",
    "count_matmul",
    "build_adjacency",
    "nonzero_pairs",
    "sparse_count_matmul",
    "sparse_boolean_matmul",
    "build_sparse_adjacency",
    "blocked_matmul",
    "rectangular_cost",
    "strassen_matmul",
    "MatMulCostModel",
    "theoretical_cost",
]
