"""Pluggable matrix-multiplication backend registry.

The MMJoin pipeline used to hardcode ``if backend == "sparse": ... else ...``
branches at every call site.  This module replaces those branches with a
uniform :class:`MatMulBackend` interface wrapping each kernel family
(dense/BLAS, sparse/CSR, blocked, Strassen) and a :class:`BackendRegistry`
that resolves a configured backend name — or, for ``"auto"``, picks the
cheapest *auto-eligible* backend by comparing per-backend cost estimates
derived from :class:`~repro.matmul.cost_model.MatMulCostModel`.

Every backend answers the two questions the physical operators ask:

* ``heavy_pairs`` / ``heavy_counts`` — evaluate the heavy residual of the
  two-path query (build adjacency matrices restricted to the heavy values,
  multiply, read the output pairs off the non-zero entries);
* ``multiply_dense`` — multiply two already-built dense operands (used by the
  star query's grouped matrices and by anything else that owns its layout).

New backends register with :meth:`BackendRegistry.register`; the planner and
the config validation both consult :func:`default_registry`.
"""

from __future__ import annotations

import abc
import inspect
import time
from typing import Dict, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.core.config import MMJoinConfig
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation
from repro.matmul import dense as dense_mm
from repro.matmul import mapping as mapping_mm
from repro.matmul import sparse as sparse_mm
from repro.matmul import tiling
from repro.matmul.blocked import blocked_matmul
from repro.matmul.cost_model import MatMulCostModel
from repro.matmul.strassen import strassen_matmul

Pair = Tuple[int, int]
Dims = Tuple[int, int, int]


class MatMulBackend(abc.ABC):
    """One matrix-multiplication kernel family usable by the heavy operator.

    ``auto_eligible`` marks backends the registry may pick on its own when
    the configuration says ``"auto"``; specialised kernels (blocked,
    Strassen) must be requested explicitly because their Python-level
    recursion is never the fastest practical choice.
    """

    name: str = "abstract"
    auto_eligible: bool = True

    @abc.abstractmethod
    def multiply_dense(self, left: np.ndarray, right: np.ndarray, cores: int = 1) -> np.ndarray:
        """Multiply two dense operands, returning a dense count matrix."""

    @abc.abstractmethod
    def estimate_cost(
        self,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
        cost_model: MatMulCostModel,
        config: MMJoinConfig,
    ) -> float:
        """Estimated seconds for the heavy product (``inf`` = ineligible)."""

    # -- heavy-residual template hooks (overridden by layout-specific
    # backends such as sparse/CSR) --------------------------------------
    def build_operands(
        self,
        left_heavy: Relation,
        right_heavy: Relation,
        rows: Sequence[int],
        mids: Sequence[int],
        cols: Sequence[int],
    ):
        """Build the two operand matrices in this backend's native layout."""
        m1 = dense_mm.build_adjacency(left_heavy, rows, mids)
        m2 = dense_mm.build_adjacency(right_heavy, cols, mids).T
        return m1, m2

    def multiply(self, m1, m2, cores: int = 1):
        """Multiply operands produced by :meth:`build_operands`."""
        return self.multiply_dense(m1, m2, cores=cores)

    def extract_pairs(self, product, rows, cols, threshold: float,
                      tile_rows=None, stats=None, mode=None, mapping=None,
                      density_hint=None) -> PairBlock:
        """Output pairs from a product as a columnar :class:`PairBlock`.

        Dense products go through the density-aware tiled scan
        (:mod:`repro.matmul.tiling`): all-zero row bands are skipped, the
        adaptive bail-out bounds screening overhead on dense products, and
        peak extraction memory stays ``O(tile + output)``.  ``tile_rows``
        overrides the band height (``None`` = auto, ``0`` = one-shot scan);
        ``mode`` pins the scan strategy, ``mapping`` carries a DIM3
        dense-core permutation (used when ``mode == "core"``),
        ``density_hint`` is the planner's output-density estimate, and
        ``stats`` collects the extraction accounting for ``explain()``.
        """
        if mapping is not None and mode == tiling.MODE_CORE:
            return mapping_mm.mapped_nonzero_block(
                product, rows, cols, mapping, threshold=threshold,
                tile_rows=tile_rows, stats=stats,
            )
        return tiling.tiled_nonzero_block(
            product, rows, cols, threshold=threshold, tile_rows=tile_rows,
            stats=stats, mode=mode, density_hint=density_hint,
        )

    def extract_counts(self, product, rows, cols, threshold: float,
                       tile_rows=None, stats=None, mode=None, mapping=None,
                       density_hint=None) -> CountedPairBlock:
        """Witness counts from a product as a :class:`CountedPairBlock`."""
        if mapping is not None and mode == tiling.MODE_CORE:
            return mapping_mm.mapped_nonzero_counted_block(
                product, rows, cols, mapping, threshold=threshold,
                tile_rows=tile_rows, stats=stats,
            )
        return tiling.tiled_nonzero_counted_block(
            product, rows, cols, threshold=threshold, tile_rows=tile_rows,
            stats=stats, mode=mode, density_hint=density_hint,
        )

    # -- heavy-residual evaluation (shared timed template) ----------------
    def heavy_pairs(
        self,
        left_heavy: Relation,
        right_heavy: Relation,
        rows: Sequence[int],
        mids: Sequence[int],
        cols: Sequence[int],
        threshold: float = 0.5,
        cores: int = 1,
        operands=None,
        tile_rows=None,
        extract_stats=None,
        extract_mode=None,
        mapping=None,
        density_hint=None,
    ) -> Tuple[PairBlock, float, float]:
        """Output-pair block of the heavy residual plus (build, multiply) seconds.

        ``operands`` may carry a prebuilt ``(m1, m2)`` pair in this backend's
        native layout (e.g. out of a session's operand cache); construction
        is then skipped and the reported build time is zero.  ``tile_rows``,
        ``extract_stats``, ``extract_mode``, ``mapping`` and ``density_hint``
        flow into :meth:`extract_pairs`.
        """
        return self._heavy(left_heavy, right_heavy, rows, mids, cols, threshold,
                           cores, self.extract_pairs, operands, tile_rows,
                           extract_stats, extract_mode, mapping, density_hint)

    def heavy_counts(
        self,
        left_heavy: Relation,
        right_heavy: Relation,
        rows: Sequence[int],
        mids: Sequence[int],
        cols: Sequence[int],
        threshold: float = 0.5,
        cores: int = 1,
        operands=None,
        tile_rows=None,
        extract_stats=None,
        extract_mode=None,
        mapping=None,
        density_hint=None,
    ) -> Tuple[CountedPairBlock, float, float]:
        """Witness-count block of the heavy residual plus (build, multiply) seconds."""
        return self._heavy(left_heavy, right_heavy, rows, mids, cols, threshold,
                           cores, self.extract_counts, operands, tile_rows,
                           extract_stats, extract_mode, mapping, density_hint)

    def _heavy(self, left_heavy, right_heavy, rows, mids, cols, threshold, cores,
               extract, operands=None, tile_rows=None, extract_stats=None,
               extract_mode=None, mapping=None, density_hint=None):
        if operands is None:
            build_start = time.perf_counter()
            m1, m2 = self.build_operands(left_heavy, right_heavy, rows, mids, cols)
            build_seconds = time.perf_counter() - build_start
        else:
            m1, m2 = operands
            build_seconds = 0.0
        multiply_start = time.perf_counter()
        product = self.multiply(m1, m2, cores=cores)
        # Runtime-registered backends may override the extraction hooks with
        # an older signature (the pre-tiling 4-argument form, or the
        # pre-adaptive tile_rows/stats form); only forward the keywords each
        # override can actually accept.
        params = inspect.signature(extract).parameters
        has_var_kw = any(
            p.kind == inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        kwargs = {}
        for name, value in (("tile_rows", tile_rows), ("stats", extract_stats),
                            ("mode", extract_mode), ("mapping", mapping),
                            ("density_hint", density_hint)):
            if has_var_kw or name in params:
                kwargs[name] = value
        if kwargs:
            result = extract(product, rows, cols, threshold, **kwargs)
        else:
            result = extract(product, rows, cols, threshold)
        return result, build_seconds, time.perf_counter() - multiply_start


class DenseBackend(MatMulBackend):
    """numpy/BLAS SGEMM — the paper's primary kernel."""

    name = "dense"

    def multiply_dense(self, left: np.ndarray, right: np.ndarray, cores: int = 1) -> np.ndarray:
        if cores > 1:
            from repro.parallel.executor import parallel_matmul

            return parallel_matmul(left, right, cores=cores)
        return dense_mm.count_matmul(left, right)

    def estimate_cost(
        self,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
        cost_model: MatMulCostModel,
        config: MMJoinConfig,
    ) -> float:
        u, v, w = dims
        if max(dims) > config.max_heavy_dimension:
            return float("inf")
        return (
            cost_model.estimate(u, v, w, cores=config.cores)
            + cost_model.estimate_construction(u, v, w, cores=config.cores)
            + cost_model.estimate_extraction(
                u, w, cores=config.cores, tile_rows=config.extract_tile_rows,
                mode=config.extract_mode,
            )
        )


class SparseBackend(MatMulBackend):
    """scipy CSR x CSR — wins when the heavy sub-matrices are very sparse."""

    name = "sparse"
    # Per-nonzero Python/scipy overheads; an order of magnitude above the
    # dense per-cell constants because construction walks Python dicts.
    build_seconds_per_nnz = 2.5e-7
    seconds_per_expansion = 2.5e-8

    def multiply_dense(self, left: np.ndarray, right: np.ndarray, cores: int = 1) -> np.ndarray:
        from scipy import sparse

        # Same overflow guard as the dense kernel: counts are bounded by the
        # inner dimension, so widen past float32's exact-integer range.
        a = np.asarray(left)
        dtype = dense_mm.accumulation_dtype(a.shape[1] if a.ndim == 2 else 0)
        product = sparse_mm.sparse_count_matmul(
            sparse.csr_matrix(a.astype(dtype, copy=False)),
            sparse.csr_matrix(np.asarray(right).astype(dtype, copy=False)),
        )
        return np.asarray(product.todense())

    def build_operands(self, left_heavy, right_heavy, rows, mids, cols):
        # Witness counts are bounded by the inner (mids) dimension; keep the
        # CSR accumulation exact past float32's 2^24 integer range.
        dtype = dense_mm.accumulation_dtype(len(mids))
        m1 = sparse_mm.build_sparse_adjacency(left_heavy, rows, mids, dtype=dtype)
        m2 = sparse_mm.build_sparse_adjacency(right_heavy, cols, mids, dtype=dtype).T
        return m1, m2

    def multiply(self, m1, m2, cores: int = 1):
        return sparse_mm.sparse_count_matmul(m1, m2)

    def extract_pairs(self, product, rows, cols, threshold: float,
                      tile_rows=None, stats=None, mode=None, mapping=None,
                      density_hint=None) -> PairBlock:
        # A CSR product's COO scan is already output-proportional, so the
        # dense tiling/adaptive/core knobs do not apply; only the accounting
        # is recorded.
        return sparse_mm.sparse_nonzero_block(
            product, rows, cols, threshold=threshold, stats=stats
        )

    def extract_counts(self, product, rows, cols, threshold: float,
                       tile_rows=None, stats=None, mode=None, mapping=None,
                       density_hint=None) -> CountedPairBlock:
        return sparse_mm.sparse_nonzero_counted_block(
            product, rows, cols, threshold=threshold, stats=stats
        )

    def estimate_cost(
        self,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
        cost_model: MatMulCostModel,
        config: MMJoinConfig,
    ) -> float:
        _, v, _ = dims
        build = (nnz_left + nnz_right) * self.build_seconds_per_nnz
        expansions = float(nnz_left) * float(nnz_right) / max(float(v), 1.0)
        multiply = expansions * self.seconds_per_expansion
        return (build + multiply) / cost_model.speedup(config.cores)


class BlockedBackend(MatMulBackend):
    """Lemma 1 block decomposition; explicit-request only."""

    name = "blocked"
    auto_eligible = False
    python_overhead = 8.0

    def multiply_dense(self, left: np.ndarray, right: np.ndarray, cores: int = 1) -> np.ndarray:
        return blocked_matmul(left, right)

    def estimate_cost(
        self,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
        cost_model: MatMulCostModel,
        config: MMJoinConfig,
    ) -> float:
        u, v, w = dims
        if max(dims) > config.max_heavy_dimension:
            return float("inf")
        return self.python_overhead * cost_model.estimate(
            u, v, w, cores=config.cores
        ) + cost_model.estimate_extraction(
            u, w, cores=config.cores, tile_rows=config.extract_tile_rows,
            mode=config.extract_mode,
        )


class StrassenBackend(MatMulBackend):
    """Strassen recursion (omega = log2 7); explicit-request only."""

    name = "strassen"
    auto_eligible = False
    python_overhead = 16.0

    def multiply_dense(self, left: np.ndarray, right: np.ndarray, cores: int = 1) -> np.ndarray:
        return strassen_matmul(left, right)

    def estimate_cost(
        self,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
        cost_model: MatMulCostModel,
        config: MMJoinConfig,
    ) -> float:
        u, v, w = dims
        if max(dims) > config.max_heavy_dimension:
            return float("inf")
        return self.python_overhead * cost_model.estimate(
            u, v, w, cores=config.cores
        ) + cost_model.estimate_extraction(
            u, w, cores=config.cores, tile_rows=config.extract_tile_rows,
            mode=config.extract_mode,
        )


class BackendRegistry:
    """Name -> :class:`MatMulBackend` mapping with cost-based auto selection."""

    def __init__(self, cost_model: MatMulCostModel | None = None) -> None:
        self._backends: Dict[str, MatMulBackend] = {}
        self.cost_model = cost_model or MatMulCostModel()

    # -- registration ------------------------------------------------------
    def register(self, backend: MatMulBackend, replace: bool = False) -> None:
        """Add a backend; refuses to shadow an existing name unless asked."""
        if backend.name in self._backends and not replace:
            raise ValueError(f"backend {backend.name!r} is already registered")
        self._backends[backend.name] = backend

    def get(self, name: str) -> MatMulBackend:
        """Look a backend up by name."""
        try:
            return self._backends[name]
        except KeyError as exc:
            raise ValueError(
                f"unknown matmul backend {name!r}; choose one of {self.names()}"
            ) from exc

    def names(self) -> List[str]:
        """Registered backend names, sorted."""
        return sorted(self._backends)

    def __iter__(self) -> Iterator[MatMulBackend]:
        return iter(self._backends.values())

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    # -- selection ---------------------------------------------------------
    def select(
        self,
        config: MMJoinConfig,
        dims: Dims,
        nnz_left: int,
        nnz_right: int,
    ) -> MatMulBackend:
        """Resolve the configured backend, scoring candidates for ``auto``.

        An explicit ``config.matrix_backend`` name wins outright.  For
        ``auto``, every auto-eligible backend estimates the wall-clock cost
        of this particular product and the cheapest finite estimate wins;
        backends return ``inf`` to rule themselves out (e.g. dense matrices
        exceeding ``max_heavy_dimension``).
        """
        if config.matrix_backend != "auto":
            return self.get(config.matrix_backend)
        best: MatMulBackend | None = None
        best_cost = float("inf")
        for backend in self._backends.values():
            if not backend.auto_eligible:
                continue
            cost = backend.estimate_cost(dims, nnz_left, nnz_right, self.cost_model, config)
            if cost < best_cost:
                best, best_cost = backend, cost
        if best is None:
            # Everything ruled itself out; sparse is the memory-safe fallback.
            return self.get("sparse") if "sparse" in self else next(iter(self))
        return best


def make_default_registry(cost_model: MatMulCostModel | None = None) -> BackendRegistry:
    """A fresh registry holding the four built-in kernel families."""
    registry = BackendRegistry(cost_model=cost_model)
    registry.register(DenseBackend())
    registry.register(SparseBackend())
    registry.register(BlockedBackend())
    registry.register(StrassenBackend())
    return registry


_DEFAULT_REGISTRY: BackendRegistry | None = None


def default_registry() -> BackendRegistry:
    """The process-wide registry the planner uses unless given another."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = make_default_registry()
    return _DEFAULT_REGISTRY
