"""Blocked rectangular matrix multiplication (Lemma 1 of the paper).

Lemma 1: if two ``n x n`` matrices can be multiplied in ``O(n^omega)`` time,
then a ``U x V`` by ``V x W`` product costs
``M(U, V, W) = O(U * V * W * beta^(omega - 3))`` where ``beta = min(U, V, W)``
— split both operands into ``beta x beta`` blocks and multiply blockwise.

:func:`blocked_matmul` implements exactly that decomposition; each block
product is delegated to a square kernel (numpy by default, or Strassen).
:func:`rectangular_cost` evaluates the Lemma 1 cost formula symbolically,
which the theory module and the optimizer both use.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

SquareKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def rectangular_cost(u: float, v: float, w: float, omega: float = 3.0) -> float:
    """Lemma 1 cost ``M(U, V, W) = U*V*W * beta^(omega - 3)``, beta = min(U,V,W).

    With ``omega = 3`` this is the classical ``U*V*W``; with ``omega = 2`` it
    becomes ``U*V*W / beta``.
    """
    if u <= 0 or v <= 0 or w <= 0:
        return 0.0
    beta = min(u, v, w)
    return float(u * v * w * (beta ** (omega - 3.0)))


def _pad_to_multiple(matrix: np.ndarray, block: int) -> np.ndarray:
    """Zero-pad both dimensions of a matrix up to a multiple of ``block``."""
    rows, cols = matrix.shape
    pad_rows = (-rows) % block
    pad_cols = (-cols) % block
    if pad_rows == 0 and pad_cols == 0:
        return matrix
    return np.pad(matrix, ((0, pad_rows), (0, pad_cols)))


def blocked_matmul(
    left: np.ndarray,
    right: np.ndarray,
    block_size: Optional[int] = None,
    kernel: Optional[SquareKernel] = None,
) -> np.ndarray:
    """Multiply rectangular matrices by decomposition into square blocks.

    Parameters
    ----------
    block_size:
        Side of the square blocks; defaults to ``min(U, V, W)`` as in the
        lemma (capped at 256 to bound padding overhead for very skewed
        shapes).
    kernel:
        Square block multiplier; defaults to the numpy kernel.  Passing
        :func:`repro.matmul.strassen.strassen_matmul` reproduces the
        "fast matrix multiplication" variant.
    """
    a = np.asarray(left, dtype=np.float32)
    b = np.asarray(right, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("blocked_matmul expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    u, v = a.shape
    _, w = b.shape
    if u == 0 or v == 0 or w == 0:
        return np.zeros((u, w), dtype=np.float32)
    if block_size is None:
        block_size = max(min(u, v, w), 1)
        block_size = min(block_size, 256)
    block = max(int(block_size), 1)
    multiply = kernel or (lambda x, y: x @ y)

    a_pad = _pad_to_multiple(a, block)
    b_pad = _pad_to_multiple(b, block)
    out = np.zeros((a_pad.shape[0], b_pad.shape[1]), dtype=np.float32)
    n_row_blocks = a_pad.shape[0] // block
    n_inner_blocks = a_pad.shape[1] // block
    n_col_blocks = b_pad.shape[1] // block
    for i in range(n_row_blocks):
        row_lo, row_hi = i * block, (i + 1) * block
        for j in range(n_col_blocks):
            col_lo, col_hi = j * block, (j + 1) * block
            acc = np.zeros((block, block), dtype=np.float32)
            for k in range(n_inner_blocks):
                inner_lo, inner_hi = k * block, (k + 1) * block
                acc += multiply(
                    a_pad[row_lo:row_hi, inner_lo:inner_hi],
                    b_pad[inner_lo:inner_hi, col_lo:col_hi],
                )
            out[row_lo:row_hi, col_lo:col_hi] = acc
    return out[:u, :w]


def block_count(u: int, v: int, w: int, block: int) -> int:
    """Number of square block products Lemma 1's decomposition performs."""
    if min(u, v, w) <= 0 or block <= 0:
        return 0
    return (
        math.ceil(u / block) * math.ceil(v / block) * math.ceil(w / block)
    )
