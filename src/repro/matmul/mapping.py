"""Density-optimized dense-core mapping of product domains (DIM3).

Huang & Chen's *Density-optimized Intersection-free Mapping* observes that
the non-zeros of a join product are not uniformly spread: rows and columns
with high witness degree are far more likely to intersect.  Sorting the
``x`` (row) and ``z`` (column) domains by descending heavy-witness degree
clusters those hot values into a compact **top-left dense core**, which is
then extracted one-shot — or, when saturated, emitted arithmetically with no
scan at all — while the sparse remainder keeps the screened/tiled path of
:mod:`repro.matmul.tiling`.

The core geometry follows from an independent-witness model: a row of degree
``d_r`` and a column of degree ``d_c`` over ``v`` shared witnesses intersect
with probability about ``1 - exp(-d_r * d_c / v)``.  Solving for the degree
at which that reaches :data:`CORE_DENSITY_TARGET` gives a single cutoff
``d* = sqrt(-v * ln(1 - target))``; the core is every row/column at or above
``d*``, so its *least* dense cell still meets the target.  (When
``d_r + d_c > v`` the intersection is guaranteed by pigeonhole — such
rows/columns always land in the core.)

The mapping depends only on the heavy relations' degree sequences, so the
serving layer caches it as a session artifact keyed by relation version:
warm queries never recompute the permutation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation
from repro.matmul.tiling import MODE_CORE, _record, choose_tile_rows

# Estimated density the least-dense core cell must reach for membership.
CORE_DENSITY_TARGET = 0.5

_EMPTY_IDX = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class DenseCoreMapping:
    """A degree-sorted permutation of the product's row/column domains.

    ``row_order`` / ``col_order`` permute row and column *positions* into
    descending heavy-degree order; the first ``core_rows`` x ``core_cols``
    block of the permuted product is the dense core.  ``core_density`` is
    the modelled density of the core's boundary cell (a lower bound for the
    whole core).
    """

    row_order: np.ndarray
    col_order: np.ndarray
    core_rows: int
    core_cols: int
    core_density: float

    @property
    def core_shape(self) -> Tuple[int, int]:
        return (int(self.core_rows), int(self.core_cols))

    @property
    def nbytes(self) -> int:
        return int(self.row_order.nbytes + self.col_order.nbytes)


def core_degree_cutoff(inner_dim: int, target: float = CORE_DENSITY_TARGET) -> float:
    """Degree ``d*`` at which ``1 - exp(-d*^2 / v)`` reaches ``target``."""
    v = max(float(inner_dim), 1.0)
    return math.sqrt(-v * math.log(max(1.0 - float(target), 1e-12)))


def mapping_from_degrees(
    row_degrees: Sequence[int],
    col_degrees: Sequence[int],
    inner_dim: int,
    target: float = CORE_DENSITY_TARGET,
) -> DenseCoreMapping:
    """Build the mapping from per-position heavy-witness degrees."""
    row_deg = np.asarray(row_degrees, dtype=np.float64).reshape(-1)
    col_deg = np.asarray(col_degrees, dtype=np.float64).reshape(-1)
    row_order = np.argsort(-row_deg, kind="stable").astype(np.int64)
    col_order = np.argsort(-col_deg, kind="stable").astype(np.int64)
    cutoff = core_degree_cutoff(inner_dim, target)
    core_rows = int(np.count_nonzero(row_deg >= cutoff))
    core_cols = int(np.count_nonzero(col_deg >= cutoff))
    if core_rows == 0 or core_cols == 0:
        return DenseCoreMapping(row_order, col_order, 0, 0, 0.0)
    v = max(float(inner_dim), 1.0)
    # Density of the boundary cell: the least-degree row meets the
    # least-degree column still inside the core.
    d_r = float(row_deg[row_order[core_rows - 1]])
    d_c = float(col_deg[col_order[core_cols - 1]])
    density = 1.0 - math.exp(-(d_r * d_c) / v)
    return DenseCoreMapping(row_order, col_order, core_rows, core_cols,
                            min(density, 1.0))


def heavy_core_mapping(
    left_heavy: Relation,
    right_heavy: Relation,
    rows: Sequence[int],
    cols: Sequence[int],
    inner_dim: int,
    target: float = CORE_DENSITY_TARGET,
) -> DenseCoreMapping:
    """Mapping for the heavy residual's ``rows x cols`` product.

    Row degrees come from the left heavy relation's ``x`` degree index
    (witnesses per head value), column degrees from the right one — the same
    ``DegreeIndex``-backed statistics the optimizer's threshold search uses.
    """
    left_deg = left_heavy.degrees_x()
    right_deg = right_heavy.degrees_x()
    row_degrees = [left_deg.get(int(x), 0) for x in rows]
    col_degrees = [right_deg.get(int(z), 0) for z in cols]
    return mapping_from_degrees(row_degrees, col_degrees, inner_dim, target)


def mapped_nonzero_coords(
    product: np.ndarray,
    mapping: DenseCoreMapping,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    want_values: bool = False,
):
    """Coordinates (and optionally values) above ``threshold``, via the core.

    The dense core is gathered and scanned one-shot (or emitted
    arithmetically when saturated); the remainder — everything outside the
    core rectangle — is scanned in *contiguous* screened row bands of the
    original matrix, with the already-emitted core cells cleared from each
    band's mask.  Contiguous bands are views, so the remainder pass pays no
    gather copies at all (the earlier slab decomposition gathered every
    band through fancy row/column indexing, which dominated its runtime).
    Unlike :func:`repro.matmul.tiling.tiled_nonzero_coords` the coordinates
    come back in core-first order, not row-major: every consumer feeds them
    into born-deduplicated blocks, where order is irrelevant.
    """
    return _mapped_nonzero_coords(
        product, mapping, threshold, tile_rows, stats, want_values
    )


def _mapped_nonzero_coords(
    product: np.ndarray,
    mapping: DenseCoreMapping,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
    want_values: bool = False,
):
    record = stats is not None
    start = time.perf_counter() if record else 0.0
    arr = np.asarray(product)
    n_rows, n_cols = arr.shape
    if mapping.row_order.size != n_rows or mapping.col_order.size != n_cols:
        raise ValueError(
            f"mapping covers {mapping.row_order.size}x{mapping.col_order.size} "
            f"but the product is {n_rows}x{n_cols}"
        )
    counters = {"tiles": 0, "skipped": 0, "saturated": 0, "peak": 0}
    row_parts: List[np.ndarray] = []
    col_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []

    cr, cc = mapping.core_rows, mapping.core_cols
    # The order prefixes define core *membership*; within each subset the
    # scan order is free (consumers accept unordered coordinates), so sort
    # ascending to keep the gathers memory-sequential.
    core_r = np.sort(mapping.row_order[:cr])
    core_c = np.sort(mapping.col_order[:cc])
    if cr > 0 and cc > 0 and n_rows > 0 and n_cols > 0:
        sub = arr[core_r[:, None], core_c]
        counters["tiles"] += 1
        transient = int(sub.nbytes)
        if float(sub.min()) > threshold:
            # Saturated core: its coordinates are the full rectangle over the
            # selected rows/columns — no mask, no nonzero.
            counters["saturated"] += 1
            r = np.repeat(core_r, cc)
            c = np.tile(core_c, cr)
            vals = sub.reshape(-1) if want_values else None
        else:
            mask = sub > threshold
            rl, cl = np.nonzero(mask)
            transient += int(mask.nbytes + rl.nbytes + cl.nbytes)
            r = core_r[rl]
            c = core_c[cl]
            vals = sub[mask] if want_values else None
        counters["peak"] = max(counters["peak"], transient)
        row_parts.append(r)
        col_parts.append(c)
        if want_values:
            value_parts.append(vals)

    band_hint = int(tile_rows) if tile_rows is not None and int(tile_rows) > 0 else None
    if cr < n_rows or cc < n_cols:
        _remainder_scan(arr, core_r, core_c, threshold, want_values,
                        row_parts, col_parts, value_parts, counters, band_hint)

    if row_parts:
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        values = np.concatenate(value_parts) if want_values else None
    else:
        rows, cols = _EMPTY_IDX, _EMPTY_IDX
        values = np.empty(0, dtype=arr.dtype) if want_values else None
    if record:
        _record(stats, extract_mode=MODE_CORE,
                extract_tile_rows=choose_tile_rows(n_rows, n_cols, arr.itemsize),
                extract_tiles_total=counters["tiles"],
                extract_tiles_skipped=counters["skipped"],
                extract_tiles_saturated=counters["saturated"],
                dense_core_shape=mapping.core_shape,
                dense_core_density=float(mapping.core_density),
                memory_extract_peak_bytes=counters["peak"],
                memory_full_scan_bytes=int(n_rows) * int(n_cols),
                extract_seconds=time.perf_counter() - start)
    if want_values:
        return rows, cols, values
    return rows, cols


def _remainder_scan(arr, core_r, core_c, threshold, want_values,
                    row_parts, col_parts, value_parts, counters,
                    band_hint: Optional[int] = None) -> None:
    """Screened band scan over everything outside the core rectangle.

    Bands are *contiguous* row slices of the original matrix — views, never
    gathers — screened with the usual ``max`` reduction; inside a surviving
    band only the live rows are masked and the core cells (already emitted)
    are cleared from the mask before ``np.nonzero``.  The transient
    footprint stays in the ``O(tile + output)`` envelope of the contiguous
    tiled scan: one band mask (plus a live-row copy when the screen
    filtered anything) at a time.
    """
    n_rows, n_cols = arr.shape
    if n_rows == 0 or n_cols == 0:
        return
    is_core_row = np.zeros(n_rows, dtype=bool)
    is_core_row[core_r] = True
    band_rows = band_hint or choose_tile_rows(n_rows, n_cols, arr.itemsize)
    for lo in range(0, n_rows, band_rows):
        band = arr[lo: lo + band_rows]
        counters["tiles"] += 1
        row_max = band.max(axis=1)
        if not np.any(row_max > threshold):
            counters["skipped"] += 1
            counters["peak"] = max(counters["peak"],
                                   int(row_max.nbytes))
            continue
        # Mask the whole band (a view — no live-row copy: comparing the
        # extra cold rows is cheaper than gathering the live ones), clear
        # the already-emitted core cells, then locate hits through
        # ``flatnonzero`` + one divmod — per-hit coordinate cost instead of
        # ``np.nonzero``'s far slower 2-D materialisation.
        mask = band > threshold
        band_core = np.flatnonzero(is_core_row[lo: lo + band.shape[0]])
        if band_core.size and core_c.size:
            mask[band_core[:, None], core_c] = False
        flat = np.flatnonzero(mask)
        transient = int(row_max.nbytes + mask.nbytes + flat.nbytes)
        counters["peak"] = max(counters["peak"], transient)
        if flat.size == 0:
            counters["skipped"] += 1
            continue
        rl, cl = np.divmod(flat, n_cols)
        row_parts.append(rl + lo)
        col_parts.append(cl)
        if want_values:
            value_parts.append(band[rl, cl])


def mapped_nonzero_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    mapping: DenseCoreMapping,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
) -> PairBlock:
    """Core-mapped equivalent of :func:`repro.matmul.tiling.tiled_nonzero_block`."""
    rows, cols = mapped_nonzero_coords(
        product, mapping, threshold=threshold, tile_rows=tile_rows, stats=stats
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    block = PairBlock((row_arr[rows], col_arr[cols]), deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block


def mapped_nonzero_counted_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    mapping: DenseCoreMapping,
    threshold: float = 0.5,
    tile_rows: Optional[int] = None,
    stats: Optional[Dict[str, object]] = None,
) -> CountedPairBlock:
    """Core-mapped equivalent of
    :func:`repro.matmul.tiling.tiled_nonzero_counted_block`."""
    rows, cols, values = mapped_nonzero_coords(
        product, mapping, threshold=threshold, tile_rows=tile_rows, stats=stats,
        want_values=True
    )
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    counts = np.rint(values).astype(np.int64)
    block = CountedPairBlock((row_arr[rows], col_arr[cols]), counts, deduped=True)
    _record(stats, memory_output_bytes=block.nbytes)
    return block
