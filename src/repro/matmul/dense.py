"""Dense matrix multiplication kernels.

The paper's prototype uses Eigen + Intel MKL ``SGEMM`` over ``float32``
matrices.  The equivalent here is numpy's BLAS-backed ``@`` on ``float32``
arrays — the same "single highly-optimised kernel" role, with the same
property the paper exploits: the product entry ``M[a, c]`` is the number of
witnesses ``y`` connecting ``a`` and ``c``, so deduplication and counting
come for free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation

Pair = Tuple[int, int]

# A float32 mantissa holds 24 bits, so consecutive integers are exact only up
# to 2^24; a witness count can be as large as the inner dimension of the
# product, so beyond this limit the accumulation must widen to float64.
FLOAT32_EXACT_LIMIT = 2**24


def accumulation_dtype(inner_dim: int, exact_limit: int = FLOAT32_EXACT_LIMIT) -> np.dtype:
    """Narrowest float dtype whose integer range covers counts up to ``inner_dim``."""
    return np.float64 if int(inner_dim) > int(exact_limit) else np.float32


def count_matmul(
    left: np.ndarray,
    right: np.ndarray,
    *,
    exact_limit: int = FLOAT32_EXACT_LIMIT,
) -> np.ndarray:
    """Witness-count product: standard (real) matrix multiplication.

    Inputs are 0/1 adjacency matrices; the output entry is the number of
    shared y witnesses.  ``float32`` is used deliberately (the paper's SGEMM
    choice) — but a count is bounded only by the inner dimension, so when the
    inner dimension exceeds ``exact_limit`` (2^24, the float32 exact-integer
    range) the product accumulates in ``float64`` to keep counts exact.
    """
    a = np.asarray(left)
    b = np.asarray(right)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("count_matmul expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {a.shape} x {b.shape}"
        )
    dtype = accumulation_dtype(a.shape[1], exact_limit)
    a = np.ascontiguousarray(a, dtype=dtype)
    b = np.ascontiguousarray(b, dtype=dtype)
    return a @ b


def boolean_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Boolean product: entry is True iff at least one witness exists."""
    return count_matmul(left, right) > 0.5


def build_adjacency(
    relation: Relation,
    row_values: Sequence[int],
    col_values: Sequence[int],
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Build the dense adjacency matrix of a relation restricted to given values.

    Rows are x values, columns are y values (pass the transposed relation to
    get the opposite orientation).  This is the matrix-construction step
    whose cost the paper accounts for separately (the ``C`` term in Eq. 1).
    """
    return relation.adjacency_matrix(row_values, col_values, dtype=dtype)


def build_pair_adjacency(
    relations: Sequence[Relation],
    group_values: Sequence[Tuple[int, ...]],
    col_values: Sequence[int],
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Build the grouped adjacency matrix used by the star algorithm.

    Row ``i`` corresponds to the tuple of head values ``group_values[i]``
    (one head value per relation in ``relations``); the entry at column ``j``
    is 1 iff *every* relation contains ``(group_values[i][r], col_values[j])``.
    This is matrix ``V`` / ``W`` from Section 3.2.
    """
    col_index = {int(v): j for j, v in enumerate(col_values)}
    matrix = np.zeros((len(group_values), len(col_index)), dtype=dtype)
    if not col_index or not group_values:
        return matrix
    indexes = [rel.index_x() for rel in relations]
    for i, group in enumerate(group_values):
        # Intersect the neighbour lists of the grouped head values.
        neighbour_sets: List[np.ndarray] = []
        ok = True
        for rel_idx, head_value in enumerate(group):
            ys = indexes[rel_idx].get(int(head_value))
            if ys is None:
                ok = False
                break
            neighbour_sets.append(ys)
        if not ok:
            continue
        common = neighbour_sets[0]
        for ys in neighbour_sets[1:]:
            common = np.intersect1d(common, ys, assume_unique=True)
            if common.size == 0:
                break
        for y in common:
            j = col_index.get(int(y))
            if j is not None:
                matrix[i, j] = 1
    return matrix


def nonzero_pairs(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> List[Pair]:
    """Extract output pairs from a product matrix.

    Returns ``(row_value, col_value)`` for every entry strictly above
    ``threshold`` — with the default threshold this is "at least one witness",
    for SSJ pass ``threshold = c - 0.5`` to keep only pairs with >= c
    witnesses.
    """
    rows, cols = np.nonzero(product > threshold)
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    return [(int(row_arr[r]), int(col_arr[c])) for r, c in zip(rows, cols)]


def nonzero_pairs_with_counts(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> Dict[Pair, int]:
    """Like :func:`nonzero_pairs` but also return the witness counts."""
    arr = np.asarray(product)
    # One boolean temporary serves both the coordinates and the counts
    # (boolean indexing yields row-major order, matching np.nonzero).
    mask = arr > threshold
    rows, cols = np.nonzero(mask)
    values = arr[mask]
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    return {
        (int(row_arr[r]), int(col_arr[c])): int(round(float(v)))
        for r, c, v in zip(rows, cols, values)
    }


def nonzero_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> PairBlock:
    """Output pairs above ``threshold`` as a columnar :class:`PairBlock`.

    The non-zero coordinates of the product are gathered straight into the
    block's column arrays — no per-pair Python tuples.  Cells of a matrix are
    unique, so the block is born deduplicated.
    """
    rows, cols = np.nonzero(np.asarray(product) > threshold)
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    return PairBlock((row_arr[rows], col_arr[cols]), deduped=True)


def nonzero_counted_block(
    product: np.ndarray,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> CountedPairBlock:
    """Like :func:`nonzero_block` but carrying the witness counts.

    The product may be float32 or (past the 2^24 overflow guard) float64;
    either way the entries are exact integers, so ``np.rint`` recovers the
    counts losslessly into the block's int64 count column.
    """
    arr = np.asarray(product)
    # One boolean temporary serves both the coordinates and the counts
    # (boolean indexing yields row-major order, matching np.nonzero).
    mask = arr > threshold
    rows, cols = np.nonzero(mask)
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    counts = np.rint(arr[mask]).astype(np.int64)
    return CountedPairBlock((row_arr[rows], col_arr[cols]), counts, deduped=True)


def naive_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Textbook O(n^3) triple loop, used as a reference oracle in tests."""
    a = np.asarray(left, dtype=np.float64)
    b = np.asarray(right, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions do not match")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            total = 0.0
            for k in range(a.shape[1]):
                total += a[i, k] * b[k, j]
            out[i, j] = total
    return out
