"""Sparse matrix multiplication kernels (scipy CSR).

When the heavy sub-relations are large but sparse, a dense product wastes
both memory and time; a CSR x CSR product costs roughly the number of
"flops" (expansions).  The MMJoin configuration exposes the backend choice
and the ablation benchmark compares the two.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.relation import Relation

Pair = Tuple[int, int]


def build_sparse_adjacency(
    relation: Relation,
    row_values: Sequence[int],
    col_values: Sequence[int],
    dtype: np.dtype = np.float32,
) -> sparse.csr_matrix:
    """Build a CSR adjacency matrix of the relation restricted to given values."""
    row_index = {int(v): i for i, v in enumerate(row_values)}
    col_index = {int(v): j for j, v in enumerate(col_values)}
    rows: List[int] = []
    cols: List[int] = []
    if row_index and col_index:
        idx = relation.index_x()
        for x, i in row_index.items():
            ys = idx.get(x)
            if ys is None:
                continue
            for y in ys:
                j = col_index.get(int(y))
                if j is not None:
                    rows.append(i)
                    cols.append(j)
    data = np.ones(len(rows), dtype=dtype)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(row_index), len(col_index))
    )


def sparse_count_matmul(
    left: sparse.spmatrix, right: sparse.spmatrix
) -> sparse.csr_matrix:
    """Witness-count product of two sparse matrices."""
    if left.shape[1] != right.shape[0]:
        raise ValueError(f"inner dimensions do not match: {left.shape} x {right.shape}")
    return (left @ right).tocsr()


def sparse_boolean_matmul(
    left: sparse.spmatrix, right: sparse.spmatrix
) -> sparse.csr_matrix:
    """Boolean product of two sparse matrices (entries clipped to 1)."""
    product = sparse_count_matmul(left, right)
    product.data = np.minimum(product.data, 1.0)
    return product


def _record_coo_stats(stats, coo, block) -> None:
    """Extraction accounting for COO scans (already output-proportional)."""
    if stats is None:
        return
    transient = int(coo.data.nbytes + coo.row.nbytes + coo.col.nbytes)
    stats.update(
        extract_mode="sparse",
        extract_tile_rows=0,
        extract_tiles_total=1,
        extract_tiles_skipped=0,
        memory_extract_peak_bytes=transient,
        memory_full_scan_bytes=int(coo.shape[0]) * int(coo.shape[1]),
        memory_output_bytes=block.nbytes,
    )


def sparse_nonzero_block(
    product: sparse.spmatrix,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    stats=None,
) -> PairBlock:
    """Output pairs above ``threshold`` as a columnar :class:`PairBlock`."""
    coo = product.tocoo()
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    keep = coo.data > threshold
    block = PairBlock(
        (row_arr[coo.row[keep]], col_arr[coo.col[keep]]), deduped=True
    )
    _record_coo_stats(stats, coo, block)
    return block


def sparse_nonzero_counted_block(
    product: sparse.spmatrix,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
    stats=None,
) -> CountedPairBlock:
    """Like :func:`sparse_nonzero_block` but with exact witness counts."""
    coo = product.tocoo()
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    keep = coo.data > threshold
    counts = np.rint(coo.data[keep]).astype(np.int64)
    block = CountedPairBlock(
        (row_arr[coo.row[keep]], col_arr[coo.col[keep]]), counts, deduped=True
    )
    _record_coo_stats(stats, coo, block)
    return block


def sparse_nonzero_pairs(
    product: sparse.spmatrix,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> List[Pair]:
    """Extract output pairs above a count threshold from a sparse product."""
    coo = product.tocoo()
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    keep = coo.data > threshold
    return [
        (int(row_arr[r]), int(col_arr[c]))
        for r, c in zip(coo.row[keep], coo.col[keep])
    ]


def sparse_nonzero_pairs_with_counts(
    product: sparse.spmatrix,
    row_values: Sequence[int],
    col_values: Sequence[int],
    threshold: float = 0.5,
) -> Dict[Pair, int]:
    """Like :func:`sparse_nonzero_pairs` but with witness counts."""
    coo = product.tocoo()
    row_arr = np.asarray(row_values, dtype=np.int64)
    col_arr = np.asarray(col_values, dtype=np.int64)
    keep = coo.data > threshold
    return {
        (int(row_arr[r]), int(col_arr[c])): int(round(float(v)))
        for r, c, v in zip(coo.row[keep], coo.col[keep], coo.data[keep])
    }
