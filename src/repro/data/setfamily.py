"""Set-family view over a binary relation.

The set similarity / containment applications in the paper treat the relation
``R(x, y)`` as a family of sets: ``x`` is a set identifier and its set is the
collection of ``y`` values paired with it.  :class:`SetFamily` provides that
view together with the inverted index ``L[b] = {x | (x, b) in R}`` that every
SSJ/SCJ algorithm relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.data.relation import Relation


class SetFamily:
    """A family of integer sets backed by a :class:`Relation`."""

    def __init__(self, relation: Relation) -> None:
        self._relation = relation
        self._sets: Optional[Dict[int, np.ndarray]] = None
        self._inverted: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, sets: Mapping[int, Iterable[int]], name: str = "R") -> "SetFamily":
        """Build a set family from ``{set_id: iterable of elements}``."""
        return cls(Relation.from_set_family(sets, name=name))

    @classmethod
    def from_relation(cls, relation: Relation) -> "SetFamily":
        """Wrap an existing relation."""
        return cls(relation)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def relation(self) -> Relation:
        """The underlying binary relation."""
        return self._relation

    def set_ids(self) -> np.ndarray:
        """Sorted array of set identifiers."""
        return self._relation.x_values()

    def elements(self) -> np.ndarray:
        """Sorted array of all element values (the domain)."""
        return self._relation.y_values()

    def num_sets(self) -> int:
        """Number of sets in the family."""
        return int(self.set_ids().size)

    def num_tuples(self) -> int:
        """Total number of (set, element) pairs."""
        return len(self._relation)

    def __len__(self) -> int:
        return self.num_sets()

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        return iter(self.sets().items())

    def sets(self) -> Dict[int, np.ndarray]:
        """Mapping from set id to its sorted element array."""
        if self._sets is None:
            self._sets = self._relation.index_x()
        return self._sets

    def get(self, set_id: int) -> np.ndarray:
        """Sorted element array of one set (empty array if absent)."""
        return self.sets().get(int(set_id), _EMPTY)

    def set_size(self, set_id: int) -> int:
        """Cardinality of one set."""
        return int(self.get(set_id).size)

    def sizes(self) -> Dict[int, int]:
        """Mapping from set id to its cardinality."""
        return {k: int(v.size) for k, v in self.sets().items()}

    def inverted_index(self) -> Dict[int, np.ndarray]:
        """Inverted index ``L[b]``: element -> sorted array of set ids."""
        if self._inverted is None:
            self._inverted = self._relation.index_y()
        return self._inverted

    def inverted_list(self, element: int) -> np.ndarray:
        """The inverted list of one element (empty array if absent)."""
        return self.inverted_index().get(int(element), _EMPTY)

    # ------------------------------------------------------------------ #
    # Set-level operations
    # ------------------------------------------------------------------ #
    def intersection_size(self, a: int, b: int) -> int:
        """Exact size of the intersection of two sets."""
        return int(np.intersect1d(self.get(a), self.get(b), assume_unique=True).size)

    def contains(self, a: int, b: int) -> bool:
        """True iff set ``a`` is a subset of set ``b``."""
        set_a = self.get(a)
        set_b = self.get(b)
        if set_a.size > set_b.size:
            return False
        return bool(np.isin(set_a, set_b, assume_unique=True).all()) if set_a.size else True

    def jaccard(self, a: int, b: int) -> float:
        """Jaccard similarity of two sets."""
        inter = self.intersection_size(a, b)
        union = self.set_size(a) + self.set_size(b) - inter
        return inter / union if union else 0.0

    def partition_by_size(self, threshold: int) -> Tuple[List[int], List[int]]:
        """Split set ids into (light, heavy) by set cardinality.

        This is the SizeAware partition: sets of size <= ``threshold`` are
        light, the rest are heavy.
        """
        light: List[int] = []
        heavy: List[int] = []
        for set_id, elems in self.sets().items():
            if elems.size <= threshold:
                light.append(set_id)
            else:
                heavy.append(set_id)
        return light, heavy

    def restrict(self, set_ids: Iterable[int], name: Optional[str] = None) -> "SetFamily":
        """Return the sub-family containing only the given sets."""
        return SetFamily(self._relation.restrict_x(set_ids, name=name))

    def stats_row(self) -> Dict[str, float]:
        """Table 2 style statistics row for this family."""
        return self._relation.stats().as_row()


_EMPTY = np.empty(0, dtype=np.int64)
