"""Binary relation storage.

The whole paper operates on binary relations ``R(x, y)`` over integer domains
(a bipartite graph: set-id ``x`` contains element ``y``, or author ``x`` wrote
paper ``y``).  :class:`Relation` stores such a relation as a deduplicated
``(n, 2)`` integer array and lazily builds the indexes that every algorithm in
the paper assumes:

* an index from each ``x`` value to the sorted array of its ``y`` neighbours,
* the symmetric index from ``y`` to its ``x`` neighbours,
* per-value degree arrays for both columns.

Construction is linear (modulo sorting) and all indexes are built once and
cached, which corresponds to the paper's "indexing relations" preprocessing
step (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

Pair = Tuple[int, int]


class RelationError(ValueError):
    """Raised when a relation is constructed or used incorrectly."""


@dataclass(frozen=True)
class RelationStats:
    """Summary statistics of a binary relation.

    Mirrors the columns of Table 2 in the paper: number of tuples, number of
    distinct sets (``x`` values), domain size of the element column (``y``),
    and the average / min / max set size.
    """

    num_tuples: int
    num_sets: int
    domain_size: int
    avg_set_size: float
    min_set_size: int
    max_set_size: int

    def as_row(self) -> Dict[str, float]:
        """Return the statistics as a flat dict (one row of Table 2)."""
        return {
            "tuples": self.num_tuples,
            "sets": self.num_sets,
            "dom": self.domain_size,
            "avg_set_size": round(self.avg_set_size, 2),
            "min_set_size": self.min_set_size,
            "max_set_size": self.max_set_size,
        }


class Relation:
    """A deduplicated binary relation ``R(x, y)`` over integer values.

    Parameters
    ----------
    pairs:
        An ``(n, 2)`` integer array of tuples.  Duplicates are removed.
    name:
        Optional human-readable name used in plans and reports.
    sorted_dedup:
        Internal flag: set to ``True`` when the caller guarantees that
        ``pairs`` is already lexicographically sorted and deduplicated.
    """

    __slots__ = (
        "name",
        "_data",
        "_index_x",
        "_index_y",
        "_x_values",
        "_y_values",
        "_deg_x",
        "_deg_y",
        "_ysorted",
    )

    def __init__(
        self,
        pairs: np.ndarray,
        name: str = "R",
        *,
        sorted_dedup: bool = False,
    ) -> None:
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise RelationError(
                f"relation data must be an (n, 2) array, got shape {arr.shape}"
            )
        if not sorted_dedup and len(arr):
            arr = np.unique(arr, axis=0)
        self.name = name
        self._data = arr
        self._index_x: Optional[Dict[int, np.ndarray]] = None
        self._index_y: Optional[Dict[int, np.ndarray]] = None
        self._x_values: Optional[np.ndarray] = None
        self._y_values: Optional[np.ndarray] = None
        self._deg_x: Optional[Dict[int, int]] = None
        self._deg_y: Optional[Dict[int, int]] = None
        self._ysorted: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair], name: str = "R") -> "Relation":
        """Build a relation from an iterable of ``(x, y)`` tuples."""
        data = list(pairs)
        if not data:
            return cls(np.empty((0, 2), dtype=np.int64), name=name)
        return cls(np.asarray(data, dtype=np.int64), name=name)

    @classmethod
    def from_arrays(
        cls, xs: Sequence[int], ys: Sequence[int], name: str = "R"
    ) -> "Relation":
        """Build a relation from two parallel columns."""
        xs_arr = np.asarray(xs, dtype=np.int64)
        ys_arr = np.asarray(ys, dtype=np.int64)
        if xs_arr.shape != ys_arr.shape:
            raise RelationError("column arrays must have the same length")
        return cls(np.column_stack([xs_arr, ys_arr]), name=name)

    @classmethod
    def from_set_family(
        cls, sets: Mapping[int, Iterable[int]], name: str = "R"
    ) -> "Relation":
        """Build a relation from a mapping ``set-id -> elements``."""
        xs: List[int] = []
        ys: List[int] = []
        for set_id, elements in sets.items():
            for element in elements:
                xs.append(set_id)
                ys.append(element)
        if not xs:
            return cls(np.empty((0, 2), dtype=np.int64), name=name)
        return cls.from_arrays(xs, ys, name=name)

    @classmethod
    def empty(cls, name: str = "R") -> "Relation":
        """Return an empty relation."""
        return cls(np.empty((0, 2), dtype=np.int64), name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._data.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Pair]:
        for x, y in self._data:
            yield int(x), int(y)

    def __contains__(self, pair: Pair) -> bool:
        x, y = pair
        ys = self.neighbors_x(int(x))
        if ys.size == 0:
            return False
        pos = np.searchsorted(ys, int(y))
        return pos < ys.size and ys[pos] == int(y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return np.array_equal(self._data, other._data)

    def __hash__(self) -> int:  # pragma: no cover - relations are mostly unhashed
        return hash((self.name, len(self)))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, tuples={len(self)})"

    @property
    def data(self) -> np.ndarray:
        """The underlying ``(n, 2)`` sorted, deduplicated array (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def xs(self) -> np.ndarray:
        """The x column."""
        return self._data[:, 0]

    @property
    def ys(self) -> np.ndarray:
        """The y column."""
        return self._data[:, 1]

    def pairs(self) -> List[Pair]:
        """Materialise the relation as a list of python tuples."""
        return [(int(x), int(y)) for x, y in self._data]

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def _build_index(self, column: int) -> Dict[int, np.ndarray]:
        data = self._data
        if data.shape[0] == 0:
            return {}
        keys = data[:, column]
        values = data[:, 1 - column]
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        values_sorted = values[order]
        unique_keys, starts = np.unique(keys_sorted, return_index=True)
        index: Dict[int, np.ndarray] = {}
        boundaries = np.append(starts, keys_sorted.size)
        for i, key in enumerate(unique_keys):
            chunk = values_sorted[boundaries[i] : boundaries[i + 1]]
            index[int(key)] = np.sort(chunk)
        return index

    def index_x(self) -> Dict[int, np.ndarray]:
        """Index mapping every x value to its sorted array of y neighbours."""
        if self._index_x is None:
            self._index_x = self._build_index(0)
        return self._index_x

    def index_y(self) -> Dict[int, np.ndarray]:
        """Index mapping every y value to its sorted array of x neighbours."""
        if self._index_y is None:
            self._index_y = self._build_index(1)
        return self._index_y

    def sorted_by_y(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(ys, xs)`` columns sorted by y (built once, cached).

        This is the probe-side layout of the vectorized light join: a
        ``searchsorted`` over the sorted y column yields each witness's
        contiguous partner range, so the whole expansion is index gathers
        instead of per-tuple dictionary lookups.
        """
        if self._ysorted is None:
            order = np.argsort(self._data[:, 1], kind="stable")
            self._ysorted = (
                np.ascontiguousarray(self._data[order, 1]),
                np.ascontiguousarray(self._data[order, 0]),
            )
        return self._ysorted

    def neighbors_x(self, x: int) -> np.ndarray:
        """Sorted y values paired with ``x`` (empty array if none)."""
        return self.index_x().get(int(x), _EMPTY)

    def neighbors_y(self, y: int) -> np.ndarray:
        """Sorted x values paired with ``y`` (empty array if none)."""
        return self.index_y().get(int(y), _EMPTY)

    def x_values(self) -> np.ndarray:
        """Sorted distinct x values (``dom(x)`` restricted to the relation)."""
        if self._x_values is None:
            self._x_values = np.unique(self._data[:, 0]) if len(self) else _EMPTY
        return self._x_values

    def y_values(self) -> np.ndarray:
        """Sorted distinct y values."""
        if self._y_values is None:
            self._y_values = np.unique(self._data[:, 1]) if len(self) else _EMPTY
        return self._y_values

    def degree_x(self, x: int) -> int:
        """Degree of an x value, i.e. ``|sigma_{x=a} R|``."""
        return int(self.neighbors_x(x).size)

    def degree_y(self, y: int) -> int:
        """Degree of a y value, i.e. ``|sigma_{y=b} R|``."""
        return int(self.neighbors_y(y).size)

    def degrees_x(self) -> Dict[int, int]:
        """Mapping from every x value to its degree."""
        if self._deg_x is None:
            self._deg_x = {k: int(v.size) for k, v in self.index_x().items()}
        return self._deg_x

    def degrees_y(self) -> Dict[int, int]:
        """Mapping from every y value to its degree."""
        if self._deg_y is None:
            self._deg_y = {k: int(v.size) for k, v in self.index_y().items()}
        return self._deg_y

    # ------------------------------------------------------------------ #
    # Algebraic operations
    # ------------------------------------------------------------------ #
    def swap(self, name: Optional[str] = None) -> "Relation":
        """Return the relation with its columns swapped (graph transpose)."""
        swapped = self._data[:, ::-1]
        return Relation(swapped, name=name or f"{self.name}^T")

    def filter_pairs(self, mask: np.ndarray, name: Optional[str] = None) -> "Relation":
        """Return the sub-relation selected by a boolean mask over tuples."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self):
            raise RelationError("mask length must equal the number of tuples")
        return Relation(
            self._data[mask], name=name or self.name, sorted_dedup=True
        )

    def restrict_x(self, values: Iterable[int], name: Optional[str] = None) -> "Relation":
        """Return the sub-relation whose x values belong to ``values``."""
        wanted = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
        if wanted.size == 0 or len(self) == 0:
            return Relation.empty(name or self.name)
        mask = np.isin(self._data[:, 0], wanted)
        return self.filter_pairs(mask, name=name)

    def restrict_y(self, values: Iterable[int], name: Optional[str] = None) -> "Relation":
        """Return the sub-relation whose y values belong to ``values``."""
        wanted = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
        if wanted.size == 0 or len(self) == 0:
            return Relation.empty(name or self.name)
        mask = np.isin(self._data[:, 1], wanted)
        return self.filter_pairs(mask, name=name)

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set union of two relations."""
        if len(self) == 0:
            return Relation(other._data, name=name or self.name, sorted_dedup=True)
        if len(other) == 0:
            return Relation(self._data, name=name or self.name, sorted_dedup=True)
        stacked = np.vstack([self._data, other._data])
        return Relation(stacked, name=name or self.name)

    def difference(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set difference ``self \\ other``."""
        if len(self) == 0 or len(other) == 0:
            return Relation(self._data, name=name or self.name, sorted_dedup=True)
        # Encode pairs into single integers for a vectorised membership test.
        shift = max(
            int(self._data[:, 1].max()), int(other._data[:, 1].max()), 0
        ) + 1
        mine = self._data[:, 0] * shift + self._data[:, 1]
        theirs = other._data[:, 0] * shift + other._data[:, 1]
        mask = ~np.isin(mine, theirs)
        return self.filter_pairs(mask, name=name)

    def intersection(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set intersection of two relations."""
        if len(self) == 0 or len(other) == 0:
            return Relation.empty(name or self.name)
        shift = max(
            int(self._data[:, 1].max()), int(other._data[:, 1].max()), 0
        ) + 1
        mine = self._data[:, 0] * shift + self._data[:, 1]
        theirs = other._data[:, 0] * shift + other._data[:, 1]
        mask = np.isin(mine, theirs)
        return self.filter_pairs(mask, name=name)

    def project_x(self) -> np.ndarray:
        """Projection onto the x column (sorted distinct values)."""
        return self.x_values()

    def project_y(self) -> np.ndarray:
        """Projection onto the y column (sorted distinct values)."""
        return self.y_values()

    def semijoin_y(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Semijoin: keep tuples whose y value also appears in ``other``'s y column.

        This is the linear-time preprocessing the paper assumes ("we have
        removed any tuples that do not contribute to the query result").
        """
        if len(self) == 0:
            return Relation.empty(name or self.name)
        other_ys = other.y_values()
        mask = np.isin(self._data[:, 1], other_ys)
        return self.filter_pairs(mask, name=name)

    def sample_tuples(self, k: int, seed: int = 0, name: Optional[str] = None) -> "Relation":
        """Uniform random sample (without replacement) of ``k`` tuples."""
        if k >= len(self):
            return Relation(self._data, name=name or self.name, sorted_dedup=True)
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=k, replace=False)
        return Relation(self._data[np.sort(idx)], name=name or self.name, sorted_dedup=True)

    # ------------------------------------------------------------------ #
    # Statistics and matrix views
    # ------------------------------------------------------------------ #
    def stats(self) -> RelationStats:
        """Compute Table-2-style statistics for this relation."""
        if len(self) == 0:
            return RelationStats(0, 0, 0, 0.0, 0, 0)
        degrees = np.fromiter(
            (d for d in self.degrees_x().values()), dtype=np.int64
        )
        return RelationStats(
            num_tuples=len(self),
            num_sets=int(self.x_values().size),
            domain_size=int(self.y_values().size),
            avg_set_size=float(degrees.mean()),
            min_set_size=int(degrees.min()),
            max_set_size=int(degrees.max()),
        )

    def full_join_size(self, other: "Relation") -> int:
        """Size of the full join ``R(x,y) |><| S(z,y)`` before projection.

        Computed in linear time from the per-``y`` degrees of both relations
        (the paper computes this during the indexing pass).
        """
        if len(self) == 0 or len(other) == 0:
            return 0
        deg_self = self.degrees_y()
        deg_other = other.degrees_y()
        smaller, larger = (
            (deg_self, deg_other)
            if len(deg_self) <= len(deg_other)
            else (deg_other, deg_self)
        )
        total = 0
        for y, d in smaller.items():
            other_d = larger.get(y)
            if other_d:
                total += d * other_d
        return total

    def adjacency_matrix(
        self,
        row_ids: Sequence[int],
        col_ids: Sequence[int],
        dtype: np.dtype = np.float32,
    ) -> np.ndarray:
        """Materialise the relation restricted to ``row_ids`` x ``col_ids``.

        Rows are x values and columns are y values; the entry is 1.0 when the
        tuple is present.  This is the matrix-construction step of
        Algorithm 1 (``M1(x, y) <- R+ adj matrix``).
        """
        row_index = {int(v): i for i, v in enumerate(row_ids)}
        col_index = {int(v): i for i, v in enumerate(col_ids)}
        matrix = np.zeros((len(row_index), len(col_index)), dtype=dtype)
        if not row_index or not col_index:
            return matrix
        idx_x = self.index_x()
        for x, row in row_index.items():
            ys = idx_x.get(x)
            if ys is None:
                continue
            for y in ys:
                col = col_index.get(int(y))
                if col is not None:
                    matrix[row, col] = 1
        return matrix

    def to_set_dict(self) -> Dict[int, set]:
        """Return the relation as ``{x: set(y)}`` (the set-family view)."""
        return {x: set(int(v) for v in ys) for x, ys in self.index_x().items()}


_EMPTY = np.empty(0, dtype=np.int64)
