"""Loading and saving relations from/to simple on-disk formats.

Real deployments would load edge lists such as the SNAP RoadNet file or the
UCI bag-of-words dataset.  These loaders accept the common textual formats so
a user can point the library at their own data:

* whitespace- or comma-separated edge lists (``x y`` per line, ``#`` comments),
* "transaction" files where each line is one set (elements separated by
  whitespace), as used by frequent-itemset benchmarks.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.data.relation import Relation

PathLike = Union[str, Path]


class LoaderError(ValueError):
    """Raised when an input file cannot be parsed."""


def _open_text(path: PathLike) -> io.TextIOWrapper:
    return open(Path(path), "r", encoding="utf-8")


def load_edge_list(
    path: PathLike,
    delimiter: Optional[str] = None,
    comment: str = "#",
    name: Optional[str] = None,
) -> Relation:
    """Load a relation from an edge-list file.

    Each non-comment line must contain two integer fields.  ``delimiter`` of
    ``None`` splits on arbitrary whitespace (the SNAP convention).
    """
    xs: List[int] = []
    ys: List[int] = []
    with _open_text(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split(delimiter) if delimiter else line.split()
            if len(fields) < 2:
                raise LoaderError(f"{path}:{lineno}: expected two fields, got {line!r}")
            try:
                xs.append(int(fields[0]))
                ys.append(int(fields[1]))
            except ValueError as exc:
                raise LoaderError(f"{path}:{lineno}: non-integer field in {line!r}") from exc
    rel_name = name or Path(path).stem
    if not xs:
        return Relation.empty(rel_name)
    return Relation.from_arrays(xs, ys, name=rel_name)


def load_csv(
    path: PathLike,
    x_column: Union[int, str] = 0,
    y_column: Union[int, str] = 1,
    has_header: bool = False,
    name: Optional[str] = None,
) -> Relation:
    """Load a relation from a CSV file, selecting two columns by index or name."""
    xs: List[int] = []
    ys: List[int] = []
    with _open_text(path) as handle:
        reader = csv.reader(handle)
        header: Optional[List[str]] = None
        for lineno, row in enumerate(reader, start=1):
            if not row:
                continue
            if has_header and header is None:
                header = [field.strip() for field in row]
                continue
            x_idx = header.index(x_column) if isinstance(x_column, str) and header else int(x_column)
            y_idx = header.index(y_column) if isinstance(y_column, str) and header else int(y_column)
            try:
                xs.append(int(row[x_idx]))
                ys.append(int(row[y_idx]))
            except (ValueError, IndexError) as exc:
                raise LoaderError(f"{path}:{lineno}: bad row {row!r}") from exc
    rel_name = name or Path(path).stem
    if not xs:
        return Relation.empty(rel_name)
    return Relation.from_arrays(xs, ys, name=rel_name)


def load_transactions(path: PathLike, name: Optional[str] = None) -> Relation:
    """Load a set family from a transactions file (one set per line)."""
    sets: Dict[int, List[int]] = {}
    with _open_text(path) as handle:
        for set_id, raw in enumerate(handle):
            line = raw.strip()
            if not line:
                continue
            try:
                sets[set_id] = [int(tok) for tok in line.split()]
            except ValueError as exc:
                raise LoaderError(f"{path}:{set_id + 1}: non-integer element") from exc
    rel_name = name or Path(path).stem
    return Relation.from_set_family(sets, name=rel_name)


def save_edge_list(relation: Relation, path: PathLike, delimiter: str = "\t") -> None:
    """Write a relation to an edge-list file."""
    with open(Path(path), "w", encoding="utf-8") as handle:
        handle.write(f"# relation {relation.name}: {len(relation)} tuples\n")
        for x, y in relation:
            handle.write(f"{x}{delimiter}{y}\n")


def save_transactions(relation: Relation, path: PathLike) -> None:
    """Write a relation to a transactions file (one set per line, sorted ids)."""
    index = relation.index_x()
    with open(Path(path), "w", encoding="utf-8") as handle:
        for set_id in sorted(index):
            elems = " ".join(str(int(e)) for e in index[set_id])
            handle.write(elems + "\n")


def roundtrip_edge_list(relation: Relation, path: PathLike) -> Relation:
    """Save and immediately reload a relation (useful in tests)."""
    save_edge_list(relation, path)
    return load_edge_list(path, name=relation.name)
