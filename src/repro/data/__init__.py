"""Data substrate: relations, result blocks, indexes, catalogs and loaders."""

from repro.data.relation import Relation
from repro.data.pairblock import CountedPairBlock, PairBlock
from repro.data.indexes import DegreeIndex, DegreeStatistics
from repro.data.catalog import Catalog
from repro.data.setfamily import SetFamily
from repro.data import generators
from repro.data import loaders

__all__ = [
    "Relation",
    "PairBlock",
    "CountedPairBlock",
    "DegreeIndex",
    "DegreeStatistics",
    "Catalog",
    "SetFamily",
    "generators",
    "loaders",
]
