"""Columnar result blocks for the join-project pipeline.

The physical operators used to hand results around as Python
``Set[Tuple[int, int]]`` — every probe, merge and set operation was a
per-tuple Python loop, which dominates real join-project runtimes long
before the matrix product does.  This module provides the columnar
representation that replaces those sets *inside* the pipeline:

* :class:`PairBlock` — an arity-``k`` block of integer result tuples stored
  as ``k`` parallel ``int64`` column arrays.  Deduplication, concatenation,
  set difference and intersection are NumPy-speed: rows are packed into
  single ``int64`` sort keys whenever the per-column value ranges allow it
  (they essentially always do), with an ``np.unique(axis=0)``-based fallback
  for astronomically large domains.
* :class:`CountedPairBlock` — a :class:`PairBlock` plus a parallel ``int64``
  witness-count column (the MODE_COUNTS substrate for SSJ/SCJ).  Its
  :meth:`CountedPairBlock.dedup` aggregates counts with ``np.add.at`` over
  the packed keys.  Counts stay exact: the matmul layer already widens the
  accumulation to ``float64`` past the ``float32`` exact-integer range (see
  :func:`repro.matmul.dense.accumulation_dtype`), and extraction rounds the
  widened products straight into this block's ``int64`` column.

Python sets appear only at the API boundary: :meth:`PairBlock.to_set` /
:meth:`PairBlock.from_pairs` (and the counted dict equivalents) convert
lazily where engines, the CLI and the legacy result objects need them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

Pair = Tuple[int, int]
HeadTuple = Tuple[int, ...]

_EMPTY = np.empty(0, dtype=np.int64)

# Packed keys must stay within the exact int64 range.
_MAX_PACKED = 2**63 - 1


def _as_columns(columns: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    out = tuple(np.asarray(c, dtype=np.int64).reshape(-1) for c in columns)
    if not out:
        raise ValueError("a block needs at least one column")
    n = out[0].size
    if any(c.size != n for c in out):
        raise ValueError("block columns must have equal length")
    return out


def _pack_layout(
    column_groups: Sequence[Sequence[np.ndarray]],
) -> Optional[Tuple[List[int], List[int]]]:
    """Shared (mins, strides) packing rows of every group into one int64 key.

    Row-major packing, so packed-key order equals lexicographic row order.
    Returns ``None`` when the combined per-column ranges overflow int64.
    """
    arity = len(column_groups[0])
    mins: List[int] = []
    ranges: List[int] = []
    for j in range(arity):
        cols = [g[j] for g in column_groups if g[j].size]
        if not cols:
            mins.append(0)
            ranges.append(1)
            continue
        lo = min(int(c.min()) for c in cols)
        hi = max(int(c.max()) for c in cols)
        mins.append(lo)
        ranges.append(hi - lo + 1)
    total = 1
    for r in ranges:
        total *= r
        if total > _MAX_PACKED:
            return None
    strides = [1] * arity
    for j in range(arity - 2, -1, -1):
        strides[j] = strides[j + 1] * ranges[j + 1]
    return mins, strides


def _pack(columns: Sequence[np.ndarray], mins: List[int], strides: List[int]) -> np.ndarray:
    keys = (columns[0] - mins[0]) * strides[0]
    for col, lo, stride in zip(columns[1:], mins[1:], strides[1:]):
        keys = keys + (col - lo) * stride
    return keys


class PairBlock:
    """A columnar block of arity-``k`` integer result tuples.

    Parameters
    ----------
    columns:
        ``k`` parallel 1-D integer arrays; row ``i`` is the output tuple
        ``(columns[0][i], ..., columns[k-1][i])``.
    deduped:
        Caller-guaranteed hint that the rows are already distinct (e.g. the
        non-zero cells of a matrix product).  ``dedup()`` still canonicalises
        the order but the hint keeps ``distinct_size`` cheap.
    """

    __slots__ = ("columns", "deduped")

    def __init__(self, columns: Sequence[np.ndarray], deduped: bool = False) -> None:
        self.columns = _as_columns(columns)
        self.deduped = bool(deduped) or self.columns[0].size <= 1

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, arity: int = 2) -> "PairBlock":
        return cls(tuple(_EMPTY for _ in range(max(int(arity), 1))), deduped=True)

    @classmethod
    def from_array(cls, rows: np.ndarray, deduped: bool = False) -> "PairBlock":
        """Build a block from an ``(n, k)`` row-major array."""
        arr = np.asarray(rows, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError(f"expected an (n, k) array, got shape {arr.shape}")
        return cls(tuple(np.ascontiguousarray(arr[:, j]) for j in range(arr.shape[1])),
                   deduped=deduped)

    @classmethod
    def from_pairs(cls, pairs: Iterable[HeadTuple], arity: int = 2) -> "PairBlock":
        """Boundary conversion: build a block from an iterable of tuples."""
        rows = list(pairs)
        if not rows:
            return cls.empty(arity)
        arr = np.asarray(rows, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        return cls.from_array(arr, deduped=isinstance(pairs, (set, frozenset, dict)))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the column arrays in bytes."""
        return int(sum(c.nbytes for c in self.columns))

    def __len__(self) -> int:
        return int(self.columns[0].size)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[HeadTuple]:
        if self.arity == 2:
            return iter(zip(self.columns[0].tolist(), self.columns[1].tolist()))
        return iter(map(tuple, self.as_array().tolist()))

    def __contains__(self, row: HeadTuple) -> bool:
        mask = self.columns[0] == int(row[0])
        for col, value in zip(self.columns[1:], row[1:]):
            mask &= col == int(value)
        return bool(mask.any())

    def __repr__(self) -> str:
        return f"PairBlock(rows={len(self)}, arity={self.arity})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairBlock):
            if self.arity != other.arity:
                return False
            return np.array_equal(self.dedup().as_array(), other.dedup().as_array())
        if isinstance(other, (set, frozenset)):
            return self.to_set() == other
        return NotImplemented

    # Blocks compare by (deduplicated) content, so they are unhashable —
    # Python's default when __eq__ is defined without __hash__.
    __hash__ = None  # type: ignore[assignment]

    def as_array(self) -> np.ndarray:
        """The rows as an ``(n, k)`` array (a column-stacked copy)."""
        return np.column_stack(self.columns) if len(self) else np.empty(
            (0, self.arity), dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # Set algebra (NumPy-speed)
    # ------------------------------------------------------------------ #
    def dedup(self) -> "PairBlock":
        """Distinct rows in canonical (lexicographic) order."""
        if len(self) <= 1:
            return self
        layout = _pack_layout([self.columns])
        if layout is not None:
            keys = _pack(self.columns, *layout)
            _, first = np.unique(keys, return_index=True)
            return PairBlock(tuple(c[first] for c in self.columns), deduped=True)
        return PairBlock.from_array(np.unique(self.as_array(), axis=0), deduped=True)

    def distinct_size(self) -> int:
        """Number of distinct rows (no-op when already deduped)."""
        return len(self) if self.deduped else len(self.dedup())

    def concat(self, other: "PairBlock") -> "PairBlock":
        """Row concatenation (duplicates preserved — dedup separately)."""
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        if self.arity != other.arity:
            raise ValueError("cannot concatenate blocks of different arity")
        return PairBlock(
            tuple(np.concatenate([a, b]) for a, b in zip(self.columns, other.columns))
        )

    @staticmethod
    def concat_all(blocks: Sequence["PairBlock"], arity: int = 2) -> "PairBlock":
        """Concatenate many blocks (the parallel executor's merge step)."""
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return PairBlock.empty(arity)
        if any(b.arity != blocks[0].arity for b in blocks[1:]):
            raise ValueError("cannot concatenate blocks of different arity")
        if len(blocks) == 1:
            return blocks[0]
        return PairBlock(
            tuple(
                np.concatenate([b.columns[j] for b in blocks])
                for j in range(blocks[0].arity)
            )
        )

    def _membership(self, other: "PairBlock") -> np.ndarray:
        """Boolean mask over this block's rows: present in ``other``?"""
        if self.arity != other.arity:
            raise ValueError("cannot compare blocks of different arity")
        layout = _pack_layout([self.columns, other.columns])
        if layout is not None:
            return np.isin(_pack(self.columns, *layout), _pack(other.columns, *layout))
        # Fallback for domains too large to pack: one unique() over the
        # stacked rows labels every distinct row, membership is a gather.
        mine = self.as_array()
        theirs = other.as_array()
        _, inverse = np.unique(
            np.concatenate([mine, theirs]), axis=0, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        present = np.zeros(int(inverse.max()) + 1, dtype=bool)
        present[inverse[len(self):]] = True
        return present[inverse[: len(self)]]

    def difference(self, other: "PairBlock") -> "PairBlock":
        """Distinct rows of ``self`` that do not appear in ``other``."""
        if len(self) == 0 or len(other) == 0:
            return self.dedup()
        mask = ~self._membership(other)
        return PairBlock(tuple(c[mask] for c in self.columns), deduped=self.deduped).dedup()

    def intersection(self, other: "PairBlock") -> "PairBlock":
        """Distinct rows present in both blocks."""
        if len(self) == 0 or len(other) == 0:
            return PairBlock.empty(self.arity)
        mask = self._membership(other)
        return PairBlock(tuple(c[mask] for c in self.columns), deduped=self.deduped).dedup()

    def union(self, other: "PairBlock") -> "PairBlock":
        """Distinct rows present in either block (concat + dedup).

        The append half of the delta algebra: folding appended rows into a
        relation's block is one concatenation plus a packed-key unique, with
        the result back in canonical (lexicographic) order.
        """
        return self.concat(other).dedup()

    # ------------------------------------------------------------------ #
    # Boundary conversion
    # ------------------------------------------------------------------ #
    def to_set(self) -> set:
        """Materialise as a Python set of tuples (API boundary only)."""
        if self.arity == 2:
            return set(zip(self.columns[0].tolist(), self.columns[1].tolist()))
        return set(map(tuple, self.as_array().tolist()))


class CountedPairBlock:
    """A :class:`PairBlock` with a parallel ``int64`` witness-count column."""

    __slots__ = ("columns", "counts", "deduped")

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        counts: np.ndarray,
        deduped: bool = False,
    ) -> None:
        self.columns = _as_columns(columns)
        self.counts = np.asarray(counts, dtype=np.int64).reshape(-1)
        if self.counts.size != self.columns[0].size:
            raise ValueError("counts column must match the key columns in length")
        self.deduped = bool(deduped) or self.columns[0].size <= 1

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, arity: int = 2) -> "CountedPairBlock":
        return cls(tuple(_EMPTY for _ in range(max(int(arity), 1))), _EMPTY, deduped=True)

    @classmethod
    def from_expansion(cls, block: PairBlock) -> "CountedPairBlock":
        """Wrap a raw expansion block: every row is one witness (count 1)."""
        return cls(block.columns, np.ones(len(block), dtype=np.int64))

    @classmethod
    def from_dict(cls, counts: Dict[HeadTuple, int], arity: int = 2) -> "CountedPairBlock":
        """Boundary conversion from a ``{tuple: count}`` mapping."""
        if not counts:
            return cls.empty(arity)
        keys = np.asarray(list(counts.keys()), dtype=np.int64)
        if keys.ndim == 1:
            keys = keys.reshape(-1, 1)
        values = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
        return cls(tuple(np.ascontiguousarray(keys[:, j]) for j in range(keys.shape[1])),
                   values, deduped=True)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        return int(sum(c.nbytes for c in self.columns) + self.counts.nbytes)

    def __len__(self) -> int:
        return int(self.columns[0].size)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return f"CountedPairBlock(rows={len(self)}, arity={self.arity})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CountedPairBlock):
            a, b = self.dedup(), other.dedup()
            return (
                a.arity == b.arity
                and np.array_equal(a.pairs_block().as_array(), b.pairs_block().as_array())
                and np.array_equal(a.counts, b.counts)
            )
        if isinstance(other, dict):
            return self.to_dict() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def pairs_block(self) -> PairBlock:
        """The key columns as a plain :class:`PairBlock` (counts dropped)."""
        return PairBlock(self.columns, deduped=self.deduped)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def concat(self, other: "CountedPairBlock") -> "CountedPairBlock":
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        if self.arity != other.arity:
            raise ValueError("cannot concatenate blocks of different arity")
        return CountedPairBlock(
            tuple(np.concatenate([a, b]) for a, b in zip(self.columns, other.columns)),
            np.concatenate([self.counts, other.counts]),
        )

    def dedup(self, reduce: str = "sum") -> "CountedPairBlock":
        """Aggregate counts per distinct key row.

        ``reduce="sum"`` adds witness counts (the dedup-merge semantics:
        light and heavy witness populations are disjoint, so their counts add
        exactly); ``reduce="max"`` keeps the largest (used when duplicated
        rows are known to carry identical counts, e.g. after canonicalising
        unordered pairs).  Aggregation is ``np.ufunc.at`` over the packed
        keys — no Python dict is ever built.
        """
        if reduce not in ("sum", "max"):
            raise ValueError(f"unknown reduce mode {reduce!r}")
        if len(self) <= 1:
            return self
        layout = _pack_layout([self.columns])
        if layout is not None:
            keys = _pack(self.columns, *layout)
            _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
            out_columns = tuple(c[first] for c in self.columns)
        else:
            _, first, inverse = np.unique(
                self.as_array(), axis=0, return_index=True, return_inverse=True
            )
            out_columns = tuple(c[first] for c in self.columns)
        inverse = inverse.reshape(-1)
        if reduce == "sum":
            aggregated = np.zeros(first.size, dtype=np.int64)
            np.add.at(aggregated, inverse, self.counts)
        else:
            # Seed with each key's first count so non-positive counts
            # aggregate correctly (maximum.at is idempotent on the seed row).
            aggregated = self.counts[first].copy()
            np.maximum.at(aggregated, inverse, self.counts)
        return CountedPairBlock(out_columns, aggregated, deduped=True)

    def filter(self, mask: np.ndarray) -> "CountedPairBlock":
        """Rows selected by a boolean mask (e.g. ``counts >= c``)."""
        mask = np.asarray(mask, dtype=bool)
        return CountedPairBlock(
            tuple(c[mask] for c in self.columns), self.counts[mask], deduped=self.deduped
        )

    def as_array(self) -> np.ndarray:
        """Key rows as an ``(n, k)`` array (counts not included)."""
        return self.pairs_block().as_array()

    # ------------------------------------------------------------------ #
    # Boundary conversion
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[HeadTuple, int]:
        """Materialise as ``{tuple: count}`` (API boundary only).

        A block that is already aggregated (``deduped``) converts directly —
        no second unique pass at the boundary.
        """
        block = self if self.deduped else self.dedup()
        if block.arity == 2:
            keys = zip(block.columns[0].tolist(), block.columns[1].tolist())
            return dict(zip(keys, block.counts.tolist()))
        return dict(zip(map(tuple, block.as_array().tolist()), block.counts.tolist()))

    def to_set(self) -> set:
        """Distinct key rows as a Python set of tuples (API boundary only)."""
        block = self.pairs_block()
        return block.to_set() if self.deduped else block.dedup().to_set()
