"""A small catalog of named relations with cached statistics.

Query-level entry points (the engines in :mod:`repro.engines` and the bench
harness) operate over a :class:`Catalog` so that index construction and
degree statistics are shared between repeated runs, mirroring how the paper's
prototype indexes every relation once during preprocessing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.data.indexes import DegreeStatistics
from repro.data.relation import Relation, RelationStats


class CatalogError(KeyError):
    """Raised when a relation is missing from the catalog."""


class Catalog:
    """A named collection of relations and their cached statistics."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._statistics: Dict[str, DegreeStatistics] = {}

    def add(self, relation: Relation, name: Optional[str] = None) -> str:
        """Register a relation; returns the name under which it is stored."""
        key = name or relation.name
        self._relations[key] = relation
        self._statistics.pop(key, None)
        return key

    def get(self, name: str) -> Relation:
        """Fetch a relation by name."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise CatalogError(f"unknown relation {name!r}") from exc

    def remove(self, name: str) -> None:
        """Drop a relation and any cached statistics."""
        self._relations.pop(name, None)
        self._statistics.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list:
        """Sorted list of relation names."""
        return sorted(self._relations)

    def statistics(self, name: str) -> DegreeStatistics:
        """Degree statistics of one relation (built once, then cached)."""
        if name not in self._statistics:
            self._statistics[name] = DegreeStatistics.from_relation(self.get(name))
        return self._statistics[name]

    def stats_table(self) -> Dict[str, RelationStats]:
        """Table-2-style statistics for every relation in the catalog."""
        return {name: rel.stats() for name, rel in sorted(self._relations.items())}
