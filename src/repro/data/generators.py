"""Synthetic dataset generators.

The paper evaluates on six real-world datasets (Table 2): DBLP, RoadNet,
Jokes, Words, Protein and Image.  Those datasets are not redistributable and
are far too large for a laptop-scale reproduction, so this module provides
parameterised generators that reproduce the *shape* of each dataset — the
number of sets, domain size, average / min / max set size and the degree skew
— at a configurable scale.  The relative behaviour of every algorithm in the
paper is governed by exactly these properties (degree skew, density, and the
ratio between the full join size and the projected output size), so the
substitution preserves the qualitative results.

Every generator is deterministic given its ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.data.relation import Relation


@dataclass(frozen=True)
class DatasetProfile:
    """The shape parameters of one synthetic dataset.

    Attributes mirror Table 2 of the paper: target number of (set, element)
    tuples, number of sets, domain (element) cardinality, and the min/max set
    sizes.  ``skew`` controls the Zipf exponent of element popularity, and
    ``density`` the within-community edge probability for clustered datasets.
    """

    name: str
    num_tuples: int
    num_sets: int
    domain_size: int
    min_set_size: int
    max_set_size: int
    skew: float = 1.0
    density: float = 0.0
    kind: str = "zipf"  # one of: zipf, sparse, roadnet, community


# Scaled-down profiles of the paper's six datasets.  The paper's sizes (10M to
# 900M tuples) are divided down to keep single runs in the seconds range; the
# set-size ratios and skew are preserved.
PAPER_PROFILES: Dict[str, DatasetProfile] = {
    "dblp": DatasetProfile(
        name="dblp", num_tuples=60_000, num_sets=9_000, domain_size=18_000,
        min_set_size=1, max_set_size=100, skew=0.8, kind="sparse",
    ),
    "roadnet": DatasetProfile(
        name="roadnet", num_tuples=15_000, num_sets=10_000, domain_size=10_000,
        min_set_size=1, max_set_size=6, skew=0.0, kind="roadnet",
    ),
    "jokes": DatasetProfile(
        name="jokes", num_tuples=120_000, num_sets=700, domain_size=500,
        min_set_size=30, max_set_size=450, skew=1.1, kind="zipf",
    ),
    "words": DatasetProfile(
        name="words", num_tuples=150_000, num_sets=3_000, domain_size=1_500,
        min_set_size=1, max_set_size=400, skew=1.2, kind="zipf",
    ),
    "protein": DatasetProfile(
        name="protein", num_tuples=180_000, num_sets=1_800, domain_size=1_600,
        min_set_size=20, max_set_size=550, skew=0.9, kind="community",
        density=0.6,
    ),
    "image": DatasetProfile(
        name="image", num_tuples=160_000, num_sets=2_000, domain_size=1_400,
        min_set_size=100, max_set_size=480, skew=0.4, kind="community",
        density=0.7,
    ),
}


def list_profiles() -> List[str]:
    """Names of the built-in dataset profiles, in the paper's Table 2 order."""
    return ["dblp", "roadnet", "jokes", "words", "protein", "image"]


def scaled_profile(name: str, scale: float) -> DatasetProfile:
    """Return a built-in profile scaled by ``scale`` (tuples / sets / domain)."""
    base = PAPER_PROFILES[name]
    factor = max(scale, 1e-3)
    return DatasetProfile(
        name=base.name,
        num_tuples=max(int(base.num_tuples * factor), 10),
        num_sets=max(int(base.num_sets * factor), 4),
        domain_size=max(int(base.domain_size * factor), 4),
        min_set_size=base.min_set_size,
        max_set_size=max(int(base.max_set_size * min(1.0, factor * 2)), base.min_set_size + 1),
        skew=base.skew,
        density=base.density,
        kind=base.kind,
    )


# --------------------------------------------------------------------------- #
# Low level generators
# --------------------------------------------------------------------------- #
def zipf_bipartite(
    num_tuples: int,
    num_sets: int,
    domain_size: int,
    skew: float = 1.0,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """Bipartite relation where element popularity follows a Zipf law.

    Element ``j`` (rank ``j``) is sampled with probability proportional to
    ``1 / (j+1)^skew``; set ids are sampled with a milder skew so that set
    sizes vary but no single set dominates.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, max(skew, 0.0))
    weights /= weights.sum()
    elements = rng.choice(domain_size, size=num_tuples, p=weights)
    set_ranks = np.arange(1, num_sets + 1, dtype=np.float64)
    set_weights = 1.0 / np.power(set_ranks, max(skew, 0.0) * 0.5)
    set_weights /= set_weights.sum()
    sets = rng.choice(num_sets, size=num_tuples, p=set_weights)
    return Relation.from_arrays(sets, elements, name=name)


def uniform_bipartite(
    num_tuples: int,
    num_sets: int,
    domain_size: int,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """Uniformly random bipartite relation (no skew)."""
    rng = np.random.default_rng(seed)
    sets = rng.integers(0, num_sets, size=num_tuples)
    elements = rng.integers(0, domain_size, size=num_tuples)
    return Relation.from_arrays(sets, elements, name=name)


def sparse_bipartite(
    num_tuples: int,
    num_sets: int,
    domain_size: int,
    max_set_size: int,
    skew: float = 0.8,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """Sparse DBLP-like bipartite relation: many small sets, a few large ones.

    Set sizes follow a truncated Pareto distribution; elements are drawn with
    a mild Zipf skew so a handful of "popular venues" exist.
    """
    rng = np.random.default_rng(seed)
    raw_sizes = rng.pareto(1.5, size=num_sets) + 1.0
    sizes = np.clip(raw_sizes.astype(np.int64), 1, max_set_size)
    total = int(sizes.sum())
    if total > num_tuples:
        sizes = np.maximum((sizes * (num_tuples / total)).astype(np.int64), 1)
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, max(skew, 0.0))
    weights /= weights.sum()
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for set_id, size in enumerate(sizes):
        elems = rng.choice(domain_size, size=int(size), p=weights)
        xs.append(np.full(int(size), set_id, dtype=np.int64))
        ys.append(elems.astype(np.int64))
    return Relation.from_arrays(np.concatenate(xs), np.concatenate(ys), name=name)


def roadnet_graph(
    num_nodes: int,
    avg_degree: float = 1.5,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """Road-network-like relation: near-planar, tiny bounded degrees.

    Nodes are placed on a grid and connected to a few nearby nodes, which
    reproduces the RoadNet profile (average degree about 1.5, max about 20).
    """
    rng = np.random.default_rng(seed)
    side = max(int(np.sqrt(num_nodes)), 2)
    xs: List[int] = []
    ys: List[int] = []
    for node in range(num_nodes):
        row, col = divmod(node, side)
        # connect to right and down neighbours (grid backbone)
        if col + 1 < side and node + 1 < num_nodes:
            xs.append(node)
            ys.append(node + 1)
        if row + 1 < side and node + side < num_nodes:
            xs.append(node)
            ys.append(node + side)
        # occasional shortcut edge
        extra = rng.random()
        if extra < max(avg_degree - 1.5, 0.0):
            target = int(rng.integers(0, num_nodes))
            if target != node:
                xs.append(node)
                ys.append(target)
    return Relation.from_arrays(xs, ys, name=name)


def community_bipartite(
    num_sets: int,
    domain_size: int,
    num_communities: int = 8,
    density: float = 0.5,
    background_noise: float = 0.002,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """Dense community-structured bipartite relation (Image/Protein-like).

    Sets and elements are split into ``num_communities`` groups; within a
    group each (set, element) pair is present with probability ``density``,
    and across groups with probability ``background_noise``.  This is also
    the instance family from Example 1 of the paper, where the full join is
    Theta(N^{3/2}) but the projected output is only Theta(N).
    """
    rng = np.random.default_rng(seed)
    set_comm = rng.integers(0, num_communities, size=num_sets)
    elem_comm = rng.integers(0, num_communities, size=domain_size)
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for comm in range(num_communities):
        comm_sets = np.where(set_comm == comm)[0]
        comm_elems = np.where(elem_comm == comm)[0]
        if comm_sets.size == 0 or comm_elems.size == 0:
            continue
        mask = rng.random((comm_sets.size, comm_elems.size)) < density
        rows, cols = np.nonzero(mask)
        xs.append(comm_sets[rows])
        ys.append(comm_elems[cols])
    # sparse background noise across communities
    noise_count = int(background_noise * num_sets * domain_size)
    if noise_count:
        xs.append(rng.integers(0, num_sets, size=noise_count))
        ys.append(rng.integers(0, domain_size, size=noise_count))
    if not xs:
        return Relation.empty(name)
    return Relation.from_arrays(np.concatenate(xs), np.concatenate(ys), name=name)


def example1_instance(n: int, num_communities: int = 4, seed: int = 0) -> Relation:
    """The motivating instance of paper Example 1.

    A social graph with a constant number of communities of ~sqrt(N) users
    each, with most intra-community pairs connected: the full join of
    ``R(x,y), R(z,y)`` is Theta(N^{3/2}) while the projected output is
    Theta(N).
    """
    users_per_comm = max(int(np.sqrt(n / max(num_communities, 1))), 2)
    num_users = users_per_comm * num_communities
    return community_bipartite(
        num_sets=num_users,
        domain_size=num_users,
        num_communities=num_communities,
        density=0.8,
        background_noise=0.0,
        seed=seed,
        name="example1",
    )


# --------------------------------------------------------------------------- #
# Profile-driven generation
# --------------------------------------------------------------------------- #
def generate(profile: DatasetProfile, seed: int = 0) -> Relation:
    """Generate a relation from a :class:`DatasetProfile`."""
    if profile.kind == "sparse":
        return sparse_bipartite(
            num_tuples=profile.num_tuples,
            num_sets=profile.num_sets,
            domain_size=profile.domain_size,
            max_set_size=profile.max_set_size,
            skew=profile.skew,
            seed=seed,
            name=profile.name,
        )
    if profile.kind == "roadnet":
        return roadnet_graph(
            num_nodes=profile.num_sets, avg_degree=1.5, seed=seed, name=profile.name
        )
    if profile.kind == "community":
        return community_bipartite(
            num_sets=profile.num_sets,
            domain_size=profile.domain_size,
            num_communities=6,
            density=profile.density,
            seed=seed,
            name=profile.name,
        )
    if profile.kind == "zipf":
        return zipf_bipartite(
            num_tuples=profile.num_tuples,
            num_sets=profile.num_sets,
            domain_size=profile.domain_size,
            skew=profile.skew,
            seed=seed,
            name=profile.name,
        )
    raise ValueError(f"unknown dataset kind {profile.kind!r}")


def generate_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Relation:
    """Generate one of the paper's six datasets (scaled)."""
    if name not in PAPER_PROFILES:
        raise ValueError(
            f"unknown dataset {name!r}; choose one of {list_profiles()}"
        )
    return generate(scaled_profile(name, scale), seed=seed)


def generate_all(scale: float = 1.0, seed: int = 0) -> Dict[str, Relation]:
    """Generate every paper dataset at the given scale."""
    return {name: generate_dataset(name, scale=scale, seed=seed) for name in list_profiles()}
