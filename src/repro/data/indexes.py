"""Degree-statistics indexes used by the cost-based optimizer.

Section 5 of the paper defines three auxiliary indexes that are built in a
single linear pass over an indexed relation and queried with binary search:

* ``count(w_delta)`` — the number of values of a variable ``w`` whose degree
  is at most ``delta``;
* ``sum(x_delta)`` / ``sum(y_delta)`` — the total *deduplication effort* spent
  on light values, i.e. the number of elementary probe operations the
  light-side worst-case-optimal join performs when all values of degree at
  most ``delta`` are treated as light;
* ``cdfx(y_delta)`` — the number of x tuples whose y endpoint has degree at
  most ``delta``.

All three are represented here by :class:`DegreeIndex`, a sorted vector of
per-value degrees together with prefix sums, so any query is O(log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.data.relation import Relation


@dataclass
class DegreeIndex:
    """Sorted per-value degree vector with prefix sums.

    ``degrees`` is sorted ascending.  ``weights`` holds, per value, the
    quantity whose prefix-sum we want (by default the degree itself, but the
    ``sum(y_delta)`` index uses squared inverted-list lengths).
    """

    degrees: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.degrees = np.asarray(self.degrees, dtype=np.int64)
        order = np.argsort(self.degrees, kind="stable")
        self.degrees = self.degrees[order]
        if self.weights is None:
            self.weights = self.degrees.astype(np.float64)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)[order]
        self._prefix = np.concatenate([[0.0], np.cumsum(self.weights)])

    @classmethod
    def from_degree_map(
        cls, degree_map: Mapping[int, int], weights: Mapping[int, float] | None = None
    ) -> "DegreeIndex":
        """Build from ``{value: degree}`` and optional ``{value: weight}``."""
        values = sorted(degree_map)
        degs = np.asarray([degree_map[v] for v in values], dtype=np.int64)
        if weights is None:
            return cls(degs)
        w = np.asarray([weights[v] for v in values], dtype=np.float64)
        return cls(degs, w)

    def count_at_most(self, delta: float) -> int:
        """``count(w_delta)``: number of values with degree <= delta."""
        return int(np.searchsorted(self.degrees, delta, side="right"))

    def count_above(self, delta: float) -> int:
        """Number of values with degree > delta (the heavy values)."""
        return int(self.degrees.size - self.count_at_most(delta))

    def sum_at_most(self, delta: float) -> float:
        """Prefix sum of the weights of values with degree <= delta."""
        return float(self._prefix[self.count_at_most(delta)])

    def sum_above(self, delta: float) -> float:
        """Suffix sum of the weights of values with degree > delta."""
        return float(self._prefix[-1] - self.sum_at_most(delta))

    def total(self) -> float:
        """Sum of all weights."""
        return float(self._prefix[-1])

    def num_values(self) -> int:
        """Number of distinct values indexed."""
        return int(self.degrees.size)

    def max_degree(self) -> int:
        """Largest degree present (0 for an empty index)."""
        return int(self.degrees[-1]) if self.degrees.size else 0

    def quantile_degree(self, q: float) -> int:
        """Degree at quantile ``q`` of the value population (0 <= q <= 1)."""
        if self.degrees.size == 0:
            return 0
        q = min(max(q, 0.0), 1.0)
        pos = min(int(q * (self.degrees.size - 1)), self.degrees.size - 1)
        return int(self.degrees[pos])


@dataclass
class DegreeStatistics:
    """All optimizer indexes for one relation (paper Section 5).

    Attributes
    ----------
    x_index:
        ``count``/``sum`` index over x degrees.  Weight of a value equals its
        degree, so ``sum_at_most(delta)`` is the number of tuples incident to
        light x values.
    y_index:
        ``count`` index over y degrees; weight of value ``b`` is
        ``|L[b]|^2`` which bounds the light-side join work contributed by
        ``b`` (this is the paper's ``sum(y_delta)``).
    y_tuple_cdf:
        ``cdfx(y_delta)``: weight of value ``b`` is ``|L[b]|`` so the prefix
        sum counts tuples whose y endpoint is light.
    """

    x_index: DegreeIndex
    y_index: DegreeIndex
    y_tuple_cdf: DegreeIndex
    num_tuples: int
    domain_x: int
    domain_y: int

    @classmethod
    def from_relation(cls, relation: Relation) -> "DegreeStatistics":
        """Build all indexes from an already-indexed relation."""
        deg_x = relation.degrees_x()
        deg_y = relation.degrees_y()
        x_index = DegreeIndex.from_degree_map(deg_x)
        y_sq_weights = {y: float(d) * float(d) for y, d in deg_y.items()}
        y_index = DegreeIndex.from_degree_map(deg_y, y_sq_weights)
        y_lin_weights = {y: float(d) for y, d in deg_y.items()}
        y_tuple_cdf = DegreeIndex.from_degree_map(deg_y, y_lin_weights)
        return cls(
            x_index=x_index,
            y_index=y_index,
            y_tuple_cdf=y_tuple_cdf,
            num_tuples=len(relation),
            domain_x=int(relation.x_values().size),
            domain_y=int(relation.y_values().size),
        )

    # Optimizer query helpers ------------------------------------------------
    def light_x_count(self, delta: float) -> int:
        """Number of x values with degree <= delta."""
        return self.x_index.count_at_most(delta)

    def heavy_x_count(self, delta: float) -> int:
        """Number of x values with degree > delta."""
        return self.x_index.count_above(delta)

    def light_y_count(self, delta: float) -> int:
        """Number of y values with degree <= delta."""
        return self.y_index.count_at_most(delta)

    def heavy_y_count(self, delta: float) -> int:
        """Number of y values with degree > delta."""
        return self.y_index.count_above(delta)

    def sum_x(self, delta: float) -> float:
        """``sum(x_delta)``: tuples incident to light x values."""
        return self.x_index.sum_at_most(delta)

    def sum_y(self, delta: float) -> float:
        """``sum(y_delta)``: sum of squared inverted-list lengths of light y."""
        return self.y_index.sum_at_most(delta)

    def cdfx_y(self, delta: float) -> float:
        """``cdfx(y_delta)``: tuples whose y endpoint has degree <= delta."""
        return self.y_tuple_cdf.sum_at_most(delta)

    def heavy_dimensions(self, delta_x: float, delta_y: float) -> Tuple[int, int]:
        """Dimensions (heavy x count, heavy y count) of the heavy matrix."""
        return self.heavy_x_count(delta_x), self.heavy_y_count(delta_y)


def build_statistics(relations: Dict[str, Relation]) -> Dict[str, DegreeStatistics]:
    """Build :class:`DegreeStatistics` for every relation in a mapping."""
    return {name: DegreeStatistics.from_relation(rel) for name, rel in relations.items()}
