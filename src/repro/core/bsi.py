"""Boolean set intersection with request batching (Section 3.3 / 7.5).

The workload consists of boolean queries ``Q_ab() = R(a, y), S(b, y)`` — does
set ``a`` of family R intersect set ``b`` of family S? — arriving at ``B``
queries per time unit.  Answering each query in isolation costs ``O(N)``
worst case; the paper's observation is that batching ``C`` queries into a
single relation ``T(x, z)`` and evaluating

``Q_batch(x, z) = R(x, y), S(z, y), T(x, z)``

with the join-project machinery amortises the cost: latency becomes
``C / B`` (time to fill the batch) plus the per-batch processing time divided
over the batch, and far fewer processing units are needed (Proposition 2).

:class:`BooleanSetIntersection` answers single queries and batches;
:class:`BSIBatchScheduler` simulates the arrival process for a whole workload
and reports the average-delay / machine-count trade-off the paper plots in
Figure 6.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.two_path import two_path_join_detailed
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_two_path_filtered
from repro.joins.leapfrog import intersect_sorted

Pair = Tuple[int, int]


@dataclass
class BSIBatchResult:
    """Outcome of evaluating one batch of boolean queries."""

    answers: Dict[Pair, bool]
    processing_seconds: float
    method: str
    batch_size: int

    def positive_pairs(self) -> Set[Pair]:
        """Pairs whose sets do intersect."""
        return {pair for pair, value in self.answers.items() if value}


@dataclass
class BSIWorkloadResult:
    """Aggregate metrics over a whole simulated workload (paper Figure 6)."""

    batch_size: int
    arrival_rate: float
    num_queries: int
    average_delay: float
    average_processing: float
    processing_units: int
    method: str
    per_batch_seconds: List[float] = field(default_factory=list)


class BooleanSetIntersection:
    """Boolean set intersection over two set families R(x, y) and S(z, y)."""

    def __init__(
        self,
        left: Relation,
        right: Relation,
        config: MMJoinConfig = DEFAULT_CONFIG,
    ) -> None:
        self.left = left
        self.right = right
        self.config = config

    # ------------------------------------------------------------------ #
    # Single-query evaluation
    # ------------------------------------------------------------------ #
    def query(self, a: int, b: int) -> bool:
        """Answer one boolean query ``Q_ab`` by intersecting the two sets."""
        ys_a = self.left.neighbors_x(int(a))
        ys_b = self.right.neighbors_x(int(b))
        return bool(intersect_sorted(ys_a, ys_b).size)

    def query_intersection(self, a: int, b: int) -> np.ndarray:
        """The modified query ``Q̄_ab(y)``: return the actual intersection."""
        ys_a = self.left.neighbors_x(int(a))
        ys_b = self.right.neighbors_x(int(b))
        return intersect_sorted(ys_a, ys_b)

    # ------------------------------------------------------------------ #
    # Batched evaluation
    # ------------------------------------------------------------------ #
    def answer_batch(
        self,
        batch: Sequence[Pair],
        use_mmjoin: bool = True,
    ) -> BSIBatchResult:
        """Evaluate a batch of boolean queries at once.

        The batch relation ``T(x, z)`` filters R and S down to the relevant
        sets; the filtered pair is then evaluated with the MMJoin two-path
        algorithm (``use_mmjoin=True``) or the combinatorial intersection
        baseline (``use_mmjoin=False``), and the result is intersected with
        the batch pairs.
        """
        start = time.perf_counter()
        pairs = [(int(a), int(b)) for a, b in batch]
        if not pairs:
            return BSIBatchResult(answers={}, processing_seconds=0.0,
                                  method="mmjoin" if use_mmjoin else "combinatorial",
                                  batch_size=0)
        wanted_a = {a for a, _ in pairs}
        wanted_b = {b for _, b in pairs}
        left_filtered = self.left.restrict_x(wanted_a, name=f"{self.left.name}|T")
        right_filtered = self.right.restrict_x(wanted_b, name=f"{self.right.name}|T")

        if use_mmjoin:
            join = two_path_join_detailed(left_filtered, right_filtered, config=self.config)
            positives = join.pairs
            method = "mmjoin"
        else:
            positives = combinatorial_two_path_filtered(left_filtered, right_filtered, pairs)
            method = "combinatorial"
        answers = {pair: pair in positives for pair in pairs}
        return BSIBatchResult(
            answers=answers,
            processing_seconds=time.perf_counter() - start,
            method=method,
            batch_size=len(pairs),
        )


class BSIBatchScheduler:
    """Simulates a stream of BSI queries served in batches (paper Section 7.5)."""

    def __init__(
        self,
        left: Relation,
        right: Relation,
        arrival_rate: float = 1000.0,
        config: MMJoinConfig = DEFAULT_CONFIG,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.engine = BooleanSetIntersection(left, right, config=config)
        self.arrival_rate = float(arrival_rate)

    def generate_workload(self, num_queries: int, seed: int = 0) -> List[Pair]:
        """Sample query pairs uniformly at random (the paper's workload)."""
        rng = np.random.default_rng(seed)
        left_ids = self.engine.left.x_values()
        right_ids = self.engine.right.x_values()
        if left_ids.size == 0 or right_ids.size == 0:
            return []
        a = rng.choice(left_ids, size=num_queries)
        b = rng.choice(right_ids, size=num_queries)
        return [(int(x), int(z)) for x, z in zip(a, b)]

    def run(
        self,
        workload: Sequence[Pair],
        batch_size: int,
        use_mmjoin: bool = True,
    ) -> BSIWorkloadResult:
        """Serve the workload in fixed-size batches and report average delay.

        The delay of a query is the time it waits for its batch to fill
        (``position_in_batch / arrival_rate`` averaged to ``C / (2B)``) plus
        the batch processing time.  The number of processing units needed to
        keep up is ``ceil(processing_time * arrival_rate / batch_size)``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        per_batch: List[float] = []
        total_delay = 0.0
        num_queries = len(workload)
        for lo in range(0, num_queries, batch_size):
            batch = workload[lo : lo + batch_size]
            outcome = self.engine.answer_batch(batch, use_mmjoin=use_mmjoin)
            per_batch.append(outcome.processing_seconds)
            # Every query in the batch waits for the batch to fill, then for
            # the batch to be processed.
            fill_wait = len(batch) / (2.0 * self.arrival_rate)
            total_delay += (fill_wait + outcome.processing_seconds) * len(batch)
        if not per_batch or num_queries == 0:
            return BSIWorkloadResult(
                batch_size=batch_size, arrival_rate=self.arrival_rate,
                num_queries=0, average_delay=0.0, average_processing=0.0,
                processing_units=0, method="mmjoin" if use_mmjoin else "combinatorial",
            )
        avg_processing = float(np.mean(per_batch))
        processing_units = max(
            int(math.ceil(avg_processing * self.arrival_rate / batch_size)), 1
        )
        return BSIWorkloadResult(
            batch_size=batch_size,
            arrival_rate=self.arrival_rate,
            num_queries=num_queries,
            average_delay=total_delay / num_queries,
            average_processing=avg_processing,
            processing_units=processing_units,
            method="mmjoin" if use_mmjoin else "combinatorial",
            per_batch_seconds=per_batch,
        )

    def sweep_batch_sizes(
        self,
        workload: Sequence[Pair],
        batch_sizes: Iterable[int],
        use_mmjoin: bool = True,
    ) -> List[BSIWorkloadResult]:
        """Run the workload for several batch sizes (the Figure 6 sweep)."""
        return [
            self.run(workload, batch_size=size, use_mmjoin=use_mmjoin)
            for size in batch_sizes
        ]


def theoretical_latency(n: int, arrival_rate: float, batch_size: int) -> float:
    """Average latency predicted by Section 3.3: ``N/C^(2/3) + C/B`` (omega=2)."""
    c = max(float(batch_size), 1.0)
    return float(n) / (c ** (2.0 / 3.0)) + c / float(arrival_rate)


def optimal_batch_size(n: int, arrival_rate: float) -> float:
    """Latency-minimising batch size ``C = (B * N)^(3/5)`` from Proposition 2."""
    return (float(arrival_rate) * float(n)) ** (3.0 / 5.0)


def machines_needed(n: int, arrival_rate: float) -> float:
    """Processing units required by Proposition 2: ``(B * N)^(3/5)``."""
    return (float(arrival_rate) * float(n)) ** (3.0 / 5.0)
