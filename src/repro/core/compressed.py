"""Compressed (factorized) representation of a join-project result.

The paper's graph-analytics application (Section 1 and Section 4) points out
that the heavy part of the output never needs to be materialised: the two
heavy adjacency matrices *are* a factorized representation of all heavy
output pairs, exactly like the compressed graph representations of
Xirogiannopoulos & Deshpande that the paper cites — but obtained with
worst-case guarantees instead of heuristics.

:class:`CompressedJoinView` keeps

* the light output pairs explicitly (they are output-sensitive in size), and
* the heavy residual as the pair of heavy adjacency matrices (size bounded by
  the matrix dimensions, independent of how many output pairs they encode),

and supports membership tests, witness counting, per-vertex neighbourhood
queries and full enumeration without ever materialising the heavy pairs.
This is the data structure one would hand to a graph-analytics engine that
consumes the co-author / co-occurrence view lazily.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import CostBasedOptimizer
from repro.core.partitioning import partition_two_path
from repro.data.relation import Relation
from repro.joins.generic_join import generic_two_path_project
from repro.matmul import dense as dense_mm

Pair = Tuple[int, int]


@dataclass
class CompressedJoinView:
    """Factorized view of ``pi_{x,z}(R |><| S)``.

    Attributes
    ----------
    light_pairs:
        Explicitly materialised pairs discovered by the light sub-joins.
    left_matrix / right_matrix:
        Heavy adjacency matrices ``M1`` (heavy x  x heavy y) and ``M2``
        (heavy y x heavy z); their boolean product encodes the heavy pairs.
    heavy_rows / heavy_cols:
        The actual x / z values labelling the matrix dimensions.
    """

    light_pairs: Set[Pair]
    left_matrix: np.ndarray
    right_matrix: np.ndarray
    heavy_rows: np.ndarray
    heavy_cols: np.ndarray
    delta1: int = 0
    delta2: int = 0
    build_seconds: float = 0.0
    _row_index: Dict[int, int] = field(default_factory=dict, repr=False)
    _col_index: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._row_index = {int(v): i for i, v in enumerate(self.heavy_rows)}
        self._col_index = {int(v): j for j, v in enumerate(self.heavy_cols)}

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    def stored_cells(self) -> int:
        """Number of stored entries: explicit pairs + matrix cells.

        This is the quantity the paper's compression argument bounds: the
        matrices occupy ``|heavy_x| * |heavy_y| + |heavy_y| * |heavy_z|``
        cells regardless of how many (possibly quadratically many) output
        pairs they represent.
        """
        return (
            len(self.light_pairs)
            + int(self.left_matrix.size)
            + int(self.right_matrix.size)
        )

    def materialized_size(self) -> int:
        """Number of distinct output pairs the view represents."""
        return len(self.light_pairs | self.heavy_pairs())

    def compression_ratio(self) -> float:
        """Materialised size divided by stored cells (>= 1 means it pays off)."""
        stored = max(self.stored_cells(), 1)
        return self.materialized_size() / stored

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def witness_count(self, x: int, z: int) -> int:
        """Number of heavy witnesses connecting ``x`` and ``z`` (0 if none)."""
        row = self._row_index.get(int(x))
        col = self._col_index.get(int(z))
        if row is None or col is None:
            return 0
        return int(self.left_matrix[row] @ self.right_matrix[:, col])

    def contains(self, x: int, z: int) -> bool:
        """Membership test without materialising the heavy part."""
        if (int(x), int(z)) in self.light_pairs:
            return True
        return self.witness_count(x, z) > 0

    def neighbors(self, x: int) -> Set[int]:
        """All z values paired with ``x`` in the view."""
        result = {b for a, b in self.light_pairs if a == int(x)}
        row = self._row_index.get(int(x))
        if row is not None:
            products = self.left_matrix[row] @ self.right_matrix
            result.update(int(self.heavy_cols[j]) for j in np.nonzero(products > 0.5)[0])
        return result

    def heavy_pairs(self) -> Set[Pair]:
        """Materialise (only) the heavy pairs from the factorized form."""
        if self.left_matrix.size == 0 or self.right_matrix.size == 0:
            return set()
        product = dense_mm.count_matmul(self.left_matrix, self.right_matrix)
        return set(dense_mm.nonzero_pairs(product, self.heavy_rows, self.heavy_cols))

    def enumerate(self) -> Iterator[Pair]:
        """Enumerate every output pair (light first, then heavy, deduplicated)."""
        yield from self.light_pairs
        for pair in self.heavy_pairs():
            if pair not in self.light_pairs:
                yield pair

    def __contains__(self, pair: Pair) -> bool:
        return self.contains(pair[0], pair[1])

    def __len__(self) -> int:
        return self.materialized_size()


def build_compressed_view(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> CompressedJoinView:
    """Build a :class:`CompressedJoinView` of ``pi_{x,z}(left |><| right)``.

    The same degree partitioning as Algorithm 1 is used, but instead of
    multiplying the heavy matrices the view keeps them factorized.  Degree
    thresholds come from ``config`` or the cost-based optimizer.
    """
    start = time.perf_counter()
    reduced_left = left.semijoin_y(right, name=left.name)
    reduced_right = right.semijoin_y(left, name=right.name)
    if len(reduced_left) == 0 or len(reduced_right) == 0:
        return CompressedJoinView(
            light_pairs=set(),
            left_matrix=np.zeros((0, 0), dtype=np.float32),
            right_matrix=np.zeros((0, 0), dtype=np.float32),
            heavy_rows=np.empty(0, dtype=np.int64),
            heavy_cols=np.empty(0, dtype=np.int64),
            build_seconds=time.perf_counter() - start,
        )

    if config.delta1 is not None and config.delta2 is not None:
        delta1, delta2 = int(config.delta1), int(config.delta2)
    else:
        decision = CostBasedOptimizer(config=config).choose_two_path(
            reduced_left, reduced_right
        )
        if decision.strategy == "mmjoin":
            delta1, delta2 = decision.delta1, decision.delta2
        else:
            # Everything is light: the view is just the explicit output.
            pairs = generic_two_path_project(reduced_left, reduced_right)
            return CompressedJoinView(
                light_pairs=pairs,
                left_matrix=np.zeros((0, 0), dtype=np.float32),
                right_matrix=np.zeros((0, 0), dtype=np.float32),
                heavy_rows=np.empty(0, dtype=np.int64),
                heavy_cols=np.empty(0, dtype=np.int64),
                build_seconds=time.perf_counter() - start,
            )

    partition = partition_two_path(reduced_left, reduced_right, delta1, delta2)
    light_pairs: Set[Pair] = set()
    if len(partition.r_light):
        light_pairs |= _probe(partition.r_light, reduced_right, flip=False)
    if len(partition.s_light):
        light_pairs |= _probe(partition.s_light, reduced_left, flip=True)

    rows, mids, cols = partition.heavy_x, partition.heavy_y, partition.heavy_z
    if rows.size and mids.size and cols.size:
        left_matrix = dense_mm.build_adjacency(partition.r_heavy, rows, mids)
        right_matrix = dense_mm.build_adjacency(partition.s_heavy, cols, mids).T
    else:
        left_matrix = np.zeros((0, 0), dtype=np.float32)
        right_matrix = np.zeros((0, 0), dtype=np.float32)
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)

    return CompressedJoinView(
        light_pairs=light_pairs,
        left_matrix=left_matrix,
        right_matrix=right_matrix,
        heavy_rows=rows,
        heavy_cols=cols,
        delta1=delta1,
        delta2=delta2,
        build_seconds=time.perf_counter() - start,
    )


def _probe(probe_side: Relation, other: Relation, flip: bool) -> Set[Pair]:
    output: Set[Pair] = set()
    other_index = other.index_y()
    for x, y in zip(probe_side.xs, probe_side.ys):
        partners = other_index.get(int(y))
        if partners is None:
            continue
        xi = int(x)
        for z in partners:
            output.add((int(z), xi) if flip else (xi, int(z)))
    return output
