"""Cost-based optimizer for MMJoin (Algorithm 3 of the paper).

The optimizer decides, for a given input pair of relations,

* whether to bother partitioning at all — when the full join is no larger
  than ``full_join_factor * |D|`` (the paper uses 20x) the plain
  worst-case-optimal join wins, and
* when partitioning, which degree thresholds ``delta1`` / ``delta2`` minimise
  the estimated total running time.

The estimate combines the degree-statistics indexes of Section 5
(``count``/``sum``/``cdfx``), a handful of per-operation constants
(:class:`CostConstants`, the paper's ``T_s``, ``T_m``, ``T_I``) and the
calibrated matrix-multiplication cost model ``M_hat``.

The search mirrors the paper's: start from ``delta1 = N``, shrink it
geometrically, derive ``delta2 = N * delta1 / |OUT|`` from the balancing
condition, and stop as soon as the estimated total cost stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.estimation import estimate_output_size, estimate_star_output_size
from repro.data.indexes import DegreeStatistics
from repro.data.relation import Relation
from repro.matmul.cost_model import MatMulCostModel

# Hard cap on the star grid search, mirroring the two-path search's 200-step
# bound; the power-of-two grid is quadratic in log(max_degree) so this is
# only reached on extremely skewed inputs.
STAR_SEARCH_CAP = 200


@dataclass(frozen=True)
class CostConstants:
    """Per-operation time constants (seconds), the paper's Table 1.

    ``sequential_access`` is ``T_s`` (std::vector scan), ``allocation`` is
    ``T_m`` (per matrix cell allocated / written), ``random_insert`` is
    ``T_I`` (random access + insert during light-side dedup).
    """

    sequential_access: float = 2.0e-9
    allocation: float = 4.0e-9
    random_insert: float = 5.0e-8


@dataclass(frozen=True)
class OptimizerDecision:
    """The optimizer's verdict for one join.

    ``strategy`` is ``"wcoj"`` (plain worst-case optimal join) or
    ``"mmjoin"`` (light/heavy decomposition with the chosen thresholds).
    """

    strategy: str
    delta1: int
    delta2: int
    estimated_cost: float
    estimated_output: float
    full_join_size: int
    light_cost: float = 0.0
    heavy_cost: float = 0.0
    search_steps: int = 0


@dataclass
class CostBasedOptimizer:
    """Chooses evaluation strategy and degree thresholds (paper Algorithm 3)."""

    config: MMJoinConfig = DEFAULT_CONFIG
    constants: CostConstants = field(default_factory=CostConstants)
    matmul_model: MatMulCostModel = field(default_factory=MatMulCostModel)

    # ------------------------------------------------------------------ #
    # Two-path query
    # ------------------------------------------------------------------ #
    def choose_two_path(self, left: Relation, right: Relation) -> OptimizerDecision:
        """Pick the strategy and thresholds for ``pi_{x,z}(R |><| S)``."""
        n = max(len(left), len(right), 1)
        estimate = estimate_output_size(left, right)
        out_join = estimate.full_join_size
        if out_join <= self.config.full_join_factor * n:
            return OptimizerDecision(
                strategy="wcoj",
                delta1=0,
                delta2=0,
                estimated_cost=self._wcoj_cost(out_join, n),
                estimated_output=estimate.estimate,
                full_join_size=out_join,
            )

        stats_left = DegreeStatistics.from_relation(left)
        stats_right = DegreeStatistics.from_relation(right)
        out_estimate = max(estimate.estimate, 1.0)

        best: Optional[Tuple[float, int, int, float, float]] = None
        prev_total = float("inf")
        delta1 = float(max(stats_left.y_index.max_degree(), stats_right.y_index.max_degree(), 1))
        steps = 0
        while delta1 >= 1.0 and steps < 200:
            steps += 1
            delta2 = max(n * delta1 / out_estimate, 1.0)
            light = self._light_cost(stats_left, stats_right, delta1, delta2)
            heavy = self._heavy_cost(stats_left, stats_right, delta1, delta2)
            total = light + heavy
            if best is None or total < best[0]:
                best = (total, int(round(delta1)), int(round(delta2)), light, heavy)
            if total > prev_total:
                # Cost started growing again: the previous iterate was the minimum.
                break
            prev_total = total
            delta1 *= self.config.optimizer_shrink

        assert best is not None
        total, d1, d2, light, heavy = best
        wcoj_cost = self._wcoj_cost(out_join, n)
        if wcoj_cost <= total:
            return OptimizerDecision(
                strategy="wcoj",
                delta1=0,
                delta2=0,
                estimated_cost=wcoj_cost,
                estimated_output=out_estimate,
                full_join_size=out_join,
                search_steps=steps,
            )
        return OptimizerDecision(
            strategy="mmjoin",
            delta1=max(d1, 1),
            delta2=max(d2, 1),
            estimated_cost=total,
            estimated_output=out_estimate,
            full_join_size=out_join,
            light_cost=light,
            heavy_cost=heavy,
            search_steps=steps,
        )

    # ------------------------------------------------------------------ #
    # Star query
    # ------------------------------------------------------------------ #
    def choose_star(self, relations: Sequence[Relation]) -> OptimizerDecision:
        """Pick the strategy and thresholds for the star query.

        The cost formula of Section 3.2 —
        ``N * delta1^(k-1) + |OUT| * delta2 + M((N/delta2)^ceil(k/2), N/delta1,
        (N/delta2)^floor(k/2))`` — is minimised by a coarse grid search over
        power-of-two thresholds, which is sufficient because the formula is
        smooth and the thresholds only enter logarithmically.
        """
        k = len(relations)
        n = max((len(r) for r in relations), default=1)
        estimate = estimate_star_output_size(relations)
        out_join = estimate.full_join_size
        if out_join <= self.config.full_join_factor * n or k < 2:
            return OptimizerDecision(
                strategy="wcoj",
                delta1=0,
                delta2=0,
                estimated_cost=self._wcoj_cost(out_join, n),
                estimated_output=estimate.estimate,
                full_join_size=out_join,
            )
        out_estimate = max(estimate.estimate, 1.0)
        max_degree = max(
            max((d for d in rel.degrees_y().values()), default=1) for rel in relations
        )
        candidates = _power_of_two_grid(max_degree)
        best: Optional[Tuple[float, int, int]] = None
        seen: set = set()
        steps = 0
        capped = False
        for delta1 in candidates:
            prev_total = float("inf")
            for delta2 in candidates:
                # The grid may repeat values (and callers may register custom
                # grids); evaluate each (delta1, delta2) pair exactly once.
                pair = (delta1, delta2)
                if pair in seen:
                    continue
                seen.add(pair)
                if steps >= STAR_SEARCH_CAP:
                    capped = True
                    break
                steps += 1
                light = float(n) * (float(delta1) ** (k - 1)) * self.constants.random_insert
                head = out_estimate * float(delta2) * self.constants.random_insert
                rows = (n / delta2) ** ((k + 1) // 2)
                cols = (n / delta2) ** (k // 2)
                mids = n / delta1
                heavy = self.matmul_model.estimate(
                    int(max(rows, 1)), int(max(mids, 1)), int(max(cols, 1)),
                    cores=self.config.cores,
                ) + self.matmul_model.estimate_construction(
                    int(max(rows, 1)), int(max(mids, 1)), int(max(cols, 1)),
                    cores=self.config.cores,
                )
                total = light + head + heavy
                if best is None or total < best[0]:
                    best = (total, delta1, delta2)
                if total > prev_total:
                    # Cost started growing again along this delta2 row; the
                    # previous iterate was the row minimum (the early-exit
                    # mirror of the two-path search).
                    break
                prev_total = total
            if capped:
                break
        assert best is not None
        total, d1, d2 = best
        return OptimizerDecision(
            strategy="mmjoin",
            delta1=d1,
            delta2=d2,
            estimated_cost=total,
            estimated_output=out_estimate,
            full_join_size=out_join,
            search_steps=steps,
        )

    # ------------------------------------------------------------------ #
    # Cost terms
    # ------------------------------------------------------------------ #
    def _wcoj_cost(self, full_join_size: int, n: int) -> float:
        """Cost of the plain worst-case optimal join + dedup."""
        return (full_join_size + n) * self.constants.random_insert

    def _light_cost(
        self,
        stats_left: DegreeStatistics,
        stats_right: DegreeStatistics,
        delta1: float,
        delta2: float,
    ) -> float:
        """Estimated cost of the light sub-joins (paper line 10-11 of Alg. 3).

        ``sum(y_delta1)`` bounds the expansions caused by light witnesses,
        ``sum(x_delta2)`` the tuples incident to light head values (each of
        which is expanded at most ``delta1``-fold on the other side), and
        ``cdfx(y_delta1)`` the per-tuple scanning effort.
        """
        c = self.constants
        light_witness_work = stats_left.sum_y(delta1) + stats_right.sum_y(delta1)
        light_head_work = (
            stats_left.sum_x(delta2) + stats_right.sum_x(delta2)
        ) * max(delta1, 1.0)
        scan_work = stats_left.cdfx_y(delta1) + stats_right.cdfx_y(delta1)
        alloc_work = stats_left.domain_x + stats_right.domain_x
        return (
            c.random_insert * (light_witness_work + light_head_work)
            + c.sequential_access * scan_work
            + c.allocation * alloc_work
        )

    def _heavy_cost(
        self,
        stats_left: DegreeStatistics,
        stats_right: DegreeStatistics,
        delta1: float,
        delta2: float,
    ) -> float:
        """Estimated cost of the heavy matrix product (paper line 12-13)."""
        u = stats_left.heavy_x_count(delta2)
        v = max(stats_left.heavy_y_count(delta1), stats_right.heavy_y_count(delta1))
        w = stats_right.heavy_x_count(delta2)
        if min(u, v, w) == 0:
            return 0.0
        multiply = self.matmul_model.estimate(u, v, w, cores=self.config.cores)
        construct = self.matmul_model.estimate_construction(u, v, w, cores=self.config.cores)
        return multiply + construct


def _power_of_two_grid(max_value: int) -> List[int]:
    """Powers of two from 1 up to (and including one past) ``max_value``."""
    grid = [1]
    while grid[-1] < max(int(max_value), 1):
        grid.append(grid[-1] * 2)
    return grid
