"""The paper's core contribution: output-sensitive join-project via matrix multiplication."""

from repro.core.config import MMJoinConfig
from repro.core.partitioning import TwoPathPartition, StarPartition, partition_two_path, partition_star
from repro.core.estimation import estimate_output_size, exact_full_join_size
from repro.core.two_path import MMJoinResult, two_path_join, two_path_join_detailed, two_path_join_counts
from repro.core.star import StarJoinResult, star_join, star_join_detailed
from repro.core.optimizer import CostBasedOptimizer, OptimizerDecision
from repro.core.bsi import BooleanSetIntersection, BSIBatchScheduler, BSIWorkloadResult
from repro.core.compressed import CompressedJoinView, build_compressed_view
from repro.core import theory

__all__ = [
    "MMJoinConfig",
    "TwoPathPartition",
    "StarPartition",
    "partition_two_path",
    "partition_star",
    "estimate_output_size",
    "exact_full_join_size",
    "MMJoinResult",
    "two_path_join",
    "two_path_join_detailed",
    "two_path_join_counts",
    "StarJoinResult",
    "star_join",
    "star_join_detailed",
    "CostBasedOptimizer",
    "OptimizerDecision",
    "BooleanSetIntersection",
    "BSIBatchScheduler",
    "BSIWorkloadResult",
    "CompressedJoinView",
    "build_compressed_view",
    "theory",
]
