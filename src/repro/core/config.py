"""Configuration knobs for the MMJoin algorithms.

All tunables of the paper's prototype are gathered in one immutable dataclass
so experiments (and the ablation benchmarks) can state exactly which variant
they run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


MATRIX_BACKENDS = ("dense", "sparse", "blocked", "strassen", "auto")


def _is_registered_backend(name: str) -> bool:
    """Whether ``name`` is a custom backend in the default matmul registry.

    Imported lazily: the registry module itself depends on this one, and the
    built-in names short-circuit before this is ever consulted.
    """
    try:
        from repro.matmul.registry import default_registry
    except ImportError:  # pragma: no cover - registry is part of the package
        return False
    return name in default_registry()
DEDUP_STRATEGIES = ("hash", "sort", "counter", "auto")

EXTRACT_MODES = ("auto", "full", "tiled", "adaptive", "core")


@dataclass(frozen=True)
class MMJoinConfig:
    """Tunables of the MMJoin evaluation pipeline.

    Attributes
    ----------
    delta1:
        Degree threshold for the join variable ``y``.  ``None`` lets the
        cost-based optimizer choose.
    delta2:
        Degree threshold for the head variables (``x`` / ``z`` / ``x_i``).
        ``None`` lets the optimizer choose.
    full_join_factor:
        If the full join is at most ``full_join_factor * |D|`` the optimizer
        skips partitioning and evaluates the plain worst-case optimal join
        (the paper uses 20).
    matrix_backend:
        A backend name registered in the matmul
        :class:`~repro.matmul.registry.BackendRegistry` (``dense``,
        ``sparse``, ``blocked``, ``strassen``) or ``auto``, which lets the
        registry pick the cheapest auto-eligible backend via the calibrated
        cost model.
    sparse_density_threshold:
        Legacy density cut-over, retained for the ablation benchmarks that
        sweep it; the registry's cost-model selection supersedes it.
    dedup_strategy:
        Strategy for light-part deduplication (see
        :class:`repro.joins.project.Deduplicator`).
    cores:
        Number of cores the parallel executor may use; also fed to the
        matmul cost model.
    optimizer_shrink:
        Geometric factor by which the optimizer shrinks ``delta1`` per
        iteration (the paper's ``1 - epsilon``).
    max_heavy_dimension:
        Safety cap on the number of heavy values per matrix dimension; keeps
        the dense matrices within memory on very skewed inputs.
    extract_tile_rows:
        Row-band height of the dense backends' tiled non-zero extraction
        (see :mod:`repro.matmul.tiling`).  ``None`` (default) resolves a
        density-aware tile automatically; ``0`` forces the one-shot full
        scan; any positive value pins the band height.
    extract_mode:
        Strategy of the non-zero extraction scan.  ``"auto"`` (default) lets
        the scan pick per product: tiny products go one-shot, everything
        else screens bands adaptively (bailing out to a one-shot scan when
        the observed live-row density says screening is wasted).  ``"full"``
        forces the one-shot scan, ``"tiled"`` forces screening with the
        bail-out disarmed, ``"adaptive"`` forces screening with the bail-out
        armed, and ``"core"`` enables the DIM3 dense-core mapping
        (:mod:`repro.matmul.mapping`): a degree-sorted permutation clusters
        hot rows/columns into a dense core that is extracted one-shot while
        the sparse remainder stays tiled.
    use_optimizer:
        When False and thresholds are given, they are used verbatim; when
        True the cost-based optimizer may still fall back to the plain WCOJ.
    """

    delta1: Optional[int] = None
    delta2: Optional[int] = None
    full_join_factor: float = 20.0
    matrix_backend: str = "auto"
    sparse_density_threshold: float = 0.05
    dedup_strategy: str = "auto"
    cores: int = 1
    optimizer_shrink: float = 0.5
    max_heavy_dimension: int = 20_000
    extract_tile_rows: Optional[int] = None
    extract_mode: str = "auto"
    use_optimizer: bool = True

    def __post_init__(self) -> None:
        if self.matrix_backend not in MATRIX_BACKENDS and not _is_registered_backend(
            self.matrix_backend
        ):
            raise ValueError(
                f"matrix_backend must be one of {MATRIX_BACKENDS} or a backend "
                f"registered in the matmul BackendRegistry, got {self.matrix_backend!r}"
            )
        if self.dedup_strategy not in DEDUP_STRATEGIES:
            raise ValueError(
                f"dedup_strategy must be one of {DEDUP_STRATEGIES}, got {self.dedup_strategy!r}"
            )
        if not (0.0 < self.optimizer_shrink < 1.0):
            raise ValueError("optimizer_shrink must lie strictly between 0 and 1")
        if self.full_join_factor <= 0:
            raise ValueError("full_join_factor must be positive")
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.delta1 is not None and self.delta1 < 1:
            raise ValueError("delta1 must be at least 1")
        if self.delta2 is not None and self.delta2 < 1:
            raise ValueError("delta2 must be at least 1")
        if self.extract_tile_rows is not None and self.extract_tile_rows < 0:
            raise ValueError(
                "extract_tile_rows must be None (auto), 0 (full scan) or positive"
            )
        if self.extract_mode not in EXTRACT_MODES:
            raise ValueError(
                f"extract_mode must be one of {EXTRACT_MODES}, got {self.extract_mode!r}"
            )

    def cache_signature(self) -> tuple:
        """The fields that can change a plan or its derived artifacts.

        Session caches (partitions, matmul operands, plan memos) embed this
        tuple in their keys so evaluations under different knobs never share
        an artifact that depends on those knobs.
        """
        return (
            self.delta1,
            self.delta2,
            self.full_join_factor,
            self.matrix_backend,
            self.dedup_strategy,
            self.cores,
            self.optimizer_shrink,
            self.max_heavy_dimension,
            self.extract_tile_rows,
            self.extract_mode,
            self.use_optimizer,
        )

    def with_thresholds(self, delta1: int, delta2: int) -> "MMJoinConfig":
        """Return a copy with fixed degree thresholds."""
        return replace(self, delta1=int(delta1), delta2=int(delta2))

    def with_cores(self, cores: int) -> "MMJoinConfig":
        """Return a copy with a different core count."""
        return replace(self, cores=int(cores))

    def with_backend(self, backend: str) -> "MMJoinConfig":
        """Return a copy with a different matrix backend."""
        return replace(self, matrix_backend=backend)

    def without_optimizer(self) -> "MMJoinConfig":
        """Return a copy that will not run the cost-based optimizer."""
        return replace(self, use_optimizer=False)


DEFAULT_CONFIG = MMJoinConfig()
