"""MMJoin for the 2-path query (Algorithm 1 of the paper).

``two_path_join`` computes ``pi_{x,z}( R(x,y) |><| S(z,y) )``; the actual
orchestration — semijoin reduction, the optimizer's strategy choice, the
light/heavy partition, the combinatorial light join, the matrix-product
heavy join and the final dedup-merge — lives in the shared planner pipeline
(:mod:`repro.plan.planner` composing the :mod:`repro.exec.operators`).
This module only describes the logical query, runs the plan, and adapts the
execution state into the legacy :class:`MMJoinResult` shape (including its
``explain()`` facility).

``two_path_join_counts`` is the witness-counting variant used by the set
similarity application: the join variable alone is partitioned so that every
witness is counted exactly once — light witnesses by combinatorial counting,
heavy witnesses by the matrix product (whose entries *are* the counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import OptimizerDecision
from repro.data.relation import Relation
from repro.plan.explain import PlanExplanation
from repro.plan.query import TwoPathQuery

Pair = Tuple[int, int]


@dataclass
class MMJoinResult:
    """Result of an MMJoin evaluation, with execution statistics.

    Attributes
    ----------
    pairs:
        The projected output as a set of ``(x, z)`` pairs.
    counts:
        Witness counts ``{(x, z): #common y}`` when counting was requested,
        otherwise ``None``.
    strategy:
        ``"wcoj"`` when the optimizer evaluated the plain combinatorial join,
        ``"mmjoin"`` when the light/heavy decomposition ran.
    delta1 / delta2:
        The degree thresholds actually used (0 for the wcoj strategy).
    light_pairs / heavy_pairs:
        Number of output pairs discovered by the light sub-joins and by the
        matrix product respectively (they may overlap).
    matrix_dims:
        ``(U, V, W)`` dimensions of the heavy matrix product.
    backend:
        Name of the matmul backend the registry selected for the heavy part.
    timings:
        Wall-clock seconds per phase (keys: ``partition``, ``light``,
        ``matrix_build``, ``matrix_multiply``, ``total``, plus one key per
        physical operator).
    explanation:
        The per-operator :class:`~repro.plan.explain.PlanExplanation`
        produced by the planner pipeline; see :meth:`explain`.
    """

    pairs: Set[Pair]
    counts: Optional[Dict[Pair, int]] = None
    strategy: str = "mmjoin"
    delta1: int = 0
    delta2: int = 0
    light_pairs: int = 0
    heavy_pairs: int = 0
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    backend: str = "dense"
    timings: Dict[str, float] = field(default_factory=dict)
    optimizer_decision: Optional[OptimizerDecision] = None
    explanation: Optional[PlanExplanation] = None

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return (int(pair[0]), int(pair[1])) in self.pairs

    def __iter__(self):
        return iter(self.pairs)

    def output_size(self) -> int:
        """Number of distinct output pairs."""
        return len(self.pairs)

    def explain(self) -> str:
        """Human-readable per-operator cost/timing breakdown."""
        if self.explanation is None:
            return "no plan explanation available"
        return self.explanation.format()


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def two_path_join(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> MMJoinResult:
    """Compute the projected 2-path join; returns an :class:`MMJoinResult`."""
    return two_path_join_detailed(left, right, config=config, with_counts=False)


def two_path_join_counts(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> MMJoinResult:
    """Compute the projected 2-path join together with exact witness counts."""
    return two_path_join_detailed(left, right, config=config, with_counts=True)


def two_path_join_detailed(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
    with_counts: bool = False,
) -> MMJoinResult:
    """Full-control MMJoin entry point.

    Parameters
    ----------
    config:
        Evaluation knobs; explicit ``delta1`` / ``delta2`` override the
        optimizer, ``use_optimizer=False`` with no thresholds forces the
        plain combinatorial evaluation.
    with_counts:
        Also compute exact witness counts (needed by SSJ).
    """
    # One-shot evaluation is a throwaway serving session: same pipeline, no
    # memoization, process-wide backend registry (so runtime-registered
    # custom backends resolve), and no feedback mutation of shared state.
    from repro.matmul.registry import default_registry
    from repro.serve.session import QuerySession

    with QuerySession(config=config, registry=default_registry(), feedback=False) as session:
        result = session.evaluate(
            TwoPathQuery(left=left, right=right, counting=with_counts), use_memo=False
        )
    return result_from_plan(result.plan, with_counts=with_counts)


def result_from_plan(plan, with_counts: bool = False) -> MMJoinResult:
    """Adapt an executed two-path plan into an :class:`MMJoinResult`."""
    state = plan.state
    if with_counts:
        counts = state.counts if state.counts is not None else {}
        light_found = len(state.light_counted)
        heavy_found = len(state.heavy_counted)
    else:
        counts = None
        light_found = len(state.light_block)
        heavy_found = len(state.heavy_block)
    return MMJoinResult(
        pairs=state.pairs,
        counts=counts,
        strategy=state.strategy,
        delta1=state.delta1,
        delta2=state.delta2,
        light_pairs=light_found,
        heavy_pairs=heavy_found,
        matrix_dims=state.matrix_dims,
        backend=state.backend_name,
        timings=dict(state.timings),
        optimizer_decision=state.decision,
        explanation=plan.explain(),
    )
