"""MMJoin for the 2-path query (Algorithm 1 of the paper).

``two_path_join`` computes ``pi_{x,z}( R(x,y) |><| S(z,y) )`` by

1. removing dangling tuples (semijoin reduction),
2. asking the cost-based optimizer whether partitioning pays off at all
   (small full joins are simply evaluated with the combinatorial
   worst-case-optimal join),
3. splitting both relations into light and heavy parts with the degree
   thresholds ``delta1`` (join variable) and ``delta2`` (head variables),
4. evaluating ``R- |><| S`` and ``R |><| S-`` with the combinatorial join and
   deduplicating,
5. evaluating the all-heavy residual with one rectangular matrix product and
   reading the output pairs off the non-zero entries.

``two_path_join_counts`` is the witness-counting variant used by the set
similarity application: the join variable alone is partitioned so that every
witness is counted exactly once — light witnesses by combinatorial counting,
heavy witnesses by the matrix product (whose entries *are* the counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.estimation import estimate_output_size
from repro.core.optimizer import CostBasedOptimizer, OptimizerDecision
from repro.core.partitioning import TwoPathPartition, partition_two_path
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_two_path
from repro.joins.generic_join import generic_two_path_project
from repro.matmul import dense as dense_mm
from repro.matmul import sparse as sparse_mm

Pair = Tuple[int, int]


@dataclass
class MMJoinResult:
    """Result of an MMJoin evaluation, with execution statistics.

    Attributes
    ----------
    pairs:
        The projected output as a set of ``(x, z)`` pairs.
    counts:
        Witness counts ``{(x, z): #common y}`` when counting was requested,
        otherwise ``None``.
    strategy:
        ``"wcoj"`` when the optimizer evaluated the plain combinatorial join,
        ``"mmjoin"`` when the light/heavy decomposition ran.
    delta1 / delta2:
        The degree thresholds actually used (0 for the wcoj strategy).
    light_pairs / heavy_pairs:
        Number of output pairs discovered by the light sub-joins and by the
        matrix product respectively (they may overlap).
    matrix_dims:
        ``(U, V, W)`` dimensions of the heavy matrix product.
    timings:
        Wall-clock seconds per phase (keys: ``partition``, ``light``,
        ``matrix_build``, ``matrix_multiply``, ``total``).
    """

    pairs: Set[Pair]
    counts: Optional[Dict[Pair, int]] = None
    strategy: str = "mmjoin"
    delta1: int = 0
    delta2: int = 0
    light_pairs: int = 0
    heavy_pairs: int = 0
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    backend: str = "dense"
    timings: Dict[str, float] = field(default_factory=dict)
    optimizer_decision: Optional[OptimizerDecision] = None

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return (int(pair[0]), int(pair[1])) in self.pairs

    def __iter__(self):
        return iter(self.pairs)

    def output_size(self) -> int:
        """Number of distinct output pairs."""
        return len(self.pairs)


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def two_path_join(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> MMJoinResult:
    """Compute the projected 2-path join; returns an :class:`MMJoinResult`."""
    return two_path_join_detailed(left, right, config=config, with_counts=False)


def two_path_join_counts(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> MMJoinResult:
    """Compute the projected 2-path join together with exact witness counts."""
    return two_path_join_detailed(left, right, config=config, with_counts=True)


def two_path_join_detailed(
    left: Relation,
    right: Relation,
    config: MMJoinConfig = DEFAULT_CONFIG,
    with_counts: bool = False,
) -> MMJoinResult:
    """Full-control MMJoin entry point.

    Parameters
    ----------
    config:
        Evaluation knobs; explicit ``delta1`` / ``delta2`` override the
        optimizer, ``use_optimizer=False`` with no thresholds forces the
        plain combinatorial evaluation.
    with_counts:
        Also compute exact witness counts (needed by SSJ).
    """
    start = time.perf_counter()
    timings: Dict[str, float] = {}

    # Step 0: semijoin reduction — drop tuples that cannot contribute.
    reduced_left = left.semijoin_y(right, name=left.name)
    reduced_right = right.semijoin_y(left, name=right.name)
    if len(reduced_left) == 0 or len(reduced_right) == 0:
        timings["total"] = time.perf_counter() - start
        return MMJoinResult(pairs=set(), counts={} if with_counts else None,
                            strategy="wcoj", timings=timings)

    # Step 1: decide the strategy and the thresholds.
    decision = _decide(reduced_left, reduced_right, config)
    if decision.strategy == "wcoj":
        result = _evaluate_wcoj(reduced_left, reduced_right, config, with_counts)
        result.optimizer_decision = decision
        result.timings["total"] = time.perf_counter() - start
        return result

    delta1, delta2 = decision.delta1, decision.delta2
    if with_counts:
        result = _evaluate_counting(reduced_left, reduced_right, delta1, config)
    else:
        result = _evaluate_pairs(reduced_left, reduced_right, delta1, delta2, config)
    result.optimizer_decision = decision
    result.timings["total"] = time.perf_counter() - start
    return result


# --------------------------------------------------------------------------- #
# Strategy decision
# --------------------------------------------------------------------------- #
def _decide(left: Relation, right: Relation, config: MMJoinConfig) -> OptimizerDecision:
    if config.delta1 is not None and config.delta2 is not None:
        return OptimizerDecision(
            strategy="mmjoin",
            delta1=int(config.delta1),
            delta2=int(config.delta2),
            estimated_cost=0.0,
            estimated_output=0.0,
            full_join_size=0,
        )
    if not config.use_optimizer:
        return OptimizerDecision(
            strategy="wcoj", delta1=0, delta2=0,
            estimated_cost=0.0, estimated_output=0.0, full_join_size=0,
        )
    optimizer = CostBasedOptimizer(config=config)
    return optimizer.choose_two_path(left, right)


# --------------------------------------------------------------------------- #
# Plain worst-case optimal evaluation
# --------------------------------------------------------------------------- #
def _evaluate_wcoj(
    left: Relation, right: Relation, config: MMJoinConfig, with_counts: bool
) -> MMJoinResult:
    phase_start = time.perf_counter()
    if with_counts:
        counts = combinatorial_two_path(left, right, with_counts=True)
        pairs = set(counts)
        result = MMJoinResult(pairs=pairs, counts=counts, strategy="wcoj")
    else:
        pairs = combinatorial_two_path(
            left, right, dedup_strategy=config.dedup_strategy
        )
        result = MMJoinResult(pairs=pairs, strategy="wcoj")
    result.light_pairs = len(result.pairs)
    result.timings["light"] = time.perf_counter() - phase_start
    return result


# --------------------------------------------------------------------------- #
# Set-semantics MMJoin (Algorithm 1)
# --------------------------------------------------------------------------- #
def _evaluate_pairs(
    left: Relation,
    right: Relation,
    delta1: int,
    delta2: int,
    config: MMJoinConfig,
) -> MMJoinResult:
    timings: Dict[str, float] = {}
    phase_start = time.perf_counter()
    partition = partition_two_path(left, right, delta1, delta2)
    timings["partition"] = time.perf_counter() - phase_start

    # Light part: R- |><| S and R |><| S-, evaluated combinatorially.
    phase_start = time.perf_counter()
    light_output: Set[Pair] = set()
    if len(partition.r_light):
        light_output |= _probe_join(partition.r_light, right)
    if len(partition.s_light):
        # R |><| S-: probe from the S- side and flip the pairs.
        flipped = _probe_join(partition.s_light, left)
        light_output |= {(b, a) for a, b in flipped}
    timings["light"] = time.perf_counter() - phase_start

    # Heavy part: one rectangular matrix product over the heavy values.
    heavy_output, matrix_dims, backend, build_time, multiply_time = _heavy_product(
        partition, config, with_counts=False
    )
    timings["matrix_build"] = build_time
    timings["matrix_multiply"] = multiply_time

    pairs = light_output | heavy_output
    return MMJoinResult(
        pairs=pairs,
        strategy="mmjoin",
        delta1=partition.delta1,
        delta2=partition.delta2,
        light_pairs=len(light_output),
        heavy_pairs=len(heavy_output),
        matrix_dims=matrix_dims,
        backend=backend,
        timings=timings,
    )


def _probe_join(probe_side: Relation, other: Relation) -> Set[Pair]:
    """Projected join where ``probe_side`` drives the probing (x from probe side)."""
    output: Set[Pair] = set()
    other_index = other.index_y()
    for x, y in zip(probe_side.xs, probe_side.ys):
        partners = other_index.get(int(y))
        if partners is None:
            continue
        xi = int(x)
        for z in partners:
            output.add((xi, int(z)))
    return output


# --------------------------------------------------------------------------- #
# Counting MMJoin (witness counts, used by SSJ)
# --------------------------------------------------------------------------- #
def _evaluate_counting(
    left: Relation,
    right: Relation,
    delta1: int,
    config: MMJoinConfig,
) -> MMJoinResult:
    """Witness-counting variant: the join variable alone is partitioned.

    A witness ``y`` is heavy when its degree exceeds ``delta1`` in *both*
    relations; heavy witnesses are counted by the matrix product, light
    witnesses combinatorially.  The two witness populations are disjoint so
    the counts add up exactly.
    """
    timings: Dict[str, float] = {}
    phase_start = time.perf_counter()
    left_deg_y = left.degrees_y()
    right_deg_y = right.degrees_y()
    shared = set(left_deg_y) & set(right_deg_y)
    heavy_y = np.asarray(
        sorted(
            y for y in shared
            if left_deg_y[y] > delta1 and right_deg_y[y] > delta1
        ),
        dtype=np.int64,
    )
    heavy_y_set = set(int(v) for v in heavy_y)
    light_y = [y for y in shared if int(y) not in heavy_y_set]
    timings["partition"] = time.perf_counter() - phase_start

    # Light witnesses: plain counting expansion.
    phase_start = time.perf_counter()
    counts: Dict[Pair, int] = {}
    left_index = left.index_y()
    right_index = right.index_y()
    for y in light_y:
        xs = left_index[int(y)]
        zs = right_index[int(y)]
        for x in xs:
            xi = int(x)
            for z in zs:
                key = (xi, int(z))
                counts[key] = counts.get(key, 0) + 1
    light_pairs = len(counts)
    timings["light"] = time.perf_counter() - phase_start

    # Heavy witnesses: the matrix product entries are the counts.
    heavy_pairs = 0
    matrix_dims = (0, 0, 0)
    backend = "dense"
    build_time = multiply_time = 0.0
    if heavy_y.size:
        left_heavy = left.restrict_y(heavy_y, name=f"{left.name}+")
        right_heavy = right.restrict_y(heavy_y, name=f"{right.name}+")
        rows = left_heavy.x_values()
        cols = right_heavy.x_values()
        matrix_dims = (int(rows.size), int(heavy_y.size), int(cols.size))
        backend = _pick_backend(config, left_heavy, right_heavy, matrix_dims)
        phase_start = time.perf_counter()
        if backend == "sparse":
            m1 = sparse_mm.build_sparse_adjacency(left_heavy, rows, heavy_y)
            m2 = sparse_mm.build_sparse_adjacency(right_heavy, cols, heavy_y).T
            build_time = time.perf_counter() - phase_start
            phase_start = time.perf_counter()
            product = sparse_mm.sparse_count_matmul(m1, m2)
            heavy_counts = sparse_mm.sparse_nonzero_pairs_with_counts(product, rows, cols)
        else:
            m1 = dense_mm.build_adjacency(left_heavy, rows, heavy_y)
            m2 = dense_mm.build_adjacency(right_heavy, cols, heavy_y).T
            build_time = time.perf_counter() - phase_start
            phase_start = time.perf_counter()
            product = dense_mm.count_matmul(m1, m2)
            heavy_counts = dense_mm.nonzero_pairs_with_counts(product, rows, cols)
        multiply_time = time.perf_counter() - phase_start
        heavy_pairs = len(heavy_counts)
        for key, value in heavy_counts.items():
            counts[key] = counts.get(key, 0) + value
    timings["matrix_build"] = build_time
    timings["matrix_multiply"] = multiply_time

    return MMJoinResult(
        pairs=set(counts),
        counts=counts,
        strategy="mmjoin",
        delta1=delta1,
        delta2=delta1,
        light_pairs=light_pairs,
        heavy_pairs=heavy_pairs,
        matrix_dims=matrix_dims,
        backend=backend,
        timings=timings,
    )


# --------------------------------------------------------------------------- #
# Heavy residual evaluation
# --------------------------------------------------------------------------- #
def _heavy_product(
    partition: TwoPathPartition,
    config: MMJoinConfig,
    with_counts: bool,
) -> Tuple[Set[Pair], Tuple[int, int, int], str, float, float]:
    rows = partition.heavy_x
    cols = partition.heavy_z
    mids = partition.heavy_y
    dims = (int(rows.size), int(mids.size), int(cols.size))
    if min(dims) == 0:
        return set(), dims, "dense", 0.0, 0.0
    backend = _pick_backend(config, partition.r_heavy, partition.s_heavy, dims)
    build_start = time.perf_counter()
    if backend == "sparse":
        m1 = sparse_mm.build_sparse_adjacency(partition.r_heavy, rows, mids)
        m2 = sparse_mm.build_sparse_adjacency(partition.s_heavy, cols, mids).T
        build_time = time.perf_counter() - build_start
        multiply_start = time.perf_counter()
        product = sparse_mm.sparse_count_matmul(m1, m2)
        pairs = set(sparse_mm.sparse_nonzero_pairs(product, rows, cols))
    else:
        m1 = dense_mm.build_adjacency(partition.r_heavy, rows, mids)
        m2 = dense_mm.build_adjacency(partition.s_heavy, cols, mids).T
        build_time = time.perf_counter() - build_start
        multiply_start = time.perf_counter()
        product = dense_mm.count_matmul(m1, m2)
        pairs = set(dense_mm.nonzero_pairs(product, rows, cols))
    multiply_time = time.perf_counter() - multiply_start
    return pairs, dims, backend, build_time, multiply_time


def _pick_backend(
    config: MMJoinConfig,
    left_heavy: Relation,
    right_heavy: Relation,
    dims: Tuple[int, int, int],
) -> str:
    if config.matrix_backend in ("dense", "sparse"):
        return config.matrix_backend
    u, v, w = dims
    cells = max(u * v + v * w, 1)
    density = (len(left_heavy) + len(right_heavy)) / cells
    # Very large dense matrices are avoided regardless of density.
    if max(u, v, w) > config.max_heavy_dimension:
        return "sparse"
    return "dense" if density >= config.sparse_density_threshold else "sparse"
