"""Degree-based relation partitioning (the heart of Algorithm 1 / Section 3.2).

Given the degree thresholds ``delta1`` (for the join variable ``y``) and
``delta2`` (for the head variables), the input relations are split into
*light* and *heavy* parts:

* a head value (``x`` of R, ``z`` of S, or ``x_i`` of the star relations) is
  **light** when its degree is at most ``delta2``;
* a join value ``y`` is **light** when its degree is at most ``delta1`` — in
  the two-path case a witness is light when it is light in *either* relation,
  in the star case when it is light in *every* relation;
* ``R-`` collects tuples with a light head value or a light join value,
  ``R+`` collects the rest.

The paper's correctness argument (Section 3.1) carries over verbatim: every
output tuple with a light head value or a light witness is discovered by the
light sub-joins, and every remaining output tuple has all values heavy so it
is covered by the heavy adjacency matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.data.relation import Relation


@dataclass
class TwoPathPartition:
    """Partition of ``R(x, y)`` and ``S(z, y)`` for the two-path query.

    Attributes
    ----------
    r_light / s_light:
        The ``R-`` / ``S-`` sub-relations (tuples touching a light value).
    r_heavy / s_heavy:
        The ``R+`` / ``S+`` sub-relations (all values heavy).
    heavy_x / heavy_y / heavy_z:
        The heavy value lists: candidate row values (heavy x of R), shared
        heavy witnesses, and candidate column values (heavy z of S).
    """

    r_light: Relation
    s_light: Relation
    r_heavy: Relation
    s_heavy: Relation
    heavy_x: np.ndarray
    heavy_y: np.ndarray
    heavy_z: np.ndarray
    delta1: int
    delta2: int

    def light_fraction(self) -> float:
        """Fraction of input tuples routed to the light sub-joins."""
        total = len(self.r_light) + len(self.s_light) + len(self.r_heavy) + len(self.s_heavy)
        if total == 0:
            return 1.0
        return (len(self.r_light) + len(self.s_light)) / total

    def matrix_dimensions(self) -> Tuple[int, int, int]:
        """Dimensions (U, V, W) of the heavy matrix product."""
        return int(self.heavy_x.size), int(self.heavy_y.size), int(self.heavy_z.size)


def partition_two_path(
    left: Relation, right: Relation, delta1: int, delta2: int
) -> TwoPathPartition:
    """Partition the two relations of the 2-path query by degree.

    A ``y`` value is light when its degree is at most ``delta1`` in *either*
    relation (such witnesses are cheap to expand on the side where they are
    light, and the light sub-joins run over both sides).  A head value is
    light when its degree is at most ``delta2`` in its own relation.
    """
    delta1 = max(int(delta1), 1)
    delta2 = max(int(delta2), 1)
    left_deg_y = left.degrees_y()
    right_deg_y = right.degrees_y()

    def y_is_heavy(y: int) -> bool:
        return (
            left_deg_y.get(y, 0) > delta1 and right_deg_y.get(y, 0) > delta1
        )

    heavy_y = np.asarray(
        sorted(
            y
            for y in set(left_deg_y) & set(right_deg_y)
            if y_is_heavy(int(y))
        ),
        dtype=np.int64,
    )
    heavy_y_set = set(int(v) for v in heavy_y)

    left_deg_x = left.degrees_x()
    right_deg_x = right.degrees_x()
    heavy_x = np.asarray(
        sorted(x for x, d in left_deg_x.items() if d > delta2), dtype=np.int64
    )
    heavy_z = np.asarray(
        sorted(z for z, d in right_deg_x.items() if d > delta2), dtype=np.int64
    )
    heavy_x_set = set(int(v) for v in heavy_x)
    heavy_z_set = set(int(v) for v in heavy_z)

    def split(relation: Relation, heavy_heads: Set[int]) -> Tuple[Relation, Relation]:
        if len(relation) == 0:
            return Relation.empty(relation.name), Relation.empty(relation.name)
        xs = relation.xs
        ys = relation.ys
        head_heavy = np.fromiter(
            (int(x) in heavy_heads for x in xs), count=xs.size, dtype=bool
        )
        witness_heavy = np.fromiter(
            (int(y) in heavy_y_set for y in ys), count=ys.size, dtype=bool
        )
        light_mask = ~(head_heavy & witness_heavy)
        light = relation.filter_pairs(light_mask, name=f"{relation.name}-")
        heavy = relation.filter_pairs(~light_mask, name=f"{relation.name}+")
        return light, heavy

    r_light, r_heavy = split(left, heavy_x_set)
    s_light, s_heavy = split(right, heavy_z_set)

    # Only keep heavy head values that actually survive into the heavy parts
    # (their other tuples may all touch light witnesses).
    surviving_x = r_heavy.x_values()
    surviving_z = s_heavy.x_values()
    surviving_y = np.intersect1d(r_heavy.y_values(), s_heavy.y_values(), assume_unique=True)
    return TwoPathPartition(
        r_light=r_light,
        s_light=s_light,
        r_heavy=r_heavy,
        s_heavy=s_heavy,
        heavy_x=surviving_x,
        heavy_y=surviving_y,
        heavy_z=surviving_z,
        delta1=delta1,
        delta2=delta2,
    )


@dataclass
class StarPartition:
    """Partition of the star query relations (Section 3.2).

    Attributes
    ----------
    light_head:
        Per relation, the ``R-_i`` sub-relation (head degree <= delta2).
    heavy:
        Per relation, the ``R+_i`` sub-relation (heavy head and heavy witness).
    light_y:
        The ``y`` values light in *every* relation (handled by one cheap
        sub-join, the paper's ``R^{\\diamond}`` step).
    heavy_y:
        The remaining shared ``y`` values.
    heavy_heads:
        Per relation, its heavy head values that survive into ``R+_i``.
    """

    light_head: List[Relation]
    heavy: List[Relation]
    light_y: np.ndarray
    heavy_y: np.ndarray
    heavy_heads: List[np.ndarray]
    delta1: int
    delta2: int


def partition_star(
    relations: Sequence[Relation], delta1: int, delta2: int
) -> StarPartition:
    """Partition the k star relations by degree.

    ``light_y`` contains join values whose degree is at most ``delta1`` in
    every relation; expanding them costs at most ``N * delta1^(k-1)``.
    ``light_head[i]`` contains the tuples of ``R_i`` whose head degree is at
    most ``delta2``.  ``heavy[i]`` is the residual used to build the
    adjacency matrices.
    """
    delta1 = max(int(delta1), 1)
    delta2 = max(int(delta2), 1)
    degree_maps = [rel.degrees_y() for rel in relations]
    shared = set(degree_maps[0])
    for deg in degree_maps[1:]:
        shared &= set(deg)
    light_y = np.asarray(
        sorted(
            y for y in shared if all(deg.get(y, 0) <= delta1 for deg in degree_maps)
        ),
        dtype=np.int64,
    )
    heavy_y = np.asarray(
        sorted(set(shared) - set(int(v) for v in light_y)), dtype=np.int64
    )
    heavy_y_set = set(int(v) for v in heavy_y)

    light_head: List[Relation] = []
    heavy: List[Relation] = []
    heavy_heads: List[np.ndarray] = []
    for rel in relations:
        deg_x = rel.degrees_x()
        heavy_head_set = set(x for x, d in deg_x.items() if d > delta2)
        xs = rel.xs
        ys = rel.ys
        if len(rel):
            head_heavy = np.fromiter(
                (int(x) in heavy_head_set for x in xs), count=xs.size, dtype=bool
            )
            witness_heavy = np.fromiter(
                (int(y) in heavy_y_set for y in ys), count=ys.size, dtype=bool
            )
            light_mask = ~head_heavy
            heavy_mask = head_heavy & witness_heavy
            light_rel = rel.filter_pairs(light_mask, name=f"{rel.name}-")
            heavy_rel = rel.filter_pairs(heavy_mask, name=f"{rel.name}+")
        else:
            light_rel = Relation.empty(f"{rel.name}-")
            heavy_rel = Relation.empty(f"{rel.name}+")
        light_head.append(light_rel)
        heavy.append(heavy_rel)
        heavy_heads.append(heavy_rel.x_values())
    return StarPartition(
        light_head=light_head,
        heavy=heavy,
        light_y=light_y,
        heavy_y=heavy_y,
        heavy_heads=heavy_heads,
        delta1=delta1,
        delta2=delta2,
    )
