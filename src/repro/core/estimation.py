"""Output-size estimation for join-project queries (paper Section 5).

The MMJoin cost formula needs ``|OUT|``, the size of the *projected* output,
before it has been computed.  The paper derives the sandwich

``|dom(x)| <= |OUT| <= min(|dom(x)| * |dom(z)|, |OUT_join|)``  and
``|OUT_join| <= N * sqrt(|OUT|)``  (so ``|OUT| >= (|OUT_join| / N)^2``),

and uses the geometric mean of the resulting lower and upper bounds as the
estimate.  The full join size ``|OUT_join|`` itself is computed exactly in
linear time from the per-``y`` degrees during the indexing pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.data.relation import Relation


@dataclass(frozen=True)
class OutputEstimate:
    """An output size estimate together with its provable bounds."""

    lower_bound: float
    upper_bound: float
    estimate: float
    full_join_size: int

    def clamp(self, value: float) -> float:
        """Clamp an external estimate into the provable interval."""
        return min(max(value, self.lower_bound), self.upper_bound)


def exact_full_join_size(left: Relation, right: Relation) -> int:
    """Exact size of the full (pre-projection) join, in linear time."""
    return left.full_join_size(right)


def estimate_output_size(
    left: Relation,
    right: Relation,
    full_join_size: Optional[int] = None,
) -> OutputEstimate:
    """Estimate ``|OUT|`` for the two-path query per the paper's recipe.

    Parameters
    ----------
    full_join_size:
        Pass a precomputed full join size to avoid recomputation.
    """
    n = max(len(left), len(right), 1)
    out_join = (
        exact_full_join_size(left, right) if full_join_size is None else int(full_join_size)
    )
    dom_x = max(int(left.x_values().size), 1)
    dom_z = max(int(right.x_values().size), 1)
    lower = max(float(dom_x), (float(out_join) / float(n)) ** 2 if n else 0.0)
    upper = float(min(dom_x * dom_z, out_join)) if out_join else float(dom_x)
    if upper < lower:
        upper = lower
    estimate = math.sqrt(lower * upper) if lower > 0 else upper
    return OutputEstimate(
        lower_bound=lower,
        upper_bound=upper,
        estimate=max(estimate, 1.0),
        full_join_size=out_join,
    )


def detect_heavy_join_keys(
    relation: Relation,
    shards: int,
    balance_factor: float = 0.5,
    max_heavy: Optional[int] = None,
) -> Dict[int, int]:
    """Join keys whose degree would serialize a single hash shard.

    The sharded execution layer hash-partitions relations on the join
    attribute ``y``; a key whose tuple count approaches a fair shard's share
    (``N / shards``) turns whichever hash shard owns it into the straggler
    that the paper's Section 6 partitioning argument was supposed to avoid.
    The per-key degree statistics (``degrees_y``, the same map the
    :class:`~repro.data.indexes.DegreeIndex` machinery is built from) find
    those keys: a key is heavy when its degree exceeds
    ``balance_factor * N / shards``.

    Returns ``{key: degree}`` for at most ``max_heavy`` keys (default:
    ``shards``), keeping the highest-degree ones.  Empty when ``shards <= 1``
    (nothing to balance) or the relation is empty.
    """
    if shards <= 1 or len(relation) == 0:
        return {}
    degrees = relation.degrees_y()
    fair_share = len(relation) / float(shards)  # sum of y degrees == N
    threshold = max(balance_factor * fair_share, 1.0)
    heavy = {int(y): int(d) for y, d in degrees.items() if d > threshold}
    cap = int(shards) if max_heavy is None else max(int(max_heavy), 0)
    if len(heavy) > cap:
        kept = sorted(heavy.items(), key=lambda kv: (-kv[1], kv[0]))[:cap]
        heavy = dict(kept)
    return heavy


def estimate_star_output_size(relations: Sequence[Relation]) -> OutputEstimate:
    """Estimate ``|OUT|`` for the star query.

    Uses the same sandwich generalised to k relations: the projected output
    is at least the largest head domain and at most the product of the head
    domains, and also at most the full join size.  The full join size is
    computed exactly from per-``y`` degree products.
    """
    from repro.joins.leapfrog import star_full_join_size  # local import to avoid a cycle

    if not relations:
        return OutputEstimate(0.0, 0.0, 0.0, 0)
    out_join = star_full_join_size(relations)
    doms = [max(int(rel.x_values().size), 1) for rel in relations]
    lower = float(max(doms))
    product = 1.0
    for d in doms:
        product *= float(d)
    upper = float(min(product, out_join)) if out_join else lower
    if upper < lower:
        upper = lower
    estimate = math.sqrt(lower * upper) if lower > 0 else upper
    return OutputEstimate(
        lower_bound=lower,
        upper_bound=upper,
        estimate=max(estimate, 1.0),
        full_join_size=out_join,
    )
