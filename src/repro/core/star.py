"""MMJoin for the star query ``Q*_k`` (Section 3.2 of the paper).

The star query joins k binary relations on a single shared variable ``y`` and
projects it away:

``Q*_k(x1, ..., xk) = R1(x1, y), R2(x2, y), ..., Rk(xk, y)``.

Evaluation goes through the shared planner pipeline
(:mod:`repro.plan.planner` composing the :mod:`repro.exec.operators`), which
generalises Algorithm 1 to k relations:

1. every sub-join in which some relation is replaced by its light-head part
   ``R-_i`` is evaluated with the worst-case optimal join and projected;
2. the sub-join restricted to witnesses that are light in *every* relation
   (the paper's ``R^{\\diamond}`` step) is evaluated the same way;
3. the all-heavy residual is evaluated with one rectangular matrix product
   over grouped head combinations, on whichever matmul backend the registry
   selects.

This module only describes the logical query and adapts the execution state
into the legacy :class:`StarJoinResult` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import OptimizerDecision
from repro.data.relation import Relation
from repro.plan.explain import PlanExplanation
from repro.plan.query import StarQuery

HeadTuple = Tuple[int, ...]


@dataclass
class StarJoinResult:
    """Result of a star MMJoin evaluation with execution statistics."""

    tuples: Set[HeadTuple]
    strategy: str = "mmjoin"
    delta1: int = 0
    delta2: int = 0
    light_tuples: int = 0
    heavy_tuples: int = 0
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    backend: str = "dense"
    timings: Dict[str, float] = field(default_factory=dict)
    optimizer_decision: Optional[OptimizerDecision] = None
    explanation: Optional[PlanExplanation] = None

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, head: HeadTuple) -> bool:
        return tuple(int(v) for v in head) in self.tuples

    def __iter__(self):
        return iter(self.tuples)

    def output_size(self) -> int:
        """Number of distinct output tuples."""
        return len(self.tuples)

    def explain(self) -> str:
        """Human-readable per-operator cost/timing breakdown."""
        if self.explanation is None:
            return "no plan explanation available"
        return self.explanation.format()


def star_join(
    relations: Sequence[Relation],
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> StarJoinResult:
    """Compute the projected star join over ``relations``."""
    return star_join_detailed(relations, config=config)


def star_join_detailed(
    relations: Sequence[Relation],
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> StarJoinResult:
    """Full-control star MMJoin entry point (see module docstring)."""
    if not relations:
        return StarJoinResult(tuples=set(), strategy="wcoj")
    # One-shot evaluation is a throwaway serving session (see two_path.py).
    from repro.matmul.registry import default_registry
    from repro.serve.session import QuerySession

    with QuerySession(config=config, registry=default_registry(), feedback=False) as session:
        plan = session.evaluate(StarQuery(relations), use_memo=False).plan
    state = plan.state
    return StarJoinResult(
        tuples=state.pairs,
        strategy=state.strategy,
        delta1=state.delta1,
        delta2=state.delta2,
        light_tuples=len(state.light_block),
        heavy_tuples=len(state.heavy_block),
        matrix_dims=state.matrix_dims,
        backend=state.backend_name,
        timings=dict(state.timings),
        optimizer_decision=state.decision,
        explanation=plan.explain(),
    )
