"""MMJoin for the star query ``Q*_k`` (Section 3.2 of the paper).

The star query joins k binary relations on a single shared variable ``y`` and
projects it away:

``Q*_k(x1, ..., xk) = R1(x1, y), R2(x2, y), ..., Rk(xk, y)``.

The evaluation mirrors Algorithm 1 generalised to k relations:

1. every sub-join in which some relation is replaced by its light-head part
   ``R-_i`` is evaluated with the worst-case optimal join and projected;
2. the sub-join restricted to witnesses that are light in *every* relation
   (the paper's ``R^{\\diamond}`` step) is evaluated the same way — its full
   join is bounded by ``N * delta1^(k-1)``;
3. the all-heavy residual is evaluated with one rectangular matrix product:
   the head variables are split into two groups of size ``ceil(k/2)`` and
   ``floor(k/2)``, each group's heavy combinations become the rows of one
   adjacency matrix over the heavy witnesses, and the product's non-zero
   entries are exactly the remaining output tuples (with witness counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import DEFAULT_CONFIG, MMJoinConfig
from repro.core.optimizer import CostBasedOptimizer, OptimizerDecision
from repro.core.partitioning import StarPartition, partition_star
from repro.data.relation import Relation
from repro.joins.baseline import combinatorial_star
from repro.joins.generic_join import generic_star_join_project
from repro.matmul import dense as dense_mm

HeadTuple = Tuple[int, ...]


@dataclass
class StarJoinResult:
    """Result of a star MMJoin evaluation with execution statistics."""

    tuples: Set[HeadTuple]
    strategy: str = "mmjoin"
    delta1: int = 0
    delta2: int = 0
    light_tuples: int = 0
    heavy_tuples: int = 0
    matrix_dims: Tuple[int, int, int] = (0, 0, 0)
    timings: Dict[str, float] = field(default_factory=dict)
    optimizer_decision: Optional[OptimizerDecision] = None

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, head: HeadTuple) -> bool:
        return tuple(int(v) for v in head) in self.tuples

    def __iter__(self):
        return iter(self.tuples)

    def output_size(self) -> int:
        """Number of distinct output tuples."""
        return len(self.tuples)


def star_join(
    relations: Sequence[Relation],
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> StarJoinResult:
    """Compute the projected star join over ``relations``."""
    return star_join_detailed(relations, config=config)


def star_join_detailed(
    relations: Sequence[Relation],
    config: MMJoinConfig = DEFAULT_CONFIG,
) -> StarJoinResult:
    """Full-control star MMJoin entry point (see module docstring)."""
    if not relations:
        return StarJoinResult(tuples=set(), strategy="wcoj")
    start = time.perf_counter()

    reduced = _semijoin_reduce(relations)
    if any(len(rel) == 0 for rel in reduced):
        return StarJoinResult(
            tuples=set(), strategy="wcoj", timings={"total": time.perf_counter() - start}
        )
    if len(reduced) == 1:
        tuples = {(int(x),) for x in reduced[0].x_values()}
        return StarJoinResult(
            tuples=tuples, strategy="wcoj", timings={"total": time.perf_counter() - start}
        )

    decision = _decide(reduced, config)
    if decision.strategy == "wcoj":
        phase = time.perf_counter()
        tuples = combinatorial_star(reduced)
        result = StarJoinResult(
            tuples=tuples,
            strategy="wcoj",
            light_tuples=len(tuples),
            timings={"light": time.perf_counter() - phase},
        )
        result.optimizer_decision = decision
        result.timings["total"] = time.perf_counter() - start
        return result

    result = _evaluate_mmjoin(reduced, decision.delta1, decision.delta2, config)
    result.optimizer_decision = decision
    result.timings["total"] = time.perf_counter() - start
    return result


# --------------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------------- #
def _semijoin_reduce(relations: Sequence[Relation]) -> List[Relation]:
    """Keep only tuples whose witness appears in every relation."""
    if any(len(rel) == 0 for rel in relations):
        return [Relation.empty(rel.name) for rel in relations]
    shared = relations[0].y_values()
    for rel in relations[1:]:
        shared = np.intersect1d(shared, rel.y_values(), assume_unique=True)
    return [rel.restrict_y(shared, name=rel.name) for rel in relations]


def _decide(relations: Sequence[Relation], config: MMJoinConfig) -> OptimizerDecision:
    if config.delta1 is not None and config.delta2 is not None:
        return OptimizerDecision(
            strategy="mmjoin",
            delta1=int(config.delta1),
            delta2=int(config.delta2),
            estimated_cost=0.0,
            estimated_output=0.0,
            full_join_size=0,
        )
    if not config.use_optimizer:
        return OptimizerDecision(
            strategy="wcoj", delta1=0, delta2=0,
            estimated_cost=0.0, estimated_output=0.0, full_join_size=0,
        )
    optimizer = CostBasedOptimizer(config=config)
    return optimizer.choose_star(relations)


def _evaluate_mmjoin(
    relations: Sequence[Relation],
    delta1: int,
    delta2: int,
    config: MMJoinConfig,
) -> StarJoinResult:
    timings: Dict[str, float] = {}
    phase = time.perf_counter()
    partition = partition_star(relations, delta1, delta2)
    timings["partition"] = time.perf_counter() - phase

    # If nothing survived into the heavy residual the light sub-joins would
    # just re-enumerate the whole query k times; a single worst-case optimal
    # evaluation is strictly cheaper, so fall back to it.
    if partition.heavy_y.size == 0 or any(len(rel) == 0 for rel in partition.heavy):
        phase = time.perf_counter()
        tuples = combinatorial_star(relations)
        timings["light"] = time.perf_counter() - phase
        return StarJoinResult(
            tuples=tuples,
            strategy="mmjoin",
            delta1=partition.delta1,
            delta2=partition.delta2,
            light_tuples=len(tuples),
            timings=timings,
        )

    # Steps 1 & 2: light sub-joins via the worst-case optimal join.
    phase = time.perf_counter()
    light_output: Set[HeadTuple] = set()
    for i, light_rel in enumerate(partition.light_head):
        if len(light_rel) == 0:
            continue
        sub = list(relations)
        sub[i] = light_rel
        light_output |= generic_star_join_project(sub)
    if partition.light_y.size:
        light_output |= generic_star_join_project(
            relations, restrict_to=partition.light_y
        )
    timings["light"] = time.perf_counter() - phase

    # Step 3: the all-heavy residual via a grouped matrix product.
    heavy_output, dims, build_time, multiply_time = _heavy_star_product(partition)
    timings["matrix_build"] = build_time
    timings["matrix_multiply"] = multiply_time

    return StarJoinResult(
        tuples=light_output | heavy_output,
        strategy="mmjoin",
        delta1=partition.delta1,
        delta2=partition.delta2,
        light_tuples=len(light_output),
        heavy_tuples=len(heavy_output),
        matrix_dims=dims,
        timings=timings,
    )


def _heavy_star_product(
    partition: StarPartition,
) -> Tuple[Set[HeadTuple], Tuple[int, int, int], float, float]:
    """Evaluate the all-heavy residual with one matrix product.

    Rows of matrix ``V`` are combinations of heavy head values of the first
    ``ceil(k/2)`` relations that co-occur on some heavy witness; rows of
    ``W`` are combinations from the remaining relations.  The product
    ``V @ W^T`` has a positive entry exactly when the combined head tuple has
    at least one heavy witness.
    """
    heavy_relations = partition.heavy
    heavy_y = partition.heavy_y
    k = len(heavy_relations)
    if k == 0 or heavy_y.size == 0 or any(len(rel) == 0 for rel in heavy_relations):
        return set(), (0, 0, 0), 0.0, 0.0

    split = (k + 1) // 2
    group_a = list(range(split))
    group_b = list(range(split, k))

    build_start = time.perf_counter()
    rows_a, matrix_a = _group_matrix(heavy_relations, group_a, heavy_y)
    rows_b, matrix_b = _group_matrix(heavy_relations, group_b, heavy_y)
    build_time = time.perf_counter() - build_start
    if not rows_a or not rows_b:
        return set(), (len(rows_a), int(heavy_y.size), len(rows_b)), build_time, 0.0

    multiply_start = time.perf_counter()
    product = dense_mm.count_matmul(matrix_a, matrix_b.T)
    hit_rows, hit_cols = np.nonzero(product > 0.5)
    multiply_time = time.perf_counter() - multiply_start

    output: Set[HeadTuple] = set()
    for r, c in zip(hit_rows, hit_cols):
        output.add(rows_a[int(r)] + rows_b[int(c)])
    dims = (len(rows_a), int(heavy_y.size), len(rows_b))
    return output, dims, build_time, multiply_time


def _group_matrix(
    heavy_relations: Sequence[Relation],
    group: Sequence[int],
    heavy_y: np.ndarray,
) -> Tuple[List[HeadTuple], np.ndarray]:
    """Build the grouped adjacency matrix for one half of the head variables.

    Candidate head combinations are discovered per heavy witness (so only
    combinations that actually co-occur appear as rows), then each row is
    marked against every heavy witness it is fully connected to.  The
    per-witness cartesian products are materialised with vectorised numpy
    tiling, which is what keeps the construction cost close to the
    ``(N/delta2)^{ceil(k/2)} * N/delta1`` bound of the analysis.
    """
    indexes = [heavy_relations[i].index_y() for i in group]

    combo_blocks: List[np.ndarray] = []
    column_blocks: List[np.ndarray] = []
    for j, y in enumerate(heavy_y):
        yi = int(y)
        neighbour_lists = []
        missing = False
        for idx in indexes:
            values = idx.get(yi)
            if values is None or values.size == 0:
                missing = True
                break
            neighbour_lists.append(values)
        if missing:
            continue
        combos = _cartesian_arrays(neighbour_lists)
        combo_blocks.append(combos)
        column_blocks.append(np.full(combos.shape[0], j, dtype=np.int64))

    if not combo_blocks:
        return [], np.zeros((0, heavy_y.size), dtype=np.float32)

    all_combos = np.concatenate(combo_blocks, axis=0)
    all_columns = np.concatenate(column_blocks)
    unique_rows, inverse = np.unique(all_combos, axis=0, return_inverse=True)
    matrix = np.zeros((unique_rows.shape[0], heavy_y.size), dtype=np.float32)
    matrix[inverse, all_columns] = 1.0
    rows = [tuple(int(v) for v in row) for row in unique_rows]
    return rows, matrix


def _cartesian_arrays(lists: List[np.ndarray]) -> np.ndarray:
    """Cartesian product of 1-D integer arrays as an (n, k) array."""
    if len(lists) == 1:
        return lists[0].reshape(-1, 1)
    grids = np.meshgrid(*lists, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def _iter_product(lists: List[np.ndarray]):
    """Cartesian product of numpy arrays yielding python int tuples."""
    if len(lists) == 1:
        for a in lists[0]:
            yield (int(a),)
        return
    if len(lists) == 2:
        for a in lists[0]:
            ai = int(a)
            for b in lists[1]:
                yield (ai, int(b))
        return
    head, *tail = lists
    for a in head:
        ai = int(a)
        for rest in _iter_product(tail):
            yield (ai,) + rest
