"""Symbolic reproduction of the paper's theoretical analysis (Section 3).

Nothing here touches data: these helpers evaluate the running-time formulas
of the paper so that tests and the theory benchmark can verify the claimed
exponents, crossover points and the comparison against prior work
(Amossen-Pagh [11], Lemma 2):

* :func:`lemma3_runtime` — the MMJoin bound
  ``O(|D| + |D|^{2/3} |OUT|^{1/3} max(|D|, |OUT|)^{1/3})`` for ``omega = 2``;
* :func:`lemma2_runtime` — the combinatorial bound ``O(|D| * |OUT|^{1-1/k})``;
* :func:`optimal_thresholds_two_path` — the closed-form minimisers of the
  Section 3.1 cost function (Case 1 and Case 2);
* :func:`star_cost` / :func:`example4_runtime` — the star-query cost formula
  and the ``O(N^{15/8})`` bound of Example 4;
* :func:`amossen_pagh_runtime` — the (corrected-regime) bound of [11];
* :func:`proposition2_latency` / :func:`proposition2_machines` — the BSI
  batching trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.matmul.blocked import rectangular_cost

# The best known matrix multiplication exponent cited by the paper.
OMEGA_BEST_KNOWN = 2.373


# --------------------------------------------------------------------------- #
# Two-path query
# --------------------------------------------------------------------------- #
def lemma2_runtime(n: float, out: float, k: int = 2) -> float:
    """Combinatorial output-sensitive bound of Lemma 2: ``N * OUT^(1 - 1/k)``."""
    if n <= 0:
        return 0.0
    return n * max(out, 1.0) ** (1.0 - 1.0 / max(k, 1))


def lemma3_runtime(n: float, out: float) -> float:
    """MMJoin bound of Lemma 3 (omega = 2):

    ``|D| + |D|^{2/3} * |OUT|^{1/3} * max(|D|, |OUT|)^{1/3}``.
    """
    if n <= 0:
        return 0.0
    out = max(out, 1.0)
    return n + (n ** (2.0 / 3.0)) * (out ** (1.0 / 3.0)) * (max(n, out) ** (1.0 / 3.0))


def remark_runtime_current_omega(n: float, out: float, omega: float = OMEGA_BEST_KNOWN) -> float:
    """The remark after Lemma 3: for omega = 2.37 the bound becomes
    ``|D|^0.83 * |OUT|^0.589 + |D| * |OUT|^0.41`` (exponents follow the paper).
    """
    out = max(out, 1.0)
    if abs(omega - OMEGA_BEST_KNOWN) < 1e-9:
        return (n ** 0.83) * (out ** 0.589) + n * (out ** 0.41)
    # Generic interpolation between the omega=2 and omega=3 forms.
    return two_path_cost(*optimal_thresholds_two_path(n, out, omega), n=n, out=out, omega=omega)


def two_path_cost(
    delta1: float, delta2: float, n: float, out: float, omega: float = 2.0
) -> float:
    """The Section 3.1 cost function ``f(delta1, delta2)`` (Eq. 1, NR = NS = N).

    ``N + N*delta1 + OUT*delta2 + M(N/delta2, N/delta1, N/delta2)``.
    """
    delta1 = max(delta1, 1.0)
    delta2 = max(delta2, 1.0)
    matrix = rectangular_cost(n / delta2, n / delta1, n / delta2, omega=omega)
    return n + n * delta1 + max(out, 1.0) * delta2 + matrix


def optimal_thresholds_two_path(
    n: float, out: float, omega: float = 2.0
) -> Tuple[float, float]:
    """Closed-form threshold minimisers from the paper's Case 1 / Case 2.

    Case 1 (``OUT <= N``): ``delta1 = OUT^{1/3}``, ``delta2 = N / OUT^{2/3}``.
    Case 2 (``OUT > N``): ``delta1 = delta2 = (2 N^2 / (N + OUT))^{1/3}``.

    The formulas are derived for omega = 2; for other exponents they remain a
    good starting point and are what the practical optimizer's search refines.
    """
    n = max(n, 1.0)
    out = max(out, 1.0)
    if out <= n:
        delta1 = out ** (1.0 / 3.0)
        delta2 = n / (out ** (2.0 / 3.0))
    else:
        delta = (2.0 * n * n / (n + out)) ** (1.0 / 3.0)
        delta1 = delta2 = delta
    return max(delta1, 1.0), max(delta2, 1.0)


def case1_runtime(n: float, out: float) -> float:
    """Case 1 (``OUT <= N``) optimal runtime: ``N + N * OUT^{1/3}``."""
    return n + n * max(out, 1.0) ** (1.0 / 3.0)


def case2_runtime(n: float, out: float) -> float:
    """Case 2 (``OUT > N``) optimal runtime: ``N^{2/3} * OUT^{2/3}``."""
    return (n ** (2.0 / 3.0)) * (max(out, 1.0) ** (2.0 / 3.0))


def amossen_pagh_runtime(n: float, out: float) -> float:
    """The [11] bound ``N^0.862 * OUT^0.408 + N^{2/3} * OUT^{2/3}``.

    The paper shows this analysis is only valid in the regime ``OUT >= N``;
    callers comparing regimes should check :func:`amossen_pagh_valid`.
    """
    out = max(out, 1.0)
    return (n ** 0.862) * (out ** 0.408) + (n ** (2.0 / 3.0)) * (out ** (2.0 / 3.0))


def amossen_pagh_valid(n: float, out: float) -> bool:
    """True when the [11] analysis applies (``OUT >= N``)."""
    return out >= n


def speedup_over_lemma2(n: float, out: float) -> float:
    """Ratio Lemma 2 / Lemma 3 — how much MMJoin wins asymptotically."""
    denom = lemma3_runtime(n, out)
    return lemma2_runtime(n, out) / denom if denom else float("inf")


# --------------------------------------------------------------------------- #
# Star query
# --------------------------------------------------------------------------- #
def star_cost(
    delta1: float, delta2: float, n: float, out: float, k: int, omega: float = 2.0
) -> float:
    """Section 3.2 cost: ``N*delta1^(k-1) + OUT*delta2 + M((N/d2)^ceil(k/2),
    N/d1, (N/d2)^floor(k/2))``."""
    delta1 = max(delta1, 1.0)
    delta2 = max(delta2, 1.0)
    rows = (n / delta2) ** math.ceil(k / 2)
    cols = (n / delta2) ** math.floor(k / 2)
    mids = n / delta1
    return (
        n * delta1 ** (k - 1)
        + max(out, 1.0) * delta2
        + rectangular_cost(rows, mids, cols, omega=omega)
    )


def example4_thresholds(n: float) -> Tuple[float, float]:
    """Example 4 thresholds for k=3, OUT = N^{3/2}: ``delta1 = N^{7/16}``,
    ``delta2 = N^{6/16}``."""
    return n ** (7.0 / 16.0), n ** (6.0 / 16.0)


def example4_runtime(n: float) -> float:
    """Example 4 claimed runtime ``O(N^{15/8})`` for k=3, OUT = N^{3/2}."""
    return n ** (15.0 / 8.0)


# --------------------------------------------------------------------------- #
# Boolean set intersection (Section 3.3)
# --------------------------------------------------------------------------- #
def proposition2_latency(n: float, rate: float) -> float:
    """Average latency of Proposition 2: ``N^{3/5} / B^{2/5}``."""
    return (n ** 0.6) / (max(rate, 1.0) ** 0.4)


def proposition2_machines(n: float, rate: float) -> float:
    """Machines required by Proposition 2: ``(B * N)^{3/5}``."""
    return (max(rate, 1.0) * n) ** 0.6


def naive_bsi_machines(n: float, rate: float) -> float:
    """Machines for the per-query baseline of Example 5: ``B * N``."""
    return max(rate, 1.0) * n


@dataclass(frozen=True)
class RuntimeComparison:
    """Asymptotic comparison of the algorithms for one (N, OUT) point."""

    n: float
    out: float
    full_join: float
    lemma2: float
    lemma3: float
    amossen_pagh: float
    amossen_pagh_valid: bool

    def winner(self) -> str:
        """Name of the asymptotically cheapest algorithm at this point."""
        candidates: Dict[str, float] = {
            "full_join": self.full_join,
            "lemma2": self.lemma2,
            "mmjoin": self.lemma3,
        }
        return min(candidates, key=candidates.get)


def compare_runtimes(n: float, out: float, full_join: float | None = None) -> RuntimeComparison:
    """Evaluate every bound at one (N, OUT) point (used by the theory bench)."""
    return RuntimeComparison(
        n=n,
        out=out,
        full_join=full_join if full_join is not None else n * n,
        lemma2=lemma2_runtime(n, out),
        lemma3=lemma3_runtime(n, out),
        amossen_pagh=amossen_pagh_runtime(n, out),
        amossen_pagh_valid=amossen_pagh_valid(n, out),
    )
