"""Skew-aware shard assignment for join keys.

The sharded execution layer partitions every relation *on the join
attribute* ``y``: all tuples carrying the same witness value land in the
same shard, in every relation sharded under the same spec.  Both MMJoin
phases then decompose exactly — a two-path or star query over sharded
relations is the disjoint union of the same query over each shard's slices
(witness populations are disjoint across shards, so set results union and
witness counts add).

A :class:`ShardingSpec` is the pure function ``key -> shard``:

* **hash shards** ``0 .. hash_shards-1`` take ordinary keys through a
  splitmix64-style mix (stable across processes, unlike Python's ``hash``);
* **heavy shards** ``hash_shards .. hash_shards+len(heavy_keys)-1`` each
  hold exactly one heavy-hitter join key (detected from the degree
  statistics, see :func:`repro.core.estimation.detect_heavy_join_keys`), so
  no hash shard absorbs a dense core and the light/heavy split happens per
  shard.

The spec is deliberately data-independent once built: the serving layer
freezes one spec per session so that every sharded relation agrees on key
placement, which is what makes per-shard artifacts and shard-scoped cache
invalidation sound.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)

KIND_HASH = "hash"
KIND_HEAVY = "heavy"


def _mix_keys(keys: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over int64 keys (vectorized, overflow-wrapping)."""
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


class ShardingSpec:
    """An immutable ``join key -> shard id`` mapping.

    Parameters
    ----------
    hash_shards:
        Number of ordinary hash shards (at least 1).
    heavy_keys:
        Sorted, distinct join keys isolated into dedicated heavy shards;
        heavy key ``heavy_keys[j]`` owns shard ``hash_shards + j``.
    """

    __slots__ = ("hash_shards", "heavy_keys")

    def __init__(self, hash_shards: int, heavy_keys: Sequence[int] = ()) -> None:
        self.hash_shards = max(int(hash_shards), 1)
        keys = np.unique(np.asarray(list(heavy_keys), dtype=np.int64)) if len(
            heavy_keys
        ) else _EMPTY
        self.heavy_keys = keys

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def num_heavy(self) -> int:
        return int(self.heavy_keys.size)

    @property
    def num_shards(self) -> int:
        return self.hash_shards + self.num_heavy

    def kind(self, shard: int) -> str:
        """``"hash"`` or ``"heavy"`` for a shard id."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        return KIND_HEAVY if shard >= self.hash_shards else KIND_HASH

    def heavy_key_of(self, shard: int) -> int:
        """The single join key a heavy shard holds."""
        if self.kind(shard) != KIND_HEAVY:
            raise ValueError(f"shard {shard} is a hash shard, not a heavy shard")
        return int(self.heavy_keys[shard - self.hash_shards])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardingSpec):
            return NotImplemented
        return self.hash_shards == other.hash_shards and np.array_equal(
            self.heavy_keys, other.heavy_keys
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"ShardingSpec(hash_shards={self.hash_shards}, "
            f"heavy_keys={self.heavy_keys.tolist()})"
        )

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #
    def shard_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized shard assignment for an array of join keys."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return _EMPTY
        if self.hash_shards == 1:
            owners = np.zeros(keys.size, dtype=np.int64)
        else:
            owners = (_mix_keys(keys) % np.uint64(self.hash_shards)).astype(np.int64)
        if self.num_heavy:
            pos = np.searchsorted(self.heavy_keys, keys)
            clipped = np.minimum(pos, self.num_heavy - 1)
            is_heavy = self.heavy_keys[clipped] == keys
            owners = np.where(is_heavy, self.hash_shards + clipped, owners)
        return owners

    def shard_of(self, key: int) -> int:
        """Shard id owning one join key."""
        return int(self.shard_of_keys(np.asarray([key], dtype=np.int64))[0])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> List[Dict[str, Any]]:
        """One row per shard: id, kind, and the heavy key where applicable."""
        rows: List[Dict[str, Any]] = []
        for shard in range(self.num_shards):
            kind = self.kind(shard)
            rows.append({
                "shard": shard,
                "kind": kind,
                "heavy_key": self.heavy_key_of(shard) if kind == KIND_HEAVY else "-",
            })
        return rows
